//! Timed fault primitives and the [`ChaosDelay`] injection layer.
//!
//! A fault schedule is a list of [`FaultClause`]s, each a time-windowed
//! primitive: link **clog**ging and **flap**ping, probabilistic message
//! **drop**s and **dup**lication, network **partition**s that heal at the
//! window's end, node **crash**/restart, and **rate**-schedule attacks.
//! The delay-layer clauses compile into [`ChaosDelay`], a [`DelayModel`]
//! wrapper injected through the ordinary engine send path — so `EventSink`
//! tracing, the invariant watchdog, and the parallel engine's lookahead
//! promises keep working (a clause that kills the delay floor *degrades*
//! the promise rather than breaking window parity; see
//! [`ChaosDelay::lookahead_at`]). Rate clauses are compiled separately into
//! [`RateSchedule`] overlays by [`apply_rate_faults`], because hardware
//! rates are engine inputs, not message delays.
//!
//! Every random decision (drop, duplicate) is a [`chaos_hash`] of
//! `(seed, clause, src, dst, send time)` — a pure function of the send
//! context, with no RNG stream. That makes an injected execution a pure
//! function of the clause list and seed: re-running a shrunk schedule is
//! exactly re-running the scenario, and cloned partition replicas decide
//! identically to the sequential loop.
//!
//! "Fault Tolerant Gradient Clock Synchronization" (see `PAPERS.md`)
//! delineates which of these faults `A^opt` should survive;
//! [`FaultClause::violation_allowed`] encodes that verdict per clause so a
//! batch driver can separate *expected* watchdog trips (the algorithm's
//! assumptions were broken) from *findings*.

use std::fmt;

use gcs_graph::NodeId;
use gcs_sim::{DelayCtx, DelayModel, Delivery, DropCause, Lookahead};
use gcs_time::{DriftBounds, RateSchedule};

/// A set of undirected edges a clause applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeSel {
    /// Every edge.
    All,
    /// The listed unordered node pairs (a transmission matches in either
    /// direction).
    List(Vec<(usize, usize)>),
}

impl EdgeSel {
    /// Whether a transmission `src -> dst` falls under this selector.
    pub fn matches(&self, src: NodeId, dst: NodeId) -> bool {
        match self {
            EdgeSel::All => true,
            EdgeSel::List(pairs) => pairs.iter().any(|&(a, b)| {
                (a == src.index() && b == dst.index()) || (a == dst.index() && b == src.index())
            }),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        if s == "*" {
            return Ok(EdgeSel::All);
        }
        let mut pairs = Vec::new();
        for part in s.split('/') {
            let (a, b) = part
                .split_once('-')
                .ok_or_else(|| format!("edge `{part}`: expected `u-v`"))?;
            let a: usize = a.parse().map_err(|_| format!("edge `{part}`: bad node"))?;
            let b: usize = b.parse().map_err(|_| format!("edge `{part}`: bad node"))?;
            pairs.push((a, b));
        }
        if pairs.is_empty() {
            return Err("empty edge list".into());
        }
        Ok(EdgeSel::List(pairs))
    }
}

impl fmt::Display for EdgeSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeSel::All => f.write_str("*"),
            EdgeSel::List(pairs) => {
                for (i, (a, b)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    write!(f, "{a}-{b}")?;
                }
                Ok(())
            }
        }
    }
}

/// A set of nodes a clause applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSel {
    /// The half-open index range `start..end`.
    Range(usize, usize),
    /// The listed node indices.
    List(Vec<usize>),
}

impl NodeSel {
    /// Whether the node falls under this selector.
    pub fn contains(&self, v: NodeId) -> bool {
        match self {
            NodeSel::Range(a, b) => (*a..*b).contains(&v.index()),
            NodeSel::List(nodes) => nodes.contains(&v.index()),
        }
    }

    /// The selected indices among `0..n`, in ascending selector order.
    pub fn iter(&self, n: usize) -> Vec<usize> {
        match self {
            NodeSel::Range(a, b) => (*a..(*b).min(n)).collect(),
            NodeSel::List(nodes) => nodes.iter().copied().filter(|&v| v < n).collect(),
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        if let Some((a, b)) = s.split_once("..") {
            let a: usize = a.parse().map_err(|_| format!("range `{s}`: bad start"))?;
            let b: usize = b.parse().map_err(|_| format!("range `{s}`: bad end"))?;
            if b <= a {
                return Err(format!("range `{s}`: empty"));
            }
            return Ok(NodeSel::Range(a, b));
        }
        let mut nodes = Vec::new();
        for part in s.split('/') {
            nodes.push(
                part.parse()
                    .map_err(|_| format!("node `{part}`: bad index"))?,
            );
        }
        if nodes.is_empty() {
            return Err("empty node list".into());
        }
        Ok(NodeSel::List(nodes))
    }
}

impl fmt::Display for NodeSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeSel::Range(a, b) => write!(f, "{a}..{b}"),
            NodeSel::List(nodes) => {
                for (i, v) in nodes.iter().enumerate() {
                    if i > 0 {
                        f.write_str("/")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
        }
    }
}

/// One timed fault primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Force every matching transmission to the given (large) delay.
    Clog {
        /// Affected edges.
        edges: EdgeSel,
        /// The forced delay.
        delay: f64,
    },
    /// Alternate matching edges between a slow and an instantaneous phase,
    /// starting slow at the window's start.
    Flap {
        /// Affected edges.
        edges: EdgeSel,
        /// Phase length.
        period: f64,
        /// Delay during slow phases (fast phases deliver at 0).
        slow: f64,
    },
    /// Drop each matching transmission independently with probability
    /// `prob` (decided by [`chaos_hash`], not an RNG stream).
    Drop {
        /// Affected edges.
        edges: EdgeSel,
        /// Per-transmission drop probability.
        prob: f64,
    },
    /// Duplicate each matching transmission independently with probability
    /// `prob`; the echo copy arrives `extra` after the original.
    Dup {
        /// Affected edges.
        edges: EdgeSel,
        /// Per-transmission duplication probability.
        prob: f64,
        /// Extra delay of the duplicated copy.
        extra: f64,
    },
    /// Drop every transmission crossing between `side` and its complement;
    /// the partition heals at the window's end.
    Partition {
        /// One side of the cut.
        side: NodeSel,
    },
    /// Crash the selected nodes: every transmission to or from them is
    /// dropped until the window's end (the restart).
    Crash {
        /// Crashed nodes.
        nodes: NodeSel,
    },
    /// Run the selected nodes' hardware clocks at `rate` for the window,
    /// then resume their base schedule (compiled by [`apply_rate_faults`],
    /// not by [`ChaosDelay`]).
    Rate {
        /// Attacked nodes.
        nodes: NodeSel,
        /// The forced hardware rate.
        rate: f64,
    },
}

/// A fault primitive active on the real-time window `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultClause {
    /// Window start (inclusive).
    pub start: f64,
    /// Window end (exclusive).
    pub end: f64,
    /// The primitive.
    pub kind: FaultKind,
}

fn parse_num(s: &str, what: &str) -> Result<f64, String> {
    let v: f64 = s
        .parse()
        .map_err(|_| format!("{what} `{s}`: not a number"))?;
    if !v.is_finite() {
        return Err(format!("{what} `{s}`: must be finite"));
    }
    Ok(v)
}

impl FaultClause {
    /// Whether the clause is active at real time `now`.
    pub fn active(&self, now: f64) -> bool {
        self.start <= now && now < self.end
    }

    /// Whether the clause acts on message delivery (everything except
    /// `rate`, which acts on hardware clocks).
    pub fn is_delay_layer(&self) -> bool {
        !matches!(self.kind, FaultKind::Rate { .. })
    }

    /// Whether a watchdog violation under this clause is *expected* — i.e.
    /// the clause breaks an assumption the paper's guarantees rest on
    /// (delays within `[0, 𝒯]`, rates within `[1−ε, 1+ε]`, connectivity),
    /// per the fault taxonomy of "Fault Tolerant Gradient Clock
    /// Synchronization".
    ///
    /// `t_max` is the delay-uncertainty bound the run's base model
    /// advertises (`None` = unbounded, so no delay clause can exceed it).
    pub fn violation_allowed(&self, bounds: DriftBounds, t_max: Option<f64>) -> bool {
        let beyond_t = |d: f64| t_max.is_some_and(|t| d > t + 1e-12);
        match &self.kind {
            // Delays inside [0, 𝒯] are exactly the paper's adversary; only
            // exceeding 𝒯 breaks the model.
            FaultKind::Clog { delay, .. } => beyond_t(*delay),
            FaultKind::Flap { slow, .. } => beyond_t(*slow),
            // Probabilistic loss and duplication leave the model intact:
            // A^opt's periodic broadcasts are self-healing (extension X1),
            // and a duplicate is just a (legal) slower retransmission.
            FaultKind::Drop { .. } | FaultKind::Dup { .. } => false,
            // A partition or crash starves estimates outright.
            FaultKind::Partition { .. } | FaultKind::Crash { .. } => true,
            FaultKind::Rate { rate, .. } => !bounds.contains(*rate),
        }
    }

    /// Parses the compact clause grammar (see `docs/CHAOS.md`):
    ///
    /// ```text
    /// clog:START..END:EDGES:DELAY
    /// flap:START..END:EDGES:PERIOD:SLOW
    /// drop:START..END:EDGES:PROB
    /// dup:START..END:EDGES:PROB:EXTRA
    /// partition:START..END:NODES
    /// crash:START..END:NODES
    /// rate:START..END:NODES:RATE
    /// ```
    ///
    /// `EDGES` is `*` or `u-v/u-v/…`; `NODES` is `a..b` or `v/v/…`.
    /// [`FaultClause`]'s `Display` emits the same grammar with Rust's
    /// shortest-round-trip float formatting, so `parse(format(c)) == c`
    /// byte-identically — the invariant the shrinker's determinism check
    /// rests on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first grammar or range violation.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let kind_tag = parts.next().unwrap_or_default();
        let window = parts
            .next()
            .ok_or_else(|| format!("clause `{s}`: missing window"))?;
        let (start, end) = window
            .split_once("..")
            .ok_or_else(|| format!("window `{window}`: expected `START..END`"))?;
        let start = parse_num(start, "window start")?;
        let end = parse_num(end, "window end")?;
        if start < 0.0 || end <= start {
            return Err(format!("window `{window}`: need 0 <= start < end"));
        }
        let mut arg = || {
            parts
                .next()
                .ok_or_else(|| format!("clause `{s}`: missing argument"))
        };
        let kind = match kind_tag {
            "clog" => {
                let edges = EdgeSel::parse(arg()?)?;
                let delay = parse_num(arg()?, "clog delay")?;
                if delay < 0.0 {
                    return Err(format!("clog delay {delay}: must be >= 0"));
                }
                FaultKind::Clog { edges, delay }
            }
            "flap" => {
                let edges = EdgeSel::parse(arg()?)?;
                let period = parse_num(arg()?, "flap period")?;
                let slow = parse_num(arg()?, "flap slow delay")?;
                if period <= 0.0 || slow < 0.0 {
                    return Err(format!("flap {period}/{slow}: need period > 0, slow >= 0"));
                }
                FaultKind::Flap {
                    edges,
                    period,
                    slow,
                }
            }
            "drop" => {
                let edges = EdgeSel::parse(arg()?)?;
                let prob = parse_num(arg()?, "drop probability")?;
                if !(0.0..=1.0).contains(&prob) {
                    return Err(format!("drop probability {prob}: must be in [0, 1]"));
                }
                FaultKind::Drop { edges, prob }
            }
            "dup" => {
                let edges = EdgeSel::parse(arg()?)?;
                let prob = parse_num(arg()?, "dup probability")?;
                let extra = parse_num(arg()?, "dup extra delay")?;
                if !(0.0..=1.0).contains(&prob) || extra < 0.0 {
                    return Err(format!(
                        "dup {prob}/{extra}: need prob in [0,1], extra >= 0"
                    ));
                }
                FaultKind::Dup { edges, prob, extra }
            }
            "partition" => FaultKind::Partition {
                side: NodeSel::parse(arg()?)?,
            },
            "crash" => FaultKind::Crash {
                nodes: NodeSel::parse(arg()?)?,
            },
            "rate" => {
                let nodes = NodeSel::parse(arg()?)?;
                let rate = parse_num(arg()?, "attack rate")?;
                if rate <= 0.0 {
                    return Err(format!("attack rate {rate}: must be > 0"));
                }
                FaultKind::Rate { nodes, rate }
            }
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        if let Some(extra) = parts.next() {
            return Err(format!("clause `{s}`: trailing `{extra}`"));
        }
        Ok(FaultClause { start, end, kind })
    }
}

impl fmt::Display for FaultClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (start, end) = (self.start, self.end);
        match &self.kind {
            FaultKind::Clog { edges, delay } => write!(f, "clog:{start}..{end}:{edges}:{delay}"),
            FaultKind::Flap {
                edges,
                period,
                slow,
            } => write!(f, "flap:{start}..{end}:{edges}:{period}:{slow}"),
            FaultKind::Drop { edges, prob } => write!(f, "drop:{start}..{end}:{edges}:{prob}"),
            FaultKind::Dup { edges, prob, extra } => {
                write!(f, "dup:{start}..{end}:{edges}:{prob}:{extra}")
            }
            FaultKind::Partition { side } => write!(f, "partition:{start}..{end}:{side}"),
            FaultKind::Crash { nodes } => write!(f, "crash:{start}..{end}:{nodes}"),
            FaultKind::Rate { nodes, rate } => write!(f, "rate:{start}..{end}:{nodes}:{rate}"),
        }
    }
}

/// Parses a fault schedule from either compact or document form.
///
/// * Compact (sweep-inline): `;`-separated clauses, e.g.
///   `clog:10..20:*:0.8;drop:5..15:*:0.3`. `none` or an empty string is
///   the empty schedule.
/// * Document (`.chaos` files): one `fault = <clause>` line per clause;
///   `#` comments, blank lines, and *other* `key = value` lines are
///   ignored (the full scenario grammar is layered on top by
///   `gcs-chaos`).
///
/// # Errors
///
/// Returns the first clause parse failure, tagged with its position.
pub fn parse_schedule(text: &str) -> Result<Vec<FaultClause>, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() || trimmed == "none" {
        return Ok(Vec::new());
    }
    let mut clauses = Vec::new();
    if trimmed.contains('\n') || trimmed.contains('=') {
        for (lineno, raw) in trimmed.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            if key.trim() != "fault" {
                continue;
            }
            clauses.push(
                FaultClause::parse(value.trim())
                    .map_err(|e| format!("fault line {}: {e}", lineno + 1))?,
            );
        }
    } else {
        for (i, part) in trimmed.split(';').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            clauses.push(
                FaultClause::parse(part).map_err(|e| format!("fault clause {}: {e}", i + 1))?,
            );
        }
    }
    Ok(clauses)
}

/// Formats a schedule in the compact `;`-separated form accepted by
/// [`parse_schedule`] (`none` for the empty schedule).
pub fn format_schedule(clauses: &[FaultClause]) -> String {
    if clauses.is_empty() {
        return "none".into();
    }
    clauses
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

/// A pure hash of one send decision onto `[0, 1)`.
///
/// SplitMix64 finalization over `(seed, clause index, src, dst, send
/// time)`. Being a pure function of the [`DelayCtx`] (no RNG stream), the
/// decision is independent of call order and identical on cloned partition
/// replicas — which is what lets [`ChaosDelay`] keep its inner model's
/// lookahead promise.
pub fn chaos_hash(seed: u64, clause: usize, src: NodeId, dst: NodeId, now: f64) -> f64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(seed);
    h = mix(h ^ clause as u64);
    h = mix(h ^ (((src.index() as u64) << 32) | dst.index() as u64));
    h = mix(h ^ now.to_bits());
    // 53 high bits -> the unit interval, like `gen_range(0.0..1.0)`.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`DelayModel`] wrapper injecting the delay-layer clauses of a fault
/// schedule over any inner model.
///
/// Per transmission, in order:
///
/// 1. an active `crash` touching either endpoint, an active `partition`
///    the edge crosses, or an active `drop` whose hash fires → the message
///    is dropped with [`DropCause::Fault`];
/// 2. an active `clog`/`flap` matching the edge *replaces* the inner
///    model's delay (the last matching clause wins);
/// 3. otherwise the inner model prices the message as usual;
/// 4. an active `dup` whose hash fires turns a plain delay into
///    [`Delivery::AfterEcho`].
///
/// `rate` clauses are ignored here — compile them with
/// [`apply_rate_faults`].
#[derive(Debug, Clone)]
pub struct ChaosDelay<D> {
    inner: D,
    clauses: Vec<FaultClause>,
    seed: u64,
}

impl<D: DelayModel> ChaosDelay<D> {
    /// Wraps `inner` under the given schedule. An empty clause list is
    /// fully transparent (delivery, uncertainty, and lookahead all defer).
    pub fn new(inner: D, clauses: Vec<FaultClause>, seed: u64) -> Self {
        ChaosDelay {
            inner,
            clauses,
            seed,
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The injected schedule.
    pub fn clauses(&self) -> &[FaultClause] {
        &self.clauses
    }
}

impl<D: DelayModel> DelayModel for ChaosDelay<D> {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        let now = ctx.now;
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.active(now) {
                continue;
            }
            let kill = match &c.kind {
                FaultKind::Crash { nodes } => nodes.contains(ctx.src) || nodes.contains(ctx.dst),
                FaultKind::Partition { side } => side.contains(ctx.src) != side.contains(ctx.dst),
                FaultKind::Drop { edges, prob } => {
                    edges.matches(ctx.src, ctx.dst)
                        && chaos_hash(self.seed, i, ctx.src, ctx.dst, now) < *prob
                }
                _ => false,
            };
            if kill {
                return Delivery::Drop(DropCause::Fault);
            }
        }
        let mut forced = None;
        for c in &self.clauses {
            if !c.active(now) {
                continue;
            }
            match &c.kind {
                FaultKind::Clog { edges, delay } if edges.matches(ctx.src, ctx.dst) => {
                    forced = Some(*delay);
                }
                FaultKind::Flap {
                    edges,
                    period,
                    slow,
                } if edges.matches(ctx.src, ctx.dst) => {
                    let phase = ((now - c.start) / period).floor() as i64;
                    forced = Some(if phase % 2 == 0 { *slow } else { 0.0 });
                }
                _ => {}
            }
        }
        let mut delivery = match forced {
            Some(d) => Delivery::After(d),
            None => self.inner.delivery(ctx),
        };
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.active(now) {
                continue;
            }
            if let FaultKind::Dup { edges, prob, extra } = &c.kind {
                if let Delivery::After(d) = delivery {
                    if edges.matches(ctx.src, ctx.dst)
                        && chaos_hash(self.seed, i, ctx.src, ctx.dst, now) < *prob
                    {
                        delivery = Delivery::AfterEcho {
                            delay: d,
                            echo: d + extra,
                        };
                    }
                }
            }
        }
        delivery
    }

    fn uncertainty(&self) -> Option<f64> {
        // The worst delay any clause can force, folded over the inner bound.
        let mut t = self.inner.uncertainty()?;
        for c in &self.clauses {
            match &c.kind {
                FaultKind::Clog { delay, .. } => t = t.max(*delay),
                FaultKind::Flap { slow, .. } => t = t.max(*slow),
                FaultKind::Dup { extra, .. } => t += extra,
                _ => {}
            }
        }
        Some(t)
    }

    fn min_delay(&self) -> Option<f64> {
        let mut floor = self.inner.min_delay()?;
        for c in &self.clauses {
            match &c.kind {
                // Fast flap phases deliver instantaneously.
                FaultKind::Flap { .. } => floor = 0.0,
                FaultKind::Clog { delay, .. } => floor = floor.min(*delay),
                // Drops schedule nothing; duplicates arrive no earlier than
                // the original; crash/partition/rate never shorten a delay.
                _ => {}
            }
        }
        Some(floor)
    }

    fn lookahead_at(&self, now: f64) -> Option<Lookahead> {
        // Degrade the inner promise instead of breaking it: clamp the
        // validity at every upcoming clause boundary (behaviour changes
        // there, so the engine must re-query), lower the floor under an
        // active clog, and withdraw the promise entirely while a flap is
        // active (its fast phases deliver at 0). Fault drops are
        // promise-compatible — they schedule nothing — and every chaos
        // decision is a pure hash of the context, so the inner model's
        // purity guarantee carries through.
        let la = self.inner.lookahead_at(now)?;
        let mut floor = la.floor;
        let mut valid_until = la.valid_until;
        for c in &self.clauses {
            if !c.is_delay_layer() {
                continue;
            }
            if c.active(now) {
                match &c.kind {
                    FaultKind::Flap { .. } => return None,
                    FaultKind::Clog { delay, .. } => floor = floor.min(*delay),
                    _ => {}
                }
                valid_until = valid_until.min(c.end);
            } else if now < c.start {
                valid_until = valid_until.min(c.start);
            }
        }
        (floor > 0.0).then_some(Lookahead { floor, valid_until })
    }
}

/// Compiles the `rate` clauses of a schedule into per-node
/// [`RateSchedule`] overlays: during each clause's window the selected
/// nodes run at the attack rate, then resume whatever their base schedule
/// prescribes from the window's end on.
///
/// Clauses apply in list order, so overlapping windows on the same node
/// compose left to right.
///
/// # Errors
///
/// Returns a description of the first schedule that could not be rebuilt
/// (e.g. a non-positive attack rate, which [`RateSchedule`] rejects).
pub fn apply_rate_faults(
    schedules: &mut [RateSchedule],
    clauses: &[FaultClause],
) -> Result<(), String> {
    let n = schedules.len();
    for c in clauses {
        let FaultKind::Rate { nodes, rate } = &c.kind else {
            continue;
        };
        for v in nodes.iter(n) {
            schedules[v] = overlay_rate(&schedules[v], c.start, c.end, *rate)
                .map_err(|e| format!("rate fault on node {v}: {e}"))?;
        }
    }
    Ok(())
}

fn overlay_rate(
    base: &RateSchedule,
    start: f64,
    end: f64,
    rate: f64,
) -> Result<RateSchedule, String> {
    let resume = base.rate_at(end);
    let mut steps: Vec<(f64, f64)> = Vec::new();
    for (t, r) in base.steps() {
        if t < start {
            steps.push((t, r));
        }
    }
    match steps.last_mut() {
        Some(last) if last.0 == start => last.1 = rate,
        _ if start == 0.0 => steps.push((0.0, rate)),
        _ => {
            // `from_steps` demands an origin step; base schedules always
            // have one at 0, so `steps` is non-empty here.
            steps.push((start, rate));
        }
    }
    steps.push((end, resume));
    for (t, r) in base.steps() {
        if t > end {
            steps.push((t, r));
        }
    }
    RateSchedule::from_steps(steps).map_err(|e| format!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::ConstantDelay;

    fn clause(s: &str) -> FaultClause {
        FaultClause::parse(s).unwrap()
    }

    fn ctx<'a>(g: &'a gcs_graph::Graph, src: usize, dst: usize, now: f64) -> DelayCtx<'a> {
        DelayCtx::new(NodeId(src), NodeId(dst), now, now, now, g)
    }

    #[test]
    fn clause_grammar_round_trips_byte_identically() {
        let cases = [
            "clog:10..20:*:0.8",
            "clog:0..5:0-1/1-2:1.25",
            "flap:0..50:*:1.5:0.4",
            "drop:5..15:2-3:0.3",
            "dup:5..15:*:0.2:0.35",
            "partition:20..40:0..4",
            "crash:10..30:3",
            "crash:10..30:1/4/6",
            "rate:10..30:0..2:0.9",
        ];
        for s in cases {
            let c = clause(s);
            assert_eq!(c.to_string(), s, "canonical form must round-trip");
            assert_eq!(FaultClause::parse(&c.to_string()).unwrap(), c);
        }
    }

    #[test]
    fn clause_grammar_rejects_nonsense() {
        for bad in [
            "clog",
            "clog:10..5:*:0.8",
            "clog:-1..5:*:0.8",
            "clog:0..5:*:-0.1",
            "flap:0..5:*:0:0.4",
            "drop:0..5:*:1.5",
            "dup:0..5:*:0.2:-1",
            "partition:0..5:4..4",
            "rate:0..5:0:-0.9",
            "warp:0..5:*:1",
            "clog:0..5:*:0.8:extra",
            "clog:0..5:0:0.8",
        ] {
            assert!(FaultClause::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn crash_partition_and_drop_kill_messages() {
        let g = topology::path(6);
        let mut m = ChaosDelay::new(
            ConstantDelay::new(0.2),
            vec![
                clause("crash:10..20:2"),
                clause("partition:30..40:0..3"),
                clause("drop:50..60:*:1"),
            ],
            7,
        );
        // Outside every window: transparent.
        assert_eq!(m.delivery(&ctx(&g, 2, 3, 5.0)), Delivery::After(0.2));
        // Crash kills both directions at the crashed node.
        let fault = Delivery::Drop(DropCause::Fault);
        assert_eq!(m.delivery(&ctx(&g, 2, 3, 15.0)), fault);
        assert_eq!(m.delivery(&ctx(&g, 1, 2, 15.0)), fault);
        assert_eq!(m.delivery(&ctx(&g, 4, 5, 15.0)), Delivery::After(0.2));
        // Partition kills the cut edge only, and heals.
        assert_eq!(m.delivery(&ctx(&g, 2, 3, 35.0)), fault);
        assert_eq!(m.delivery(&ctx(&g, 3, 2, 35.0)), fault);
        assert_eq!(m.delivery(&ctx(&g, 1, 2, 35.0)), Delivery::After(0.2));
        assert_eq!(m.delivery(&ctx(&g, 2, 3, 40.0)), Delivery::After(0.2));
        // Probability-1 drop kills everything in its window.
        assert_eq!(m.delivery(&ctx(&g, 0, 1, 55.0)), fault);
    }

    #[test]
    fn clog_and_flap_replace_the_inner_delay() {
        let g = topology::path(3);
        let mut m = ChaosDelay::new(
            ConstantDelay::new(0.2),
            vec![clause("clog:10..20:0-1:0.9"), clause("flap:30..50:*:2:0.6")],
            7,
        );
        assert_eq!(m.delivery(&ctx(&g, 0, 1, 15.0)), Delivery::After(0.9));
        assert_eq!(m.delivery(&ctx(&g, 1, 0, 15.0)), Delivery::After(0.9));
        assert_eq!(m.delivery(&ctx(&g, 1, 2, 15.0)), Delivery::After(0.2));
        // Flap starts slow, then alternates with phase length 2.
        assert_eq!(m.delivery(&ctx(&g, 0, 1, 30.5)), Delivery::After(0.6));
        assert_eq!(m.delivery(&ctx(&g, 0, 1, 32.5)), Delivery::After(0.0));
        assert_eq!(m.delivery(&ctx(&g, 0, 1, 34.5)), Delivery::After(0.6));
    }

    #[test]
    fn dup_turns_a_delay_into_an_echo_pair() {
        let g = topology::path(2);
        let mut m = ChaosDelay::new(
            ConstantDelay::new(0.2),
            vec![clause("dup:0..10:*:1:0.3")],
            7,
        );
        assert_eq!(
            m.delivery(&ctx(&g, 0, 1, 5.0)),
            Delivery::AfterEcho {
                delay: 0.2,
                echo: 0.5
            }
        );
        assert_eq!(m.delivery(&ctx(&g, 0, 1, 10.0)), Delivery::After(0.2));
    }

    #[test]
    fn chaos_decisions_are_pure_and_seed_sensitive() {
        let g = topology::path(2);
        let c = vec![clause("drop:0..100:*:0.5")];
        let mut a = ChaosDelay::new(ConstantDelay::new(0.2), c.clone(), 1);
        let mut b = ChaosDelay::new(ConstantDelay::new(0.2), c.clone(), 1);
        let mut other_seed = ChaosDelay::new(ConstantDelay::new(0.2), c, 2);
        let times: Vec<f64> = (0..200).map(|i| i as f64 * 0.37).collect();
        // Same seed: identical decisions regardless of call interleaving
        // (b evaluates in reverse order).
        let da: Vec<_> = times
            .iter()
            .map(|&t| a.delivery(&ctx(&g, 0, 1, t)))
            .collect();
        let db: Vec<_> = times
            .iter()
            .rev()
            .map(|&t| b.delivery(&ctx(&g, 0, 1, t)))
            .collect();
        let db_fwd: Vec<_> = db.into_iter().rev().collect();
        assert_eq!(da, db_fwd);
        // Different seed: a different decision pattern.
        let dc: Vec<_> = times
            .iter()
            .map(|&t| other_seed.delivery(&ctx(&g, 0, 1, t)))
            .collect();
        assert_ne!(da, dc);
        // And the rate is roughly right.
        let dropped = da
            .iter()
            .filter(|d| **d == Delivery::Drop(DropCause::Fault))
            .count();
        let rate = dropped as f64 / times.len() as f64;
        assert!((rate - 0.5).abs() < 0.15, "observed drop rate {rate}");
    }

    #[test]
    fn lookahead_degrades_instead_of_breaking() {
        let m = ChaosDelay::new(
            ConstantDelay::new(0.2),
            vec![clause("clog:10..20:*:0.05"), clause("drop:30..40:*:0.5")],
            7,
        );
        // Before any clause: full floor, clamped at the first boundary.
        assert_eq!(
            m.lookahead_at(0.0),
            Some(Lookahead {
                floor: 0.2,
                valid_until: 10.0
            })
        );
        // Inside the clog: the floor drops to the clog delay.
        assert_eq!(
            m.lookahead_at(12.0),
            Some(Lookahead {
                floor: 0.05,
                valid_until: 20.0
            })
        );
        // Between clauses: full floor again until the drop window opens.
        assert_eq!(
            m.lookahead_at(25.0),
            Some(Lookahead {
                floor: 0.2,
                valid_until: 30.0
            })
        );
        // A drop window never lowers the floor (drops schedule nothing)
        // but still bounds the promise at its own end.
        assert_eq!(
            m.lookahead_at(35.0),
            Some(Lookahead {
                floor: 0.2,
                valid_until: 40.0
            })
        );
        // Past every clause: the inner promise shines through untouched.
        assert_eq!(
            m.lookahead_at(50.0),
            Some(Lookahead {
                floor: 0.2,
                valid_until: f64::INFINITY
            })
        );
    }

    #[test]
    fn flap_withdraws_the_promise_while_active() {
        let m = ChaosDelay::new(
            ConstantDelay::new(0.2),
            vec![clause("flap:10..20:*:1:0.4")],
            7,
        );
        assert!(m.lookahead_at(5.0).is_some());
        assert_eq!(m.lookahead_at(15.0), None);
        assert!(m.lookahead_at(25.0).is_some());
        // The static floor truthfully reports the fast phases.
        assert_eq!(m.min_delay(), Some(0.0));
    }

    #[test]
    fn empty_schedule_is_transparent() {
        let g = topology::path(2);
        let mut m = ChaosDelay::new(ConstantDelay::new(0.2), Vec::new(), 7);
        assert_eq!(m.delivery(&ctx(&g, 0, 1, 1.0)), Delivery::After(0.2));
        assert_eq!(m.uncertainty(), Some(0.2));
        assert_eq!(m.min_delay(), Some(0.2));
        assert_eq!(
            m.lookahead_at(0.0),
            ConstantDelay::new(0.2).lookahead_at(0.0)
        );
    }

    #[test]
    fn rate_overlay_attacks_and_resumes() {
        let base = RateSchedule::from_steps(vec![(0.0, 1.0), (25.0, 1.02)]).unwrap();
        let mut schedules = vec![base.clone(), base.clone()];
        apply_rate_faults(&mut schedules, &[clause("rate:10..30:1:0.9")]).unwrap();
        // Node 0 untouched.
        assert_eq!(schedules[0], base);
        // Node 1: base until 10, attacked until 30, then resumed at the
        // base rate in force at 30 (the 25.0 step's 1.02).
        let s = &schedules[1];
        assert_eq!(s.rate_at(5.0), 1.0);
        assert_eq!(s.rate_at(10.0), 0.9);
        assert_eq!(s.rate_at(29.9), 0.9);
        assert_eq!(s.rate_at(30.0), 1.02);
        assert_eq!(s.rate_at(100.0), 1.02);
    }

    #[test]
    fn rate_overlay_handles_boundary_collisions() {
        let base = RateSchedule::from_steps(vec![(0.0, 1.0), (10.0, 1.02), (30.0, 0.98)]).unwrap();
        let mut schedules = vec![base];
        // Attack window exactly on existing steps.
        apply_rate_faults(&mut schedules, &[clause("rate:10..30:0:1.2")]).unwrap();
        let s = &schedules[0];
        assert_eq!(s.rate_at(9.9), 1.0);
        assert_eq!(s.rate_at(10.0), 1.2);
        assert_eq!(s.rate_at(29.9), 1.2);
        assert_eq!(s.rate_at(30.0), 0.98);
        // And an attack from time 0.
        let mut schedules = vec![RateSchedule::constant(1.0).unwrap()];
        apply_rate_faults(&mut schedules, &[clause("rate:0..5:0:0.9")]).unwrap();
        assert_eq!(schedules[0].rate_at(0.0), 0.9);
        assert_eq!(schedules[0].rate_at(5.0), 1.0);
    }

    #[test]
    fn violation_expectations_follow_the_fault_taxonomy() {
        let bounds = DriftBounds::new(0.02).unwrap();
        let t = Some(0.4);
        // Within-model faults: no violation expected.
        assert!(!clause("clog:0..5:*:0.4").violation_allowed(bounds, t));
        assert!(!clause("flap:0..5:*:1:0.4").violation_allowed(bounds, t));
        assert!(!clause("drop:0..5:*:0.3").violation_allowed(bounds, t));
        assert!(!clause("dup:0..5:*:0.3:0.2").violation_allowed(bounds, t));
        assert!(!clause("rate:0..5:0:1.01").violation_allowed(bounds, t));
        // Model-breaking faults: a watchdog trip is expected.
        assert!(clause("clog:0..5:*:0.5").violation_allowed(bounds, t));
        assert!(clause("flap:0..5:*:1:0.6").violation_allowed(bounds, t));
        assert!(clause("rate:0..5:0:0.9").violation_allowed(bounds, t));
        assert!(clause("partition:0..5:0..2").violation_allowed(bounds, t));
        assert!(clause("crash:0..5:1").violation_allowed(bounds, t));
        // Unbounded base model: no clog can exceed 𝒯.
        assert!(!clause("clog:0..5:*:99").violation_allowed(bounds, None));
    }

    #[test]
    fn schedule_parses_compact_and_document_forms() {
        assert_eq!(parse_schedule("none").unwrap(), Vec::new());
        assert_eq!(parse_schedule("  ").unwrap(), Vec::new());
        let compact = parse_schedule("clog:10..20:*:0.8; drop:5..15:*:0.3").unwrap();
        assert_eq!(compact.len(), 2);
        let doc = parse_schedule(
            "# scenario\nseed = 7\nfault = clog:10..20:*:0.8\n\nfault = drop:5..15:*:0.3\n",
        )
        .unwrap();
        assert_eq!(doc, compact);
        assert_eq!(
            format_schedule(&compact),
            "clog:10..20:*:0.8;drop:5..15:*:0.3"
        );
        assert_eq!(parse_schedule(&format_schedule(&compact)).unwrap(), compact);
        assert_eq!(format_schedule(&[]), "none");
        assert!(parse_schedule("clog:bad").is_err());
        assert!(parse_schedule("fault = clog:bad").is_err());
    }

    #[test]
    fn node_selector_iterates_and_clamps() {
        assert_eq!(NodeSel::Range(2, 6).iter(4), vec![2, 3]);
        assert_eq!(NodeSel::List(vec![0, 7, 3]).iter(4), vec![0, 3]);
        assert!(NodeSel::Range(0, 2).contains(NodeId(1)));
        assert!(!NodeSel::Range(0, 2).contains(NodeId(2)));
    }
}
