//! Lemma 7.6 and Theorem 7.7: the local-skew lower bound.
//!
//! The construction drives an ever-larger *average* skew onto ever-shorter
//! subpaths of a path of length `D' = b^S`:
//!
//! 1. **Base** (`k = 0`): run the drift-free execution `E₀` (all rates 1;
//!    messages toward the `w`-side instantaneous, toward the `v`-side
//!    delayed by the full `𝒯`) for `D'𝒯/ε` time. Either the endpoints
//!    already disagree by `α·D'·𝒯/2`, or the indistinguishable execution
//!    `Ē₀` — in which the `v`-side hardware clocks run graded-fast for the
//!    whole window — adds `α·D'·𝒯` of skew on top (Lemma 7.6).
//! 2. **Step** (`k → k + 1`): extend by `E_{k+1}` (rates 1, the same
//!    `Φ`-directed delays) for `n_{k+1}·𝒯/ε` time, where
//!    `n_{k+1} = n_k / b`. The pair's skew decays by at most
//!    `(β − α)·n_{k+1}𝒯/ε`, so by averaging some length-`n_{k+1}` segment
//!    `(v', w')` of the path still carries `≥ k/2·α·n_{k+1}𝒯`. Rewind and
//!    run `Ē_{k+1}` instead — rates graded from `1 + ε` at `v'` down to `1`
//!    at `w'`, message pattern held fixed by receiver-local-time delivery —
//!    which hands `v'` an extra `α·n_{k+1}𝒯`, restoring the invariant
//!    `skew ≥ (k + 2)/2 · α·n_{k+1}·𝒯`.
//!
//! After `S` stages the pair is a single edge carrying
//! `(S + 1)/2 · α𝒯 = (1 + ⌊log_b D'⌋)/2 · α𝒯` of skew — Theorem 7.7. The
//! guarantee needs `b ≥ ⌈2(β − α)/(αε)⌉`; running the construction with a
//! smaller branching factor still *measures* whatever skew it manages to
//! force (useful against aggressive algorithms like `A^opt`, whose `β`
//! makes the guaranteed `b` large).
//!
//! The rewind step uses the engine's snapshot/restore (`Clone`) — the
//! *extended execution* device of Definition 7.4.

use gcs_graph::{topology, Graph, NodeId};
use gcs_sim::{DelayCtx, DelayModel, Delivery, Engine, Protocol};

/// The `Φ`-directed delivery rule of Lemma 7.6 (with `φ = 0`), expressed in
/// receiver-local time so the identical rule serves both the base execution
/// `E` (where all rates are 1 and it reduces to plain delays of `0`/`𝒯`)
/// and the shifted execution `Ē`.
///
/// A message sent at sender reading `X` is delivered when the receiver
/// reads `base_dst + (X − base_src) + d_E`, where `base_u` is `u`'s reading
/// at the start of the stage and `d_E = 0` if `Φ(src) ≥ Φ(dst)` (moving
/// toward the `w`-side) and `𝒯` otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedDelay {
    phi: Vec<i64>,
    bases: Vec<f64>,
    t_max: f64,
}

impl StagedDelay {
    /// An inert placeholder used before the first stage is configured.
    pub fn unconfigured(n: usize, t_max: f64) -> Self {
        StagedDelay {
            phi: vec![0; n],
            bases: vec![0.0; n],
            t_max,
        }
    }

    /// Configures the rule for a stage with pair `(v, w)`: `Φ(u) =
    /// d(w, u) − d(v, u)`, bases taken from the engine at stage start.
    pub fn configure(&mut self, graph: &Graph, v: NodeId, w: NodeId, bases: Vec<f64>) {
        let dw = graph.distances_from(w);
        let dv = graph.distances_from(v);
        self.phi = dw
            .iter()
            .zip(&dv)
            .map(|(&a, &b)| a as i64 - b as i64)
            .collect();
        self.bases = bases;
    }
}

impl DelayModel for StagedDelay {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        let d_e = if self.phi[ctx.src.index()] >= self.phi[ctx.dst.index()] {
            0.0
        } else {
            self.t_max
        };
        let target =
            self.bases[ctx.dst.index()] + (ctx.src_hw() - self.bases[ctx.src.index()]) + d_e;
        Delivery::AtReceiverHw(target)
    }

    fn uncertainty(&self) -> Option<f64> {
        Some(self.t_max)
    }
}

/// Outcome of one stage of the construction.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage index `k` (0 is the base case).
    pub stage: usize,
    /// The ahead node `v_k` (path index).
    pub ahead: usize,
    /// The behind node `w_k` (path index).
    pub behind: usize,
    /// `n_k = d(v_k, w_k)`.
    pub distance: usize,
    /// Measured `L_{v_k} − L_{w_k}` at the stage checkpoint.
    pub skew: f64,
    /// The invariant target `(k + 1)/2 · α · n_k · 𝒯` (guaranteed when the
    /// branching factor meets Theorem 7.7's threshold).
    pub target: f64,
    /// Real time of the stage checkpoint.
    pub time: f64,
}

/// Harness for the Theorem 7.7 construction on a path of `b^stages` edges.
///
/// # Example
///
/// ```
/// use gcs_adversary::LocalLowerBound;
/// use gcs_core::NoSync;
///
/// // NoSync has α = 1 − ε, β = 1 + ε ⇒ guaranteed b = ⌈4/(1 − ε)⌉ = 5.
/// let lb = LocalLowerBound::new(5, 2, 0.2, 1.0, 0.8);
/// let reports = lb.run(|n| vec![NoSync; n]);
/// let last = reports.last().unwrap();
/// assert_eq!(last.distance, 1);
/// assert!(last.skew >= last.target - 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalLowerBound {
    b: usize,
    stages: usize,
    epsilon: f64,
    t_max: f64,
    alpha: f64,
}

impl LocalLowerBound {
    /// Creates the harness.
    ///
    /// * `b` — branching factor (path lengths shrink by `b` per stage);
    ///   Theorem 7.7 guarantees the invariant when
    ///   `b ≥ ⌈2(β − α)/(αε)⌉` for the algorithm under attack,
    /// * `stages` — number of halving stages `S`; the path has `b^S` edges,
    /// * `epsilon` — the true drift bound `ε` the adversary may use,
    /// * `t_max` — the delay uncertainty `𝒯`,
    /// * `alpha` — the algorithm's minimum logical rate `α`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn new(b: usize, stages: usize, epsilon: f64, t_max: f64, alpha: f64) -> Self {
        assert!(b >= 2, "branching factor must be at least 2");
        assert!(stages >= 1, "need at least one stage");
        assert!(epsilon > 0.0 && epsilon < 1.0, "invalid ε {epsilon}");
        assert!(t_max > 0.0 && t_max.is_finite(), "invalid 𝒯 {t_max}");
        assert!(alpha > 0.0, "invalid α {alpha}");
        LocalLowerBound {
            b,
            stages,
            epsilon,
            t_max,
            alpha,
        }
    }

    /// The branching factor Theorem 7.7 requires for an algorithm with the
    /// given rate envelope.
    pub fn required_branching(alpha: f64, beta: f64, epsilon: f64) -> usize {
        (2.0 * (beta - alpha) / (alpha * epsilon)).ceil() as usize
    }

    /// The path length `D' = b^S` (number of edges).
    pub fn d_prime(&self) -> usize {
        self.b.pow(self.stages as u32)
    }

    /// The skew Theorem 7.7 forces between the final pair of neighbours:
    /// `(S + 1)/2 · α𝒯`.
    pub fn guaranteed_final_skew(&self) -> f64 {
        (self.stages as f64 + 1.0) / 2.0 * self.alpha * self.t_max
    }

    /// Runs the construction against the given algorithm (the factory
    /// receives the node count) and returns one report per stage,
    /// `stage = 0..=S`, ending with a pair at distance 1.
    pub fn run<P: Protocol>(&self, make: impl FnOnce(usize) -> Vec<P>) -> Vec<StageReport> {
        let d_prime = self.d_prime();
        let n_nodes = d_prime + 1;
        let graph = topology::path(n_nodes);
        let mut engine = Engine::builder(graph.clone())
            .protocols(make(n_nodes))
            .delay_model(StagedDelay::unconfigured(n_nodes, self.t_max))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(0.0); // process the wakes so rates can be driven

        let mut reports = Vec::with_capacity(self.stages + 1);
        // Current pair, oriented: `ahead` is the paper's v, `behind` its w.
        let mut ahead = 0usize;
        let mut behind = d_prime;
        let mut t_cur = 0.0;

        for stage in 0..=self.stages {
            let span = ahead.abs_diff(behind);
            // Segment length this stage establishes skew on.
            let n_next = if stage == 0 { span } else { span / self.b };
            debug_assert!(n_next >= 1);
            let duration = n_next as f64 * self.t_max / self.epsilon;
            let t_end = t_cur + duration;

            let bases: Vec<f64> = graph.nodes().map(|v| engine.hardware_value(v)).collect();
            let snapshot = engine.clone();

            // --- Base execution E: all rates 1, Φ-directed delays. ---
            self.configure(&mut engine, &graph, ahead, behind, bases.clone(), None);
            engine.run_until(t_end);

            // Choose the oriented segment (v', w') of length n_next with the
            // largest skew; for the base stage the segment is the whole pair
            // and the dichotomy below decides E vs Ē.
            let clocks = engine.logical_values();
            let (v_next, w_next, score) = if stage == 0 {
                (ahead, behind, clocks[ahead] - clocks[behind])
            } else {
                let mut best = (ahead, behind, f64::NEG_INFINITY);
                for m in 0..self.b {
                    let (v_m, w_m) = if ahead < behind {
                        (ahead + m * n_next, ahead + (m + 1) * n_next)
                    } else {
                        (ahead - m * n_next, ahead - (m + 1) * n_next)
                    };
                    let s = clocks[v_m] - clocks[w_m];
                    if s > best.2 {
                        best = (v_m, w_m, s);
                    }
                }
                best
            };

            let threshold = self.alpha * n_next as f64 * self.t_max;
            if stage == 0 && score <= -threshold / 2.0 {
                // E itself already exhibits the skew — with roles switched.
                std::mem::swap(&mut ahead, &mut behind);
                reports.push(StageReport {
                    stage,
                    ahead,
                    behind,
                    distance: span,
                    skew: -score,
                    target: threshold / 2.0,
                    time: t_end,
                });
                t_cur = t_end;
                continue;
            }

            // --- Shifted execution Ē: rewind; grade the v'-side fast. ---
            engine = snapshot;
            self.configure(
                &mut engine,
                &graph,
                ahead,
                behind,
                bases,
                Some((v_next, n_next)),
            );
            engine.run_until(t_end);

            let clocks = engine.logical_values();
            let skew = clocks[v_next] - clocks[w_next];
            let target = (stage as f64 + 1.0) / 2.0 * self.alpha * n_next as f64 * self.t_max;
            reports.push(StageReport {
                stage,
                ahead: v_next,
                behind: w_next,
                distance: n_next,
                skew,
                target,
                time: t_end,
            });
            ahead = v_next;
            behind = w_next;
            t_cur = t_end;
        }
        reports
    }

    /// Configures delays (always) and rates (graded for `Ē`, unit for `E`)
    /// for one stage phase.
    fn configure<P: Protocol>(
        &self,
        engine: &mut Engine<P, StagedDelay>,
        graph: &Graph,
        pair_v: usize,
        pair_w: usize,
        bases: Vec<f64>,
        graded: Option<(usize, usize)>,
    ) {
        engine
            .delay_model_mut()
            .configure(graph, NodeId(pair_v), NodeId(pair_w), bases);
        let dv = graph.distances_from(NodeId(pair_v));
        let dw = graph.distances_from(NodeId(pair_w));
        let phi = |u: usize| dw[u] as i64 - dv[u] as i64;
        for u in 0..graph.len() {
            let rate = match graded {
                None => 1.0,
                Some((v_next, n_next)) => {
                    // Lemma 7.6: h_u = clamp(1 + ε − (Φ(v') − Φ(u))·ε/(2n'), 1, 1 + ε).
                    let delta = (phi(v_next) - phi(u)) as f64;
                    (1.0 + self.epsilon - delta * self.epsilon / (2.0 * n_next as f64))
                        .clamp(1.0, 1.0 + self.epsilon)
                }
            };
            engine.set_hardware_rate(NodeId(u), rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, NoSync, Params};

    #[test]
    fn construction_meets_targets_against_nosync() {
        // NoSync: α = 1 − ε = 0.8, β = 1 + ε ⇒ required b = ⌈2·0.4/(0.8·0.2)⌉ = 5.
        let eps = 0.2;
        let b = LocalLowerBound::required_branching(0.8, 1.2, eps);
        assert_eq!(b, 5);
        let lb = LocalLowerBound::new(b, 2, eps, 1.0, 0.8);
        let reports = lb.run(|n| vec![NoSync; n]);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(
                r.skew >= r.target - 1e-9,
                "stage {} skew {} below target {}",
                r.stage,
                r.skew,
                r.target
            );
        }
        let last = reports.last().unwrap();
        assert_eq!(last.distance, 1);
        assert!(last.skew >= lb.guaranteed_final_skew() - 1e-9);
    }

    #[test]
    fn stage_targets_grow_per_level() {
        let lb = LocalLowerBound::new(5, 2, 0.2, 1.0, 0.8);
        let reports = lb.run(|n| vec![NoSync; n]);
        // Targets: 0.5·α·n₀𝒯, 1·α·n₁𝒯, 1.5·α·n₂𝒯 — per-edge average grows.
        let averages: Vec<f64> = reports.iter().map(|r| r.skew / r.distance as f64).collect();
        assert!(averages.windows(2).all(|w| w[1] > w[0] - 1e-9));
    }

    #[test]
    fn forces_skew_on_a_opt_too() {
        // A^opt's β makes the guaranteed branching large; with a modest b
        // the invariant is not promised, but the construction must still
        // force at least the trivial αD𝒯-average floor on the base stage
        // and a clearly positive local skew at the end.
        let eps = 0.1;
        let t_max = 1.0;
        let params = Params::recommended(eps, t_max).unwrap();
        let lb = LocalLowerBound::new(3, 2, eps, t_max, 1.0 - eps);
        let reports = lb.run(|n| vec![AOpt::new(params); n]);
        assert!(reports[0].skew >= reports[0].target - 1e-9);
        let last = reports.last().unwrap();
        assert_eq!(last.distance, 1);
        assert!(
            last.skew > 0.2 * t_max,
            "final skew {} too small",
            last.skew
        );
        // …and A^opt never violates its own guarantees while being attacked.
        assert!(last.skew <= params.local_skew_bound(9) + 1e-9);
    }

    #[test]
    fn d_prime_and_guarantee_formulas() {
        let lb = LocalLowerBound::new(4, 3, 0.1, 2.0, 0.9);
        assert_eq!(lb.d_prime(), 64);
        assert!((lb.guaranteed_final_skew() - 2.0 * 0.9 * 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn rejects_tiny_branching() {
        let _ = LocalLowerBound::new(1, 2, 0.1, 1.0, 0.9);
    }
}
