//! Worst-case execution constructions from Section 7 of Lenzen, Locher &
//! Wattenhofer, *Tight Bounds for Clock Synchronization*.
//!
//! The paper's lower bounds are *indistinguishability* arguments: the
//! adversary prepares two executions in which every node observes the exact
//! same messages at the exact same readings of its own hardware clock
//! (Definition 7.1), so every algorithm behaves identically in both — yet
//! real time differs, forcing skew. The key mechanical trick is *shifting*:
//! deliver each message when the receiver's hardware clock reaches a
//! prescribed value; the simulator supports this delivery mode natively.
//!
//! * [`shift`] — Theorem 7.2: the executions `E₁`/`E₂`/`E₃` forcing a
//!   global skew of `(1 + ϱ)·D·𝒯` on every algorithm that stays within the
//!   real-time envelope (Condition 1).
//! * [`framed`] — Lemma 7.6 and Theorem 7.7: `φ`-framed executions and the
//!   iterative construction that drives an average skew of
//!   `(k + 1)/2 · α𝒯` onto paths of geometrically shrinking length,
//!   forcing a local skew of `(1 + ⌊log_b D⌋)·α𝒯/2`.
//! * [`slowdown`] — Lemma 7.10: indistinguishably stealing `φ𝒯/(1 + ε)`
//!   real time from a single node — the tool behind Theorem 7.12's bound
//!   for unbounded clock rates.
//! * [`logged`] — a protocol wrapper recording each node's local
//!   observations, used to *verify* indistinguishability empirically.
//! * [`stress`] — heuristic greedy adversaries (delay flapping) used by the
//!   baseline-comparison experiments.
//! * [`fault`] — timed fault primitives (clog/flap/drop/dup/partition/
//!   crash/rate) and the seeded [`ChaosDelay`] injection layer behind the
//!   `gcs chaos` scenario engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod framed;
pub mod logged;
pub mod shift;
pub mod slowdown;
pub mod stress;

pub use fault::{
    apply_rate_faults, format_schedule, parse_schedule, ChaosDelay, EdgeSel, FaultClause,
    FaultKind, NodeSel,
};
pub use framed::{LocalLowerBound, StageReport};
pub use logged::{LocalLog, Logged, LoggedEvent};
pub use shift::{GlobalLowerBound, ShiftReport};
pub use stress::{FlappingDelay, WavefrontDelay};
