//! Recording a node's local observations to verify indistinguishability.

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};

/// One locally observable event: a message arrival, identified by the
/// receiver's hardware-clock reading, the sending port, and the payload
/// (rendered via `Debug` — protocols are deterministic, so equal payloads
/// have equal renderings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedEvent {
    /// Receiver's hardware-clock reading at delivery, quantized to 1e-6 to
    /// make logs comparable across executions despite floating-point noise.
    pub hw_micros: i64,
    /// The sending neighbour.
    pub from: NodeId,
    /// The payload, rendered with `Debug`.
    pub payload: String,
}

/// The full local log of one node.
pub type LocalLog = Vec<LoggedEvent>;

/// A protocol wrapper that records every message arrival in the wrapped
/// node's *local* time.
///
/// Two executions are indistinguishable at a node (paper Definition 7.1)
/// exactly when the node's logs agree — this wrapper turns that definition
/// into an executable assertion. Used by the lower-bound tests: the shifted
/// execution's log must be a prefix of (or equal to) the base execution's
/// log at every node.
#[derive(Debug, Clone)]
pub struct Logged<P> {
    inner: P,
    log: LocalLog,
}

impl<P> Logged<P> {
    /// Wraps a protocol.
    pub fn new(inner: P) -> Self {
        Logged {
            inner,
            log: Vec::new(),
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The recorded local log.
    pub fn log(&self) -> &LocalLog {
        &self.log
    }
}

/// Whether `shorter` is a prefix of `longer` — the indistinguishability
/// relation between an execution and a longer base execution.
///
/// Compares the *message pattern* (arrival local time and sending port).
/// For a deterministic algorithm, equal patterns at every node inductively
/// imply equal payloads too; the payloads themselves are excluded from the
/// comparison because their low-order floating-point bits differ across
/// executions that are mathematically identical.
pub fn is_log_prefix(shorter: &LocalLog, longer: &LocalLog) -> bool {
    shorter.len() <= longer.len()
        && shorter
            .iter()
            .zip(longer)
            .all(|(a, b)| a.hw_micros == b.hw_micros && a.from == b.from)
}

/// Whether two logs describe the same local observations up to the common
/// local-time horizon both of them reach.
///
/// Events are compared as a multiset of `(local time, sender)` pairs:
/// simultaneous deliveries are unordered in the model (the engine's
/// tie-break by send sequence is an artifact that legitimately differs
/// between indistinguishable executions). Events at or after the earlier of
/// the two logs' last timestamps are excluded — that group may be truncated
/// by the run horizon.
pub fn logs_consistent(a: &LocalLog, b: &LocalLog) -> bool {
    let ha = a.last().map_or(i64::MIN, |e| e.hw_micros);
    let hb = b.last().map_or(i64::MIN, |e| e.hw_micros);
    let h = ha.min(hb);
    let trim = |l: &LocalLog| {
        let mut v: Vec<(i64, gcs_graph::NodeId)> = l
            .iter()
            .filter(|e| e.hw_micros < h)
            .map(|e| (e.hw_micros, e.from))
            .collect();
        v.sort_unstable();
        v
    };
    trim(a) == trim(b)
}

impl<P: Protocol> Protocol for Logged<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, P::Msg>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, P::Msg>, from: NodeId, msg: P::Msg) {
        self.log.push(LoggedEvent {
            hw_micros: (ctx.hw() * 1e6).round() as i64,
            from,
            payload: format!("{msg:?}"),
        });
        self.inner.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, P::Msg>, timer: TimerId) {
        self.inner.on_timer(ctx, timer);
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.inner.logical_value(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        self.inner.rate_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, Params};
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, Engine};

    #[test]
    fn logs_capture_arrivals_in_local_time() {
        let p = Params::recommended(0.01, 0.1).unwrap();
        let g = topology::path(2);
        let mut engine = Engine::builder(g)
            .protocols(vec![Logged::new(AOpt::new(p)); 2])
            .delay_model(ConstantDelay::new(0.05))
            .build();
        engine.wake(NodeId(0), 0.0);
        engine.run_until(5.0);
        let log1 = engine.protocol(NodeId(1)).log();
        assert!(!log1.is_empty());
        assert_eq!(log1[0].from, NodeId(0));
        assert_eq!(log1[0].hw_micros, 0); // woken by the first message
    }

    #[test]
    fn identical_executions_have_identical_logs() {
        let run = || {
            let p = Params::recommended(0.01, 0.1).unwrap();
            let g = topology::path(3);
            let mut engine = Engine::builder(g)
                .protocols(vec![Logged::new(AOpt::new(p)); 3])
                .delay_model(ConstantDelay::new(0.02))
                .build();
            engine.wake_all_at(0.0);
            engine.run_until(20.0);
            (0..3)
                .map(|v| engine.protocol(NodeId(v)).log().clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn prefix_relation() {
        let a = vec![LoggedEvent {
            hw_micros: 1,
            from: NodeId(0),
            payload: "x".into(),
        }];
        let mut b = a.clone();
        b.push(LoggedEvent {
            hw_micros: 2,
            from: NodeId(1),
            payload: "y".into(),
        });
        assert!(is_log_prefix(&a, &b));
        assert!(!is_log_prefix(&b, &a));
        assert!(is_log_prefix(&a, &a));
    }
}
