//! Theorem 7.2: the global-skew lower bound via shifted executions.
//!
//! Three executions that no node can tell apart:
//!
//! * `E₁` — all hardware rates `1 − ε'`; messages toward the reference node
//!   `v₀` take `𝒯'`, all others are instantaneous.
//! * `E₂` — all rates `1 + ε'`; toward-`v₀` delays `(1 − ε')𝒯'/(1 + ε')`.
//! * `E₃` — node `v` runs at `1 + ϱ + (1 − d(v₀,v)/D)·ε̃` until
//!   `t₀ = (1 + ϱ)D𝒯/ε̃`, then at `1 + ϱ`; delays are adjusted so that each
//!   message arrives when the *receiver's* hardware clock shows the same
//!   reading as in `E₁`.
//!
//! All three produce the identical local message pattern: a message sent at
//! sender reading `X` arrives at receiver reading `X + (1 − ε')𝒯'` (toward
//! `v₀`) or `X` (away). An algorithm bound to the real-time envelope
//! (Condition 1) must run its logical clock exactly at its hardware clock
//! in `E₁`/`E₂` — anything slower violates the envelope in `E₁`, anything
//! faster violates it in `E₂` — hence also in `E₃`, where the hardware
//! clocks of `v₀` and `v_D` drift `(1 + ϱ)·D·𝒯` apart by time `t₀`.
//!
//! `ϱ = min{ε, (1 − ε')·𝒯̂/𝒯 − 1}`: with sloppy estimates
//! (`𝒯̂ ≫ 𝒯` or `ε' ≪ ε`) the forced skew reaches `(1 + ε)D𝒯`; even with
//! perfect estimates it is `(1 − ε)D𝒯` (Corollary 7.3).

use gcs_graph::{Graph, NodeId};
use gcs_sim::{DelayCtx, DelayModel, Delivery, Engine, Protocol};
use gcs_time::RateSchedule;

use crate::logged::{logs_consistent, LocalLog, Logged};

/// Which of the three indistinguishable executions to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftExecution {
    /// All rates `1 − ε'`, slow toward-`v₀` delays.
    E1,
    /// All rates `1 + ε'`, proportionally shrunk delays.
    E2,
    /// The graded-rate execution building `(1 + ϱ)D𝒯` of real skew.
    E3,
}

/// The delay rule shared by all three executions: deliver when the
/// receiver's hardware clock reaches the sender's send-time reading plus
/// `(1 − ε')𝒯'` for toward-`v₀` messages (0 otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftedDelay {
    dist: Vec<u32>,
    local_lag: f64,
}

impl ShiftedDelay {
    /// Builds the rule for the given reference node and local lag.
    pub fn new(graph: &Graph, reference: NodeId, local_lag: f64) -> Self {
        assert!(local_lag >= 0.0, "negative lag {local_lag}");
        ShiftedDelay {
            dist: graph.distances_from(reference),
            local_lag,
        }
    }
}

impl DelayModel for ShiftedDelay {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        let toward = self.dist[ctx.dst.index()] < self.dist[ctx.src.index()];
        let lag = if toward { self.local_lag } else { 0.0 };
        Delivery::AtReceiverHw(ctx.src_hw() + lag)
    }
}

/// Report of one shifted-execution run.
#[derive(Debug, Clone)]
pub struct ShiftReport {
    /// Which execution was run.
    pub execution: ShiftExecution,
    /// `L_{v₀} − L_{v_D}` at the end of the run.
    pub endpoint_skew: f64,
    /// The largest pairwise logical skew observed at the end of the run.
    pub max_skew: f64,
    /// Per-node local observation logs (for indistinguishability checks).
    pub logs: Vec<LocalLog>,
}

/// Harness for the Theorem 7.2 construction on a given graph.
///
/// # Example
///
/// ```
/// use gcs_adversary::GlobalLowerBound;
/// use gcs_core::{AOpt, Params};
/// use gcs_graph::topology;
///
/// // True 𝒯 = 0.5 but the algorithm only knows 𝒯̂ = 1.0 (c₁ = ½):
/// let lb = GlobalLowerBound::new(topology::path(5), 0.05, 0.05, 0.5, 1.0, 0.01);
/// let params = Params::recommended(0.05, 1.0)?;
/// let report = lb.run(vec![AOpt::new(params); 5], gcs_adversary::shift::ShiftExecution::E3);
/// // The forced skew is within a whisker of the prediction (1 + ϱ)·D·𝒯.
/// assert!(report.endpoint_skew >= 0.9 * lb.predicted_skew());
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GlobalLowerBound {
    graph: Graph,
    v0: NodeId,
    vd: NodeId,
    d: u32,
    epsilon: f64,
    eps_prime: f64,
    t: f64,
    eps_tilde: f64,
    rho: f64,
    t_prime: f64,
}

impl GlobalLowerBound {
    /// Sets up the construction.
    ///
    /// * `epsilon` — the true drift bound `ε` (rates stay within it),
    /// * `eps_prime` — the adversary's pretended minimal drift `ε' ≤ ε`
    ///   (the paper's `c₂ε̂`),
    /// * `t` — the true delay uncertainty `𝒯`,
    /// * `t_hat` — the bound `𝒯̂ ≥ 𝒯` known to the algorithm,
    /// * `eps_tilde` — the paper's infinitesimal `ε̃ > 0`; smaller values
    ///   are more faithful but make `t₀ = (1 + ϱ)D𝒯/ε̃` (and the run)
    ///   longer. The effective `ϱ` is reduced by `ε̃` so all `E₃` rates
    ///   stay within the *true* drift bound.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range.
    pub fn new(
        graph: Graph,
        epsilon: f64,
        eps_prime: f64,
        t: f64,
        t_hat: f64,
        eps_tilde: f64,
    ) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "invalid ε {epsilon}");
        assert!(
            eps_prime > 0.0 && eps_prime <= epsilon,
            "need 0 < ε' ≤ ε, got {eps_prime}"
        );
        assert!(t > 0.0 && t_hat >= t, "need 0 < 𝒯 ≤ 𝒯̂");
        assert!(
            eps_tilde > 0.0 && eps_tilde < epsilon,
            "need 0 < ε̃ < ε, got {eps_tilde}"
        );
        let (v0, vd) = graph.diameter_endpoints();
        let d = graph.distance(v0, vd);
        let rho_paper = epsilon.min((1.0 - eps_prime) * t_hat / t - 1.0);
        // Stay strictly within the true drift bound instead of the paper's
        // "formally allow ε + ε̃" convention.
        let rho = rho_paper.min(epsilon - eps_tilde).max(-eps_prime);
        let t_prime = (1.0 + rho) * t / (1.0 - eps_prime);
        GlobalLowerBound {
            graph,
            v0,
            vd,
            d,
            epsilon,
            eps_prime,
            t,
            eps_tilde,
            rho,
            t_prime,
        }
    }

    /// The reference node `v₀` (one diameter endpoint).
    pub fn v0(&self) -> NodeId {
        self.v0
    }

    /// The far node `v_D`.
    pub fn vd(&self) -> NodeId {
        self.vd
    }

    /// The effective `ϱ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The forced skew `(1 + ϱ)·D·𝒯` (Theorem 7.2).
    pub fn predicted_skew(&self) -> f64 {
        (1.0 + self.rho) * self.d as f64 * self.t
    }

    /// The time `t₀ = (1 + ϱ)·D·𝒯/ε̃` at which `E₃`'s rates level off and
    /// the full hardware skew has accumulated.
    pub fn t0(&self) -> f64 {
        self.predicted_skew() / self.eps_tilde
    }

    /// The local message lag `(1 − ε')𝒯'` every receiver observes on
    /// toward-`v₀` messages.
    pub fn local_lag(&self) -> f64 {
        (1.0 - self.eps_prime) * self.t_prime
    }

    fn schedules(&self, execution: ShiftExecution) -> Vec<RateSchedule> {
        match execution {
            ShiftExecution::E1 => {
                vec![
                    RateSchedule::constant(1.0 - self.eps_prime).expect("valid rate");
                    self.graph.len()
                ]
            }
            ShiftExecution::E2 => {
                vec![
                    RateSchedule::constant(1.0 + self.eps_prime).expect("valid rate");
                    self.graph.len()
                ]
            }
            ShiftExecution::E3 => {
                let dist = self.graph.distances_from(self.v0);
                let t0 = self.t0();
                dist.iter()
                    .map(|&dv| {
                        let frac = 1.0 - dv as f64 / self.d as f64;
                        let early = 1.0 + self.rho + frac * self.eps_tilde;
                        debug_assert!(early <= 1.0 + self.epsilon + 1e-12);
                        RateSchedule::from_steps(vec![(0.0, early), (t0, 1.0 + self.rho)])
                            .expect("valid steps")
                    })
                    .collect()
            }
        }
    }

    /// Runs `protocols` (one per node) under the chosen execution until
    /// just past `t₀` (scaled appropriately for `E₁`/`E₂`, which have no
    /// `t₀` of their own) and reports the resulting skews and logs.
    ///
    /// # Panics
    ///
    /// Panics if `protocols.len()` differs from the node count.
    pub fn run<P: Protocol>(&self, protocols: Vec<P>, execution: ShiftExecution) -> ShiftReport {
        let logged: Vec<Logged<P>> = protocols.into_iter().map(Logged::new).collect();
        let delay = ShiftedDelay::new(&self.graph, self.v0, self.local_lag());
        let mut engine = Engine::builder(self.graph.clone())
            .protocols(logged)
            .delay_model(delay)
            .rate_schedules(self.schedules(execution))
            .build();
        engine.wake_all_at(0.0);
        let horizon = match execution {
            // Run E₁/E₂ long enough to cover at least the same local time
            // span as E₃ (whose slowest rate is 1 + ϱ ≥ 1 − ε').
            ShiftExecution::E1 => self.t0() * (1.0 + self.rho) / (1.0 - self.eps_prime),
            ShiftExecution::E2 => self.t0() * (1.0 + self.rho) / (1.0 + self.eps_prime),
            ShiftExecution::E3 => self.t0(),
        };
        engine.run_until(horizon);
        let clocks = engine.logical_values();
        let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
        let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
        ShiftReport {
            execution,
            endpoint_skew: clocks[self.v0.index()] - clocks[self.vd.index()],
            max_skew: max - min,
            logs: self
                .graph
                .nodes()
                .map(|v| engine.protocol(v).log().clone())
                .collect(),
        }
    }

    /// Runs all three executions and checks pairwise indistinguishability:
    /// at every node, one log must be a prefix of the other. Returns the
    /// three reports and the verdict.
    pub fn verify_indistinguishable<P: Protocol>(
        &self,
        make: impl Fn() -> Vec<P>,
    ) -> ([ShiftReport; 3], bool) {
        let r1 = self.run(make(), ShiftExecution::E1);
        let r2 = self.run(make(), ShiftExecution::E2);
        let r3 = self.run(make(), ShiftExecution::E3);
        let consistent = |a: &ShiftReport, b: &ShiftReport| {
            a.logs
                .iter()
                .zip(&b.logs)
                .all(|(x, y)| logs_consistent(x, y))
        };
        let ok = consistent(&r1, &r2) && consistent(&r1, &r3) && consistent(&r2, &r3);
        ([r1, r2, r3], ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, MaxAlgorithm, Params};
    use gcs_graph::topology;

    #[test]
    fn e3_forces_predicted_skew_on_a_opt() {
        // Loose 𝒯̂ (2× the truth): ϱ ≈ ε, forced skew ≈ (1 + ε)D𝒯.
        let (eps, t, t_hat) = (0.05, 0.5, 1.0);
        let lb = GlobalLowerBound::new(topology::path(5), eps, eps, t, t_hat, 0.01);
        assert!(lb.rho() > 0.0);
        let params = Params::recommended(eps, t_hat).unwrap();
        let report = lb.run(vec![AOpt::new(params); 5], ShiftExecution::E3);
        let predicted = lb.predicted_skew();
        assert!(
            report.endpoint_skew >= 0.9 * predicted,
            "forced only {} of predicted {predicted}",
            report.endpoint_skew
        );
        // And A^opt's upper bound is not violated either.
        assert!(report.max_skew <= params.global_skew_bound(4) + 1e-6);
    }

    #[test]
    fn tight_estimates_still_force_one_minus_eps_dt() {
        // Perfect knowledge (𝒯̂ = 𝒯, ε' = ε): ϱ = −ε' ⇒ skew (1 − ε)D𝒯
        // (Corollary 7.3's second statement).
        let (eps, t) = (0.05, 0.5);
        let lb = GlobalLowerBound::new(topology::path(5), eps, eps, t, t, 0.01);
        assert!((lb.rho() + eps).abs() < 1e-12);
        let params = Params::recommended(eps, t).unwrap();
        let report = lb.run(vec![AOpt::new(params); 5], ShiftExecution::E3);
        let predicted = lb.predicted_skew();
        assert!((predicted - (1.0 - eps) * 4.0 * t).abs() < 1e-9);
        assert!(report.endpoint_skew >= 0.9 * predicted);
    }

    #[test]
    fn the_three_executions_are_indistinguishable_for_a_opt() {
        let (eps, t, t_hat) = (0.05, 0.5, 1.0);
        let lb = GlobalLowerBound::new(topology::path(4), eps, eps, t, t_hat, 0.01);
        let params = Params::recommended(eps, t_hat).unwrap();
        let (_, ok) = lb.verify_indistinguishable(|| vec![AOpt::new(params); 4]);
        assert!(ok, "E₁/E₂/E₃ must be locally indistinguishable");
    }

    #[test]
    fn even_the_jump_happy_max_algorithm_is_forced() {
        // Theorem 7.2 applies to any envelope-respecting algorithm;
        // MaxAlgorithm respects the envelope (it never overtakes the true
        // maximum), so it too is forced.
        let (eps, t, t_hat) = (0.05, 0.5, 1.0);
        let lb = GlobalLowerBound::new(topology::path(5), eps, eps, t, t_hat, 0.01);
        let report = lb.run(vec![MaxAlgorithm::new(1.0); 5], ShiftExecution::E3);
        assert!(report.endpoint_skew >= 0.9 * lb.predicted_skew());
    }

    #[test]
    fn e1_and_e2_build_no_real_skew() {
        let (eps, t, t_hat) = (0.05, 0.5, 1.0);
        let lb = GlobalLowerBound::new(topology::path(4), eps, eps, t, t_hat, 0.01);
        let params = Params::recommended(eps, t_hat).unwrap();
        for exec in [ShiftExecution::E1, ShiftExecution::E2] {
            let report = lb.run(vec![AOpt::new(params); 4], exec);
            // Identical rates everywhere: logical clocks stay equal.
            assert!(
                report.max_skew < 1e-6,
                "{exec:?} built unexpected skew {}",
                report.max_skew
            );
        }
    }

    #[test]
    fn delay_legality_in_e3() {
        // Every message in E₃ must arrive within [0, 𝒯] real time. The
        // engine would panic on a negative target; here we additionally
        // check the positive side by construction: lag/(1 + ϱ) ≤ 𝒯.
        let (eps, t, t_hat) = (0.05, 0.5, 1.0);
        let lb = GlobalLowerBound::new(topology::path(6), eps, eps, t, t_hat, 0.01);
        assert!(lb.local_lag() / (1.0 + lb.rho()) <= t + 1e-12);
    }

    #[test]
    #[should_panic(expected = "need 0 < ε' ≤ ε")]
    fn rejects_eps_prime_above_eps() {
        let _ = GlobalLowerBound::new(topology::path(3), 0.01, 0.05, 1.0, 1.0, 0.001);
    }
}
