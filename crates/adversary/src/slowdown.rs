//! Lemma 7.10: indistinguishably slowing a single node.
//!
//! In any `φ`-framed execution (hardware rates in `[1, 1 + ε]`, delays in
//! `[φ𝒯, (1 − φ)𝒯]`) the adversary can rob one node `v` of
//! `φ𝒯/(1 + ε)` real time — producing an execution in which, at time `t`,
//! `v`'s logical clock shows what it showed at `t' = t − φ𝒯/(1 + ε)` while
//! every other clock is unchanged. The trick: reduce `v`'s hardware rate by
//! `ε` for just long enough, and absorb the difference in the delay slack
//! `[φ𝒯, (1 − φ)𝒯]` so `v` (and everyone else) observes the identical
//! local message pattern.
//!
//! This is the tool with which Theorem 7.12 punishes algorithms that use
//! very fast logical rates: if a node gains `Ω(log_{1/ε} D)` logical time in
//! a `φ𝒯/(1 + ε)` window, stealing that window creates the same amount of
//! local skew to a neighbour directly.

use gcs_graph::{Graph, NodeId};
use gcs_sim::{DelayCtx, DelayModel, Delivery, Engine, Protocol};
use gcs_time::RateSchedule;

/// Delivery rule reproducing a constant-rate, constant-delay base execution
/// in receiver-local time: a message sent at sender reading `X` arrives
/// when the receiver reads `r_dst · (X / r_src + d₀)` — exactly when it
/// would arrive in the base execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseEquivalentDelay {
    rates: Vec<f64>,
    d0: f64,
}

impl BaseEquivalentDelay {
    /// Creates the rule for base rates `rates` and base delay `d0`.
    pub fn new(rates: Vec<f64>, d0: f64) -> Self {
        assert!(d0 >= 0.0 && d0.is_finite(), "invalid base delay {d0}");
        BaseEquivalentDelay { rates, d0 }
    }
}

impl DelayModel for BaseEquivalentDelay {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        let r_src = self.rates[ctx.src.index()];
        let r_dst = self.rates[ctx.dst.index()];
        Delivery::AtReceiverHw(r_dst * (ctx.src_hw() / r_src + self.d0))
    }

    fn uncertainty(&self) -> Option<f64> {
        None
    }
}

/// Result of the Lemma 7.10 demonstration.
#[derive(Debug, Clone)]
pub struct SlowdownReport {
    /// `L_v` in the base execution at `t' = t − φ𝒯/(1+ε)`.
    pub base_at_shifted_time: f64,
    /// `L_v` in the modified execution at `t`.
    pub modified_at_t: f64,
    /// Worst deviation of any *other* node between the two executions at
    /// `t` (should be ≈ 0: other nodes are untouched).
    pub max_other_deviation: f64,
}

/// Runs the Lemma 7.10 construction.
///
/// The base execution `E` runs each node `u` at the constant rate
/// `rates[u] ∈ [1, 1 + ε]` with every delay exactly `d0 ∈ [φ𝒯, (1 − φ)𝒯]`.
/// The modified execution `Ē` reduces `victim`'s rate by `epsilon` on the
/// prefix `[0, rates[victim]·φ𝒯 / ((1 + ε)·ε)]` and delivers every message
/// at the same receiver-local reading as `E`. All nodes are woken at time
/// zero.
///
/// Returns the report; Lemma 7.10 predicts
/// `modified_at_t == base_at_shifted_time` and zero deviation elsewhere.
///
/// # Panics
///
/// Panics if the parameters leave the `φ`-framed regime.
// The argument list mirrors the lemma's statement one-to-one; a config
// struct would only rename the symbols away from the paper's.
#[allow(clippy::too_many_arguments)]
pub fn slow_node_demo<P: Protocol>(
    graph: Graph,
    make_protocols: impl Fn() -> Vec<P>,
    rates: Vec<f64>,
    epsilon: f64,
    phi: f64,
    t_max: f64,
    d0: f64,
    victim: NodeId,
    t: f64,
) -> SlowdownReport {
    assert!(epsilon > 0.0 && epsilon < 1.0, "invalid ε {epsilon}");
    assert!((0.0..=0.5).contains(&phi), "invalid φ {phi}");
    assert!(
        d0 >= phi * t_max - 1e-12 && d0 <= (1.0 - phi) * t_max + 1e-12,
        "d0 = {d0} outside [φ𝒯, (1 − φ)𝒯]"
    );
    for &r in &rates {
        assert!(
            (1.0..=1.0 + epsilon + 1e-12).contains(&r),
            "rate {r} outside [1, 1 + ε]"
        );
    }
    let shift = phi * t_max / (1.0 + epsilon);
    let t_prime = t - shift;
    assert!(t_prime > 0.0, "t too small for the shift");
    let slow_duration = rates[victim.index()] * shift / epsilon;
    assert!(slow_duration <= t, "slow window must fit before t");

    // Base execution E.
    let schedules: Vec<RateSchedule> = rates
        .iter()
        .map(|&r| RateSchedule::constant(r).expect("validated"))
        .collect();
    let mut base = Engine::builder(graph.clone())
        .protocols(make_protocols())
        .delay_model(BaseEquivalentDelay::new(rates.clone(), d0))
        .rate_schedules(schedules)
        .build();
    base.wake_all_at(0.0);
    base.run_until(t_prime);
    let base_at_shifted_time = base.logical_value(victim);
    base.run_until(t);
    let base_at_t: Vec<f64> = base.logical_values();

    // Modified execution Ē: same local pattern, victim slowed on a prefix.
    let schedules: Vec<RateSchedule> = rates
        .iter()
        .enumerate()
        .map(|(u, &r)| {
            if u == victim.index() {
                RateSchedule::from_steps(vec![(0.0, r - epsilon), (slow_duration, r)])
                    .expect("valid steps")
            } else {
                RateSchedule::constant(r).expect("validated")
            }
        })
        .collect();
    let mut modified = Engine::builder(graph)
        .protocols(make_protocols())
        .delay_model(BaseEquivalentDelay::new(rates, d0))
        .rate_schedules(schedules)
        .build();
    modified.wake_all_at(0.0);
    modified.run_until(t);
    let modified_at_t_all = modified.logical_values();

    let max_other_deviation = modified_at_t_all
        .iter()
        .zip(&base_at_t)
        .enumerate()
        .filter(|&(u, _)| u != victim.index())
        .map(|(_, (a, b))| (a - b).abs())
        .fold(0.0, f64::max);

    SlowdownReport {
        base_at_shifted_time,
        modified_at_t: modified_at_t_all[victim.index()],
        max_other_deviation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, Params};
    use gcs_graph::topology;

    #[test]
    fn victim_is_shifted_back_others_unchanged() {
        let eps = 0.1;
        let t_max = 1.0;
        let phi = 0.4;
        let d0 = 0.5; // within [0.4, 0.6]
        let params = Params::recommended(eps, t_max).unwrap();
        let n = 4;
        let rates = vec![1.0 + eps, 1.0, 1.05, 1.0];
        let report = slow_node_demo(
            topology::path(n),
            || vec![AOpt::new(params); n],
            rates,
            eps,
            phi,
            t_max,
            d0,
            NodeId(2),
            60.0,
        );
        assert!(
            (report.modified_at_t - report.base_at_shifted_time).abs() < 1e-6,
            "victim clock {} should equal base clock at shifted time {}",
            report.modified_at_t,
            report.base_at_shifted_time
        );
        assert!(
            report.max_other_deviation < 1e-6,
            "other nodes deviated by {}",
            report.max_other_deviation
        );
    }

    #[test]
    fn shift_amount_is_phi_t_over_one_plus_eps() {
        // With L advancing at ≥ 1 − something, the stolen logical time is
        // about the stolen real time.
        let eps = 0.1;
        let t_max = 1.0;
        let phi = 0.5;
        let d0 = 0.5;
        let params = Params::recommended(eps, t_max).unwrap();
        let n = 2;
        let rates = vec![1.0, 1.0];
        let report = slow_node_demo(
            topology::path(n),
            || vec![AOpt::new(params); n],
            rates,
            eps,
            phi,
            t_max,
            d0,
            NodeId(1),
            40.0,
        );
        let shift = phi * t_max / (1.0 + eps);
        let stolen = report.max_other_deviation.max(0.0); // not used; compute from clocks
        let _ = stolen;
        // The victim shows an earlier reading; the gap is ≈ rate · shift.
        let gap = report.base_at_shifted_time - report.modified_at_t;
        assert!(gap.abs() < 1e-6, "indistinguishability broken: {gap}");
        assert!(shift > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [φ𝒯, (1 − φ)𝒯]")]
    fn rejects_delay_outside_frame() {
        let params = Params::recommended(0.1, 1.0).unwrap();
        let _ = slow_node_demo(
            topology::path(2),
            || vec![AOpt::new(params); 2],
            vec![1.0, 1.0],
            0.1,
            0.4,
            1.0,
            0.1, // below φ𝒯 = 0.4
            NodeId(1),
            10.0,
        );
    }
}
