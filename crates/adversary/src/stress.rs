//! Heuristic greedy adversaries for baseline-comparison experiments.
//!
//! The precise constructions of [`crate::shift`] and [`crate::framed`]
//! target specific theorems; the models here are simpler "mean"
//! environments that reliably expose the weaknesses of non-gradient
//! algorithms — in particular the *delay flip* that makes maximum-forwarding
//! algorithms build `Θ(D)`-scale skew between neighbours at the wavefront.

use gcs_graph::{Graph, NodeId};
use gcs_sim::{DelayCtx, DelayModel, Delivery, Lookahead};

/// Delays that flap between the extremes on a fixed period: during an odd
/// phase every message takes the full `𝒯`; during an even phase messages
/// toward the reference node are instantaneous (and away-messages stay
/// slow).
///
/// Slow phases let distant information go stale (skew accumulates along the
/// path); the flip to instant delivery then slams the fresh maximum into
/// part of the network while the rest still waits — the wavefront on which
/// max-forwarding algorithms exhibit their `Θ(D)` local skew.
#[derive(Debug, Clone, PartialEq)]
pub struct FlappingDelay {
    dist: Vec<u32>,
    t_max: f64,
    period: f64,
}

impl FlappingDelay {
    /// Creates the model with the given uncertainty and flip period,
    /// referenced to `reference`.
    ///
    /// # Panics
    ///
    /// Panics if `t_max < 0` or `period <= 0`.
    pub fn new(graph: &Graph, reference: NodeId, t_max: f64, period: f64) -> Self {
        assert!(t_max >= 0.0 && t_max.is_finite(), "invalid 𝒯 {t_max}");
        assert!(
            period > 0.0 && period.is_finite(),
            "invalid period {period}"
        );
        FlappingDelay {
            dist: graph.distances_from(reference),
            t_max,
            period,
        }
    }
}

impl DelayModel for FlappingDelay {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        let phase = (ctx.now / self.period).floor() as i64;
        let toward = self.dist[ctx.dst.index()] < self.dist[ctx.src.index()];
        let delay = if phase % 2 == 1 || !toward {
            self.t_max
        } else {
            0.0
        };
        Delivery::After(delay)
    }

    fn uncertainty(&self) -> Option<f64> {
        Some(self.t_max)
    }

    fn min_delay(&self) -> Option<f64> {
        // Even phases deliver toward-messages instantaneously, so the
        // static floor over all time is 0 — no parallel lookahead.
        Some(0.0)
    }
}

/// The wavefront adversary that realizes the `Θ(D)` local skew of
/// maximum-forwarding algorithms.
///
/// Phase 1 (until `flip_time`): every delay is the full `𝒯`, so information
/// from the fast source (the reference node) arrives `d(v₀, v)·𝒯` stale at
/// node `v` — a smooth gradient of staleness, `Θ(𝒯)` per hop.
///
/// Phase 2 (after `flip_time`): messages *within* distance `boundary` of
/// the source become instantaneous, while every message to a node at
/// distance ≥ `boundary` still takes `𝒯`. The fresh maximum instantly
/// floods the near side; the node just beyond the boundary keeps its
/// `boundary·𝒯`-stale clock for up to `𝒯` more — a local skew of
/// `Θ(boundary·𝒯)` across a single edge. Gradient algorithms are immune:
/// they spread the catch-up over time (that is Theorem 5.10's point).
#[derive(Debug, Clone, PartialEq)]
pub struct WavefrontDelay {
    dist: Vec<u32>,
    t_max: f64,
    flip_time: f64,
    boundary: u32,
}

impl WavefrontDelay {
    /// Creates the model; distances are measured from `source` in `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `t_max < 0` or `flip_time < 0`.
    pub fn new(graph: &Graph, source: NodeId, t_max: f64, flip_time: f64, boundary: u32) -> Self {
        assert!(t_max >= 0.0 && t_max.is_finite(), "invalid 𝒯 {t_max}");
        assert!(flip_time >= 0.0, "invalid flip time {flip_time}");
        WavefrontDelay {
            dist: graph.distances_from(source),
            t_max,
            flip_time,
            boundary,
        }
    }
}

impl DelayModel for WavefrontDelay {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        let slow = ctx.now < self.flip_time || self.dist[ctx.dst.index()] >= self.boundary;
        Delivery::After(if slow { self.t_max } else { 0.0 })
    }

    fn uncertainty(&self) -> Option<f64> {
        Some(self.t_max)
    }

    fn min_delay(&self) -> Option<f64> {
        // With a non-trivial boundary the post-flip near side sees 0-delay
        // messages, so the *static* floor is 0; a boundary of 0 keeps every
        // edge at the full `𝒯` forever.
        Some(if self.boundary == 0 { self.t_max } else { 0.0 })
    }

    fn lookahead_at(&self, now: f64) -> Option<Lookahead> {
        // Phase 1 is a pure function of `(now, dst)` with every delay equal
        // to `𝒯`, so until `flip_time` the model promises the full
        // uncertainty as lookahead. The promise expires at the flip; the
        // parallel engine then re-queries, gets `None`, and merges back to
        // the sequential loop for phase 2 (where 0-delay messages exist).
        if self.t_max <= 0.0 {
            return None;
        }
        if self.boundary == 0 {
            return Some(Lookahead {
                floor: self.t_max,
                valid_until: f64::INFINITY,
            });
        }
        (now < self.flip_time).then_some(Lookahead {
            floor: self.t_max,
            valid_until: self.flip_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, MaxAlgorithm, Params};
    use gcs_graph::topology;
    use gcs_sim::Engine;
    use gcs_time::RateSchedule;

    fn worst_local_skew<P, D>(engine: &mut Engine<P, D>, n: usize, horizon: f64) -> f64
    where
        P: gcs_sim::Protocol,
        D: DelayModel,
    {
        let mut worst: f64 = 0.0;
        engine.run_until_observed(horizon, |e| {
            for v in 0..n - 1 {
                let skew = (e.logical_value(NodeId(v)) - e.logical_value(NodeId(v + 1))).abs();
                worst = worst.max(skew);
            }
        });
        worst
    }

    #[test]
    fn wavefront_exposes_max_algorithm_but_not_a_opt() {
        let n = 24;
        let t_max = 0.4;
        let eps = 0.02;
        let boundary = 16;
        let g = topology::path(n);
        // Node 0 is the fast maximum source.
        let mut schedules = vec![RateSchedule::constant(1.0 + eps).unwrap()];
        schedules.extend(vec![RateSchedule::constant(1.0 - eps).unwrap(); n - 1]);
        // The stale-relay lag at the boundary is min(2ε·t, ≈boundary·𝒯);
        // give the buildup enough time for the distance term to dominate.
        let flip = boundary as f64 * t_max / (2.0 * eps) + 40.0;
        let horizon = flip + 10.0;

        let mut max_engine = Engine::builder(g.clone())
            .protocols(vec![MaxAlgorithm::new(1.0); n])
            .delay_model(WavefrontDelay::new(&g, NodeId(0), t_max, flip, boundary))
            .rate_schedules(schedules.clone())
            .build();
        max_engine.wake_all_at(0.0);
        let max_local = worst_local_skew(&mut max_engine, n, horizon);

        let params = Params::recommended(eps, t_max).unwrap();
        let mut aopt_engine = Engine::builder(g.clone())
            .protocols(vec![AOpt::new(params); n])
            .delay_model(WavefrontDelay::new(&g, NodeId(0), t_max, flip, boundary))
            .rate_schedules(schedules)
            .build();
        aopt_engine.wake_all_at(0.0);
        let aopt_local = worst_local_skew(&mut aopt_engine, n, horizon);

        // A^opt's local skew obeys its bound; the max algorithm's wavefront
        // skew is Θ(boundary·𝒯) across one edge.
        assert!(
            aopt_local <= params.local_skew_bound((n - 1) as u32) + 1e-9,
            "A^opt local skew {aopt_local} above bound"
        );
        assert!(
            max_local > 0.5 * boundary as f64 * t_max,
            "expected a Θ(boundary·𝒯) wavefront, got {max_local}"
        );
        assert!(
            max_local > 2.0 * aopt_local,
            "expected max-algorithm ({max_local}) to be far worse than A^opt ({aopt_local})"
        );
    }

    #[test]
    fn flapping_still_bounds_a_opt() {
        let n = 12;
        let t_max = 0.4;
        let eps = 0.02;
        let g = topology::path(n);
        let params = Params::recommended(eps, t_max).unwrap();
        let mut engine = Engine::builder(g.clone())
            .protocols(vec![AOpt::new(params); n])
            .delay_model(FlappingDelay::new(&g, NodeId(n - 1), t_max, 15.0))
            .build();
        engine.wake_all_at(0.0);
        let local = worst_local_skew(&mut engine, n, 90.0);
        assert!(local <= params.local_skew_bound((n - 1) as u32) + 1e-9);
    }

    #[test]
    fn wavefront_lookahead_expires_at_the_flip() {
        let g = topology::path(8);
        let m = WavefrontDelay::new(&g, NodeId(0), 0.4, 30.0, 3);
        // Static floor is 0 (post-flip near side is instantaneous)...
        assert_eq!(m.min_delay(), Some(0.0));
        // ...but phase 1 promises the full 𝒯 until the flip.
        assert_eq!(
            m.lookahead_at(0.0),
            Some(Lookahead {
                floor: 0.4,
                valid_until: 30.0
            })
        );
        assert_eq!(m.lookahead_at(29.999), m.lookahead_at(0.0));
        // At and after the flip the promise is gone: sequential fallback.
        assert_eq!(m.lookahead_at(30.0), None);
        assert_eq!(m.lookahead_at(100.0), None);
    }

    #[test]
    fn wavefront_with_zero_boundary_promises_forever() {
        // boundary = 0 keeps every edge at the full 𝒯 in both phases.
        let g = topology::path(4);
        let m = WavefrontDelay::new(&g, NodeId(0), 0.4, 30.0, 0);
        assert_eq!(m.min_delay(), Some(0.4));
        assert_eq!(
            m.lookahead_at(1e6),
            Some(Lookahead {
                floor: 0.4,
                valid_until: f64::INFINITY
            })
        );
    }

    #[test]
    fn flapping_has_no_lookahead() {
        let g = topology::path(4);
        let m = FlappingDelay::new(&g, NodeId(0), 0.5, 1.0);
        assert_eq!(m.min_delay(), Some(0.0));
        assert_eq!(m.lookahead_at(0.0), None);
    }

    #[test]
    fn phases_alternate() {
        let g = topology::path(2);
        let mut m = FlappingDelay::new(&g, NodeId(0), 0.5, 1.0);
        let ctx = |now: f64| DelayCtx::new(NodeId(1), NodeId(0), now, now, now, &g);
        assert_eq!(m.delivery(&ctx(0.5)), Delivery::After(0.0)); // even phase, toward
        assert_eq!(m.delivery(&ctx(1.5)), Delivery::After(0.5)); // odd phase
    }
}
