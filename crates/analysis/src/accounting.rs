//! Message/bit/space complexity accounting (paper Section 6).

use gcs_core::Params;
use gcs_sim::MessageStats;

/// Complexity figures for one execution, in the units of the paper's
/// Section 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexityReport {
    /// Send events per node per unit of real time (amortized message
    /// frequency; the paper proves `Θ(1/H₀)`, Section 6.1).
    pub sends_per_node_per_time: f64,
    /// Send events per node per `𝒯̂` window.
    pub sends_per_node_per_t: f64,
    /// The paper's predicted amortized frequency `1/H₀`.
    pub predicted_frequency: f64,
    /// Per-edge transmissions per node per time.
    pub transmissions_per_node_per_time: f64,
    /// Bits per message for the discretized encoding
    /// (`⌈log₂⌉` of the two field ranges, Section 6.2).
    pub bits_per_message: u32,
    /// Estimated per-node state bits (Section 6.3): the estimate/`ℓ` pair
    /// per neighbour, the `L^max` offset, and the timer state.
    pub state_bits_per_node: u32,
    /// Messages delivered to each node (index = node id). Empty when the
    /// stats predate per-node accounting.
    pub per_node_deliveries: Vec<u64>,
    /// Transmissions dropped en route to each node. All-zero under the
    /// paper's reliable-links model; a lossy delay model makes the drop
    /// attribution visible here.
    pub per_node_dropped: Vec<u64>,
    /// Drops attributed to the delay model itself (`lossy`'s i.i.d. loss).
    pub dropped_model: u64,
    /// Drops attributed to injected faults (the chaos layer). Disjoint
    /// from `dropped_model`: each dropped transmission is counted exactly
    /// once, under its cause.
    pub dropped_faults: u64,
    /// Fault-injected duplicate transmissions.
    pub duplicated: u64,
    /// Ratio of the busiest node's delivery count to the mean (1.0 = perfectly
    /// balanced; grows with degree imbalance, e.g. the hub of a star).
    pub delivery_imbalance: f64,
}

impl ComplexityReport {
    /// Builds the report from an execution's message counters.
    ///
    /// # Panics
    ///
    /// Panics if `duration <= 0` or there are no nodes.
    pub fn from_stats(
        stats: &MessageStats,
        params: &Params,
        nodes: usize,
        max_degree: usize,
        diameter: u32,
        duration: f64,
    ) -> Self {
        assert!(duration > 0.0, "invalid duration {duration}");
        assert!(nodes > 0, "no nodes");
        let sends_per_node_per_time = stats.send_events as f64 / nodes as f64 / duration;
        let t_hat = params.t_hat();
        let delivery_imbalance = if stats.deliveries == 0 || stats.per_node_deliveries.is_empty() {
            1.0
        } else {
            let max = *stats.per_node_deliveries.iter().max().expect("non-empty") as f64;
            let mean = stats.deliveries as f64 / stats.per_node_deliveries.len() as f64;
            if mean > 0.0 {
                max / mean
            } else {
                1.0
            }
        };
        ComplexityReport {
            sends_per_node_per_time,
            sends_per_node_per_t: sends_per_node_per_time * t_hat,
            predicted_frequency: 1.0 / params.h0(),
            transmissions_per_node_per_time: stats.transmissions as f64 / nodes as f64 / duration,
            bits_per_message: gcs_core::DiscreteAOpt::bits_per_message(params),
            state_bits_per_node: Self::state_bits(params, max_degree, diameter),
            per_node_deliveries: stats.per_node_deliveries.clone(),
            per_node_dropped: stats.per_node_dropped.clone(),
            dropped_model: stats.dropped_model,
            dropped_faults: stats.dropped_faults,
            duplicated: stats.duplicated,
            delivery_imbalance,
        }
    }

    /// The Section 6.3 state estimate: per neighbour, the skew estimate
    /// `L_v − L_v^w` (bounded by the local-skew bound, stored in quanta of
    /// `μH₀`) plus the freshness counter; per node, the `L^max − L_v`
    /// difference (a multiple of `H₀` bounded by `𝒢`).
    fn state_bits(params: &Params, max_degree: usize, diameter: u32) -> u32 {
        let quanta = params.mu() * params.h0();
        let per_neighbor_range = (params.local_skew_bound(diameter) / quanta).max(2.0);
        let per_neighbor_bits = per_neighbor_range.log2().ceil() as u32 + 1;
        let lmax_range = (params.global_skew_bound(diameter) / params.h0()).max(2.0);
        let lmax_bits = lmax_range.log2().ceil() as u32 + 1;
        max_degree as u32 * per_neighbor_bits + lmax_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(sends: u64, transmissions: u64) -> MessageStats {
        MessageStats {
            send_events: sends,
            transmissions,
            deliveries: transmissions,
            ..MessageStats::default()
        }
    }

    #[test]
    fn frequencies_are_normalized() {
        let p = Params::recommended(0.01, 1.0).unwrap();
        let r = ComplexityReport::from_stats(&stats(1000, 2000), &p, 10, 2, 9, 50.0);
        assert!((r.sends_per_node_per_time - 2.0).abs() < 1e-12);
        assert!((r.transmissions_per_node_per_time - 4.0).abs() < 1e-12);
        assert!((r.sends_per_node_per_t - 2.0).abs() < 1e-12);
        assert!((r.predicted_frequency - 1.0 / p.h0()).abs() < 1e-12);
    }

    #[test]
    fn state_bits_grow_logarithmically_with_diameter() {
        let p = Params::recommended(0.01, 1.0).unwrap();
        let small = ComplexityReport::from_stats(&stats(1, 1), &p, 2, 2, 8, 1.0);
        let large = ComplexityReport::from_stats(&stats(1, 1), &p, 2, 2, 1024, 1.0);
        assert!(large.state_bits_per_node > small.state_bits_per_node);
        assert!(large.state_bits_per_node < small.state_bits_per_node + 32);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_zero_duration() {
        let p = Params::recommended(0.01, 1.0).unwrap();
        let _ = ComplexityReport::from_stats(&stats(1, 1), &p, 1, 1, 1, 0.0);
    }
}
