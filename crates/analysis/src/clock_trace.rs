//! Full clock-trajectory recording for offline analysis/plotting.

use std::io::Write as _;
use std::path::Path;

use gcs_sim::{DelayModel, Engine, EngineEvent, EventSink, Protocol};

/// Records every node's logical clock (and its offset from real time) on a
/// fixed sampling grid, for CSV export.
///
/// Unlike [`crate::SkewObserver`] — which captures exact worst cases — this
/// trace is for *plotting*: a bounded number of evenly spaced rows.
///
/// # Example
///
/// ```
/// use gcs_analysis::ClockTrace;
/// use gcs_core::NoSync;
/// use gcs_graph::topology;
/// use gcs_sim::{ConstantDelay, Engine};
///
/// let g = topology::path(2);
/// let mut trace = ClockTrace::new(2, 1.0);
/// let mut engine = Engine::builder(g)
///     .protocols(vec![NoSync; 2])
///     .delay_model(ConstantDelay::new(0.0))
///     .build();
/// engine.wake_all_at(0.0);
/// engine.run_until_observed(5.0, |e| trace.observe(e));
/// let csv = trace.to_csv();
/// assert!(csv.starts_with("t,"));
/// // NoSync generates no events between the wakes and the horizon, so the
/// // trace holds the two endpoint rows (denser protocols sample the grid).
/// assert!(csv.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct ClockTrace {
    n: usize,
    interval: f64,
    next_sample: f64,
    rows: Vec<(f64, Vec<f64>)>,
}

impl ClockTrace {
    /// Creates a trace for `n` nodes sampling every `interval` of real time.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `interval <= 0`.
    pub fn new(n: usize, interval: f64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(
            interval.is_finite() && interval > 0.0,
            "invalid interval {interval}"
        );
        ClockTrace {
            n,
            interval,
            next_sample: 0.0,
            rows: Vec::new(),
        }
    }

    /// Records a row if the sampling grid is due.
    pub fn observe<P: Protocol, D: DelayModel, S: EventSink>(&mut self, engine: &Engine<P, D, S>) {
        self.observe_clocks(engine.now(), &engine.logical_values());
    }

    /// Records a clock vector sampled at time `t` (e.g. from an
    /// [`EventSink::snapshot`] callback) if the sampling grid is due.
    pub fn observe_clocks(&mut self, t: f64, clocks: &[f64]) {
        if t + 1e-12 < self.next_sample {
            return;
        }
        debug_assert_eq!(clocks.len(), self.n);
        self.rows.push((t, clocks.to_vec()));
        self.next_sample = t + self.interval;
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the trace as CSV: `t, L_v0, …, L_v{n−1}, spread`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,");
        out.push_str(
            &(0..self.n)
                .map(|v| format!("L_v{v}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str(",spread\n");
        for (t, clocks) in &self.rows {
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            out.push_str(&format!("{t:.9}"));
            for c in clocks {
                out.push_str(&format!(",{c:.9}"));
            }
            out.push_str(&format!(",{:.9}\n", max - min));
        }
        out
    }

    /// Writes the CSV to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())
    }
}

/// As a sink, the trace ignores the event stream and samples rows from the
/// per-event snapshots (decimated to its grid).
impl EventSink for ClockTrace {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &EngineEvent) {}

    fn wants_snapshots(&self) -> bool {
        true
    }

    fn snapshot(&mut self, t: f64, clocks: &[f64], _queue_depth: usize) {
        self.observe_clocks(t, clocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::NoSync;
    use gcs_graph::topology;
    use gcs_sim::ConstantDelay;
    use gcs_time::RateSchedule;

    #[test]
    fn samples_on_the_grid() {
        // Sampling rides on event observations, so use a protocol with a
        // steady event stream (MaxAlgorithm broadcasts every 1.0).
        let g = topology::path(3);
        let mut trace = ClockTrace::new(3, 2.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![gcs_core::MaxAlgorithm::new(1.0); 3])
            .delay_model(ConstantDelay::new(0.1))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(10.0, |e| trace.observe(e));
        // Roughly one sample per 2.0 of real time plus the endpoints; the
        // grid shifts slightly when no event lands exactly on it.
        assert!(trace.len() >= 5 && trace.len() <= 8, "{} rows", trace.len());
        assert!(!trace.is_empty());
    }

    #[test]
    fn sparse_event_streams_yield_sparse_traces() {
        // NoSync produces no events beyond the wakes: only the first and
        // final observations land on the grid.
        let g = topology::path(3);
        let mut trace = ClockTrace::new(3, 2.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; 3])
            .delay_model(ConstantDelay::new(0.0))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(10.0, |e| trace.observe(e));
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn csv_has_expected_shape_and_values() {
        let g = topology::path(2);
        let schedules = vec![
            RateSchedule::constant(1.1).unwrap(),
            RateSchedule::constant(0.9).unwrap(),
        ];
        let mut trace = ClockTrace::new(2, 1.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; 2])
            .delay_model(ConstantDelay::new(0.0))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(5.0, |e| trace.observe(e));
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,L_v0,L_v1,spread");
        let last: Vec<f64> = lines
            .last()
            .unwrap()
            .split(',')
            .map(|x| x.parse().unwrap())
            .collect();
        assert!((last[0] - 5.0).abs() < 1e-9);
        assert!((last[1] - 5.5).abs() < 1e-9);
        assert!((last[2] - 4.5).abs() < 1e-9);
        assert!((last[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn rejects_bad_interval() {
        let _ = ClockTrace::new(2, 0.0);
    }
}
