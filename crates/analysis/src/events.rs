//! Hand-rolled JSONL encoding of engine event streams.
//!
//! Each [`EngineEvent`] becomes one JSON object per line with a fixed field
//! order, encoded without any serialization dependency. Numbers use Rust's
//! shortest-round-trip `Display` formatting, which is a pure function of
//! the value — so the same execution always produces the *byte-identical*
//! stream, which is what makes `gcs replay-check` a meaningful determinism
//! test.

use std::io::{self, Write};

use gcs_sim::{EngineEvent, EventSink};

/// Encodes one event as a single JSON line (no trailing newline).
///
/// Field order is fixed per event kind; `delay` is `null` for
/// receiver-hardware-targeted transmissions.
pub fn encode_event(event: &EngineEvent) -> String {
    let kind = event.kind();
    match *event {
        EngineEvent::Wake { node, t, hw } => {
            format!(
                r#"{{"kind":"{kind}","node":{},"t":{t},"hw":{hw}}}"#,
                node.index()
            )
        }
        EngineEvent::Send { node, t, hw } => {
            format!(
                r#"{{"kind":"{kind}","node":{},"t":{t},"hw":{hw}}}"#,
                node.index()
            )
        }
        EngineEvent::Transmit { src, dst, t, delay } => {
            let delay = match delay {
                Some(d) => d.to_string(),
                None => "null".to_owned(),
            };
            format!(
                r#"{{"kind":"{kind}","src":{},"dst":{},"t":{t},"delay":{delay}}}"#,
                src.index(),
                dst.index(),
            )
        }
        EngineEvent::Drop { src, dst, t, cause } => {
            format!(
                r#"{{"kind":"{kind}","src":{},"dst":{},"t":{t},"cause":"{}"}}"#,
                src.index(),
                dst.index(),
                cause.label(),
            )
        }
        EngineEvent::Deliver {
            src,
            dst,
            t,
            dst_hw,
        } => {
            format!(
                r#"{{"kind":"{kind}","src":{},"dst":{},"t":{t},"dst_hw":{dst_hw}}}"#,
                src.index(),
                dst.index(),
            )
        }
        EngineEvent::TimerSet {
            node,
            timer,
            target_hw,
            t,
        } => {
            format!(
                r#"{{"kind":"{kind}","node":{},"timer":{},"target_hw":{target_hw},"t":{t}}}"#,
                node.index(),
                timer.0,
            )
        }
        EngineEvent::TimerCancel { node, timer, t } => {
            format!(
                r#"{{"kind":"{kind}","node":{},"timer":{},"t":{t}}}"#,
                node.index(),
                timer.0,
            )
        }
        EngineEvent::TimerFire { node, timer, t, hw } => {
            format!(
                r#"{{"kind":"{kind}","node":{},"timer":{},"t":{t},"hw":{hw}}}"#,
                node.index(),
                timer.0,
            )
        }
        EngineEvent::RateStep { node, t, rate } => {
            format!(
                r#"{{"kind":"{kind}","node":{},"t":{t},"rate":{rate}}}"#,
                node.index(),
            )
        }
        EngineEvent::MultiplierChange {
            node,
            t,
            multiplier,
        } => {
            format!(
                r#"{{"kind":"{kind}","node":{},"t":{t},"multiplier":{multiplier}}}"#,
                node.index(),
            )
        }
    }
}

/// An [`EventSink`] writing each event as one JSON line to any
/// [`Write`] target.
///
/// I/O errors are sticky: the first error stops further writing and is
/// surfaced by [`JsonlWriter::finish`]. (Sink hooks cannot return errors —
/// the engine does not know about I/O.)
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
    written: u64,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a write target. Consider a `BufWriter` for file targets; the
    /// writer issues one `write_all` per event.
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out,
            error: None,
            written: 0,
        }
    }

    /// Number of lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer, or the first I/O error
    /// encountered while recording.
    ///
    /// # Errors
    ///
    /// Returns the sticky recording error, or a flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> EventSink for JsonlWriter<W> {
    fn record(&mut self, event: &EngineEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = encode_event(event);
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// The first difference between two JSONL streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDiff {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// That line in the left stream (`None` if it ended first).
    pub left: Option<String>,
    /// That line in the right stream (`None` if it ended first).
    pub right: Option<String>,
}

/// Compares two event streams line by line; `None` means identical.
///
/// Used by `gcs replay-check` to verify that two same-seed runs produced
/// byte-identical executions.
pub fn diff_streams(left: &str, right: &str) -> Option<StreamDiff> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => {}
            (a, b) => {
                return Some(StreamDiff {
                    line,
                    left: a.map(str::to_owned),
                    right: b.map(str::to_owned),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::NodeId;
    use gcs_sim::TimerId;

    #[test]
    fn encodes_every_kind_as_one_json_line() {
        let events = [
            EngineEvent::Wake {
                node: NodeId(3),
                t: 1.5,
                hw: 0.25,
            },
            EngineEvent::Send {
                node: NodeId(0),
                t: 2.0,
                hw: 2.0,
            },
            EngineEvent::Transmit {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.0,
                delay: Some(0.125),
            },
            EngineEvent::Transmit {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.0,
                delay: None,
            },
            EngineEvent::Drop {
                src: NodeId(1),
                dst: NodeId(0),
                t: 3.0,
                cause: gcs_sim::DropCause::Fault,
            },
            EngineEvent::Deliver {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.125,
                dst_hw: 2.1,
            },
            EngineEvent::TimerSet {
                node: NodeId(2),
                timer: TimerId(1),
                target_hw: 5.0,
                t: 2.0,
            },
            EngineEvent::TimerCancel {
                node: NodeId(2),
                timer: TimerId(1),
                t: 2.5,
            },
            EngineEvent::TimerFire {
                node: NodeId(2),
                timer: TimerId(0),
                t: 4.0,
                hw: 4.0,
            },
            EngineEvent::RateStep {
                node: NodeId(1),
                t: 6.0,
                rate: 1.01,
            },
            EngineEvent::MultiplierChange {
                node: NodeId(1),
                t: 6.5,
                multiplier: 1.14,
            },
        ];
        for e in &events {
            let line = encode_event(e);
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
            assert!(
                line.contains(&format!(r#""kind":"{}""#, e.kind())),
                "{line}"
            );
        }
        assert_eq!(
            encode_event(&events[0]),
            r#"{"kind":"wake","node":3,"t":1.5,"hw":0.25}"#
        );
        assert_eq!(
            encode_event(&events[3]),
            r#"{"kind":"transmit","src":0,"dst":1,"t":2,"delay":null}"#
        );
    }

    #[test]
    fn writer_writes_lines_and_counts() {
        let mut w = JsonlWriter::new(Vec::new());
        w.record(&EngineEvent::Drop {
            src: NodeId(0),
            dst: NodeId(1),
            t: 1.0,
            cause: gcs_sim::DropCause::Model,
        });
        w.record(&EngineEvent::Wake {
            node: NodeId(0),
            t: 2.0,
            hw: 0.0,
        });
        assert_eq!(w.written(), 2);
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn writer_errors_are_sticky() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = JsonlWriter::new(Broken);
        w.record(&EngineEvent::Wake {
            node: NodeId(0),
            t: 0.0,
            hw: 0.0,
        });
        w.record(&EngineEvent::Wake {
            node: NodeId(0),
            t: 1.0,
            hw: 1.0,
        });
        assert_eq!(w.written(), 0);
        assert!(w.finish().is_err());
    }

    #[test]
    fn diff_finds_first_divergence() {
        assert_eq!(diff_streams("a\nb\nc", "a\nb\nc"), None);
        let d = diff_streams("a\nb\nc", "a\nx\nc").unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("b"));
        assert_eq!(d.right.as_deref(), Some("x"));
        let d = diff_streams("a", "a\nb").unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.left, None);
        assert_eq!(d.right.as_deref(), Some("b"));
    }
}
