//! Gradient profiles: worst-case skew as a function of distance.
//!
//! The *gradient property* (Fan & Lynch 2004; paper Corollaries 7.9/7.13)
//! bounds the skew of a pair by a function of its distance:
//! `Θ(α𝒯·d·(1 + log_b(D/d)))`. This profile records, per distance `d`, the
//! worst pairwise skew observed, for comparison against that shape.

use gcs_graph::Graph;
use gcs_sim::{DelayModel, Engine, Protocol};

/// Worst observed skew per pair distance.
#[derive(Debug, Clone)]
pub struct GradientProfile {
    dist: Vec<Vec<u32>>,
    /// `worst[d]` = worst skew seen between pairs at distance `d`.
    worst: Vec<f64>,
}

impl GradientProfile {
    /// Creates a profile for executions on `graph`.
    pub fn new(graph: &Graph) -> Self {
        let dist = graph.all_pairs_distances();
        let diameter = graph.diameter() as usize;
        GradientProfile {
            dist,
            worst: vec![0.0; diameter + 1],
        }
    }

    /// Records the engine's state (cost `O(|V|²)` — intended for sampled,
    /// not per-event, observation on large graphs).
    pub fn observe<P: Protocol, D: DelayModel>(&mut self, engine: &Engine<P, D>) {
        let clocks = engine.logical_values();
        for v in 0..clocks.len() {
            for w in (v + 1)..clocks.len() {
                let d = self.dist[v][w] as usize;
                let skew = (clocks[v] - clocks[w]).abs();
                if skew > self.worst[d] {
                    self.worst[d] = skew;
                }
            }
        }
    }

    /// Worst skew per distance (index 0 is trivially 0).
    pub fn worst_by_distance(&self) -> &[f64] {
        &self.worst
    }

    /// Worst *per-hop average* skew per distance: `worst(d)/d`.
    pub fn average_by_distance(&self) -> Vec<f64> {
        self.worst
            .iter()
            .enumerate()
            .map(|(d, &s)| if d == 0 { 0.0 } else { s / d as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, Params};
    use gcs_graph::topology;
    use gcs_sim::UniformDelay;
    use gcs_time::DriftBounds;

    #[test]
    fn profile_is_monotone_in_distance_for_a_opt() {
        let params = Params::recommended(0.02, 0.2).unwrap();
        let n = 8;
        let g = topology::path(n);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::split(n, drift, |v| v % 2 == 0);
        let mut profile = GradientProfile::new(&g);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); n])
            .delay_model(UniformDelay::new(0.2, 3))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(120.0, |e| profile.observe(e));
        let worst = profile.worst_by_distance();
        assert_eq!(worst.len(), n);
        assert_eq!(worst[0], 0.0);
        assert!(worst[1] > 0.0);
        // Worst skew grows (weakly) with distance for a gradient algorithm.
        for d in 2..worst.len() {
            assert!(
                worst[d] >= worst[1] * 0.5,
                "distance {d} skew suspiciously small"
            );
        }
        // Worst skew at any distance respects the global bound.
        let bound = params.global_skew_bound((n - 1) as u32);
        assert!(worst.iter().all(|&s| s <= bound + 1e-9));
    }

    #[test]
    fn per_hop_average_decreases_with_distance() {
        // The gradient property's signature: close pairs may carry more
        // skew *per hop* than far pairs carry on average.
        let params = Params::recommended(0.02, 0.2).unwrap();
        let n = 8;
        let g = topology::path(n);
        let mut profile = GradientProfile::new(&g);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::alternating(n, drift, 11.0, 120.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); n])
            .delay_model(UniformDelay::new(0.2, 5))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(120.0, |e| profile.observe(e));
        let avg = profile.average_by_distance();
        assert!(avg[1] >= avg[n - 1] - 1e-9);
    }
}
