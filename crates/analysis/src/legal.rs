//! The legal-state invariant (paper Definition 5.6).
//!
//! A system is in a *legal state* at time `t` if for every level `s ∈ ℕ₀`
//! and every pair `v, w` at distance `d(v, w) ≥ C_s = (2𝒢/κ)·σ^{−s}`:
//!
//! ```text
//! L_v(t) − L_w(t) ≤ d(v, w) · (s + ½) · κ
//! ```
//!
//! Theorem 5.10 is proved by showing `A^opt` never leaves the legal state;
//! this module checks the invariant directly on simulated executions
//! (experiment F10). For a pair at distance `d`, the binding level is the
//! *smallest* `s` with `C_s ≤ d` — larger levels only weaken the bound — so
//! each pair carries one precomputed bound.

use gcs_core::Params;
use gcs_graph::Graph;
use gcs_sim::{DelayModel, Engine, EventSink, Protocol};

/// A detected violation of the legal-state invariant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalStateViolation {
    /// Real time of the violation.
    pub t: f64,
    /// The ahead node (index).
    pub v: usize,
    /// The behind node (index).
    pub w: usize,
    /// Their distance.
    pub distance: u32,
    /// The binding level `s`.
    pub level: u32,
    /// The observed skew.
    pub skew: f64,
    /// The violated bound `d(s + ½)κ`.
    pub bound: f64,
}

/// Checks the Definition 5.6 invariant over an execution and tracks the
/// worst margin per level.
///
/// # Example
///
/// ```
/// use gcs_analysis::LegalStateChecker;
/// use gcs_core::{AOpt, Params};
/// use gcs_graph::topology;
/// use gcs_sim::{ConstantDelay, Engine};
///
/// let p = Params::recommended(1e-2, 0.1)?;
/// let g = topology::path(5);
/// let mut checker = LegalStateChecker::new(&g, p);
/// let mut engine = Engine::builder(g)
///     .protocols(vec![AOpt::new(p); 5])
///     .delay_model(ConstantDelay::new(0.05))
///     .build();
/// engine.wake_all_at(0.0);
/// engine.run_until_observed(20.0, |e| { checker.observe(e); });
/// assert!(checker.first_violation().is_none());
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LegalStateChecker {
    /// For each unordered pair (v, w) with v < w: (v, w, distance, level, bound).
    pairs: Vec<(usize, usize, u32, u32, f64)>,
    /// Worst (smallest) slack `bound − skew` seen per level.
    margins: Vec<f64>,
    first_violation: Option<LegalStateViolation>,
    tolerance: f64,
}

impl LegalStateChecker {
    /// Builds the checker for a graph and parameter set (`𝒢` is computed
    /// from the graph's diameter).
    pub fn new(graph: &Graph, params: Params) -> Self {
        let diameter = graph.diameter();
        let sigma = params.sigma() as f64;
        let kappa = params.kappa();
        let c0 = 2.0 * params.global_skew_bound(diameter) / kappa;
        let dist = graph.all_pairs_distances();
        let mut pairs = Vec::new();
        let mut max_level = 0u32;
        for (v, dist_v) in dist.iter().enumerate() {
            for (w, &d) in dist_v.iter().enumerate().skip(v + 1) {
                // Smallest s with C_s = c0·σ^{−s} ≤ d, i.e.
                // s ≥ log_σ(c0/d); no constraint binds pairs further than
                // C_0 only via s = 0.
                let s = if d as f64 >= c0 {
                    0
                } else {
                    (c0 / d as f64).log(sigma).ceil().max(0.0) as u32
                };
                let bound = d as f64 * (s as f64 + 0.5) * kappa;
                max_level = max_level.max(s);
                pairs.push((v, w, d, s, bound));
            }
        }
        LegalStateChecker {
            pairs,
            margins: vec![f64::INFINITY; (max_level + 1) as usize],
            first_violation: None,
            tolerance: 1e-9,
        }
    }

    /// Records the engine's state; returns `false` on (the first) violation.
    pub fn observe<P: Protocol, D: DelayModel, S: EventSink>(
        &mut self,
        engine: &Engine<P, D, S>,
    ) -> bool {
        self.observe_clocks(engine.now(), &engine.logical_values())
    }

    /// Records a clock vector sampled at time `t` (e.g. from an
    /// [`EventSink::snapshot`] callback); returns `false` on violation.
    ///
    /// # Panics
    ///
    /// Panics (via indexing) if `clocks` has fewer entries than the graph
    /// the checker was built for.
    pub fn observe_clocks(&mut self, t: f64, clocks: &[f64]) -> bool {
        let mut ok = true;
        for &(v, w, d, s, bound) in &self.pairs {
            let skew = (clocks[v] - clocks[w]).abs();
            let margin = bound - skew;
            if margin < self.margins[s as usize] {
                self.margins[s as usize] = margin;
            }
            if margin < -self.tolerance {
                ok = false;
                if self.first_violation.is_none() {
                    let (ahead, behind) = if clocks[v] >= clocks[w] {
                        (v, w)
                    } else {
                        (w, v)
                    };
                    self.first_violation = Some(LegalStateViolation {
                        t,
                        v: ahead,
                        w: behind,
                        distance: d,
                        level: s,
                        skew,
                        bound,
                    });
                }
            }
        }
        ok
    }

    /// The first violation seen, if any.
    pub fn first_violation(&self) -> Option<LegalStateViolation> {
        self.first_violation
    }

    /// Worst slack (`bound − skew`, possibly negative) per level `s`.
    pub fn margins(&self) -> &[f64] {
        &self.margins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, NoSync};
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, UniformDelay};
    use gcs_time::DriftBounds;

    #[test]
    fn a_opt_stays_legal_under_adversity() {
        let params = Params::recommended(0.02, 0.2).unwrap();
        let g = topology::path(7);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::split(7, drift, |v| v < 3);
        let mut checker = LegalStateChecker::new(&g, params);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); 7])
            .delay_model(UniformDelay::new(0.2, 13))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(150.0, |e| {
            assert!(
                checker.observe(e),
                "legal state violated: {:?}",
                checker.first_violation()
            );
        });
        // Margins were actually exercised (finite).
        assert!(checker.margins().iter().all(|m| m.is_finite()));
    }

    #[test]
    fn unsynchronized_clocks_eventually_violate() {
        // NoSync on a long path with max drift split: skew grows at 2ε/s
        // without bound and must break the neighbour-level constraint.
        let params = Params::recommended(0.02, 0.2).unwrap();
        let n = 7;
        let g = topology::path(n);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::split(n, drift, |v| v < n / 2);
        let mut checker = LegalStateChecker::new(&g, params);
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; n])
            .delay_model(ConstantDelay::new(0.0))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut violated = false;
        engine.run_until_observed(3000.0, |e| {
            if !checker.observe(e) {
                violated = true;
            }
        });
        assert!(violated, "margins: {:?}", checker.margins());
        let v = checker.first_violation().unwrap();
        assert!(v.skew > v.bound);
    }

    #[test]
    fn binding_level_shrinks_with_distance() {
        // Closer pairs must carry higher (tighter-per-hop) levels.
        let params = Params::recommended(0.02, 0.2).unwrap();
        let g = topology::path(9);
        let checker = LegalStateChecker::new(&g, params);
        let level_of = |d: u32| {
            checker
                .pairs
                .iter()
                .find(|&&(_, _, pd, _, _)| pd == d)
                .map(|&(_, _, _, s, _)| s)
                .unwrap()
        };
        assert!(level_of(1) >= level_of(8));
    }
}
