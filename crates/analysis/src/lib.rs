//! Measurement and verification tooling for clock-synchronization
//! executions: exact skew observation, the paper's legal-state invariant,
//! gradient profiles, complexity accounting, and table rendering for the
//! experiment harness.
//!
//! Logical clocks in the simulator are piecewise linear between events, so
//! observing at every event (via [`gcs_sim::Engine::run_until_observed`])
//! captures the *exact* extrema of any skew — there is no sampling error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod clock_trace;
pub mod events;
mod gradient;
mod legal;
pub mod metrics;
mod table;
mod trace;
mod watchdog;

pub use accounting::ComplexityReport;
pub use clock_trace::ClockTrace;
pub use events::{diff_streams, encode_event, JsonlWriter, StreamDiff};
pub use gradient::GradientProfile;
pub use legal::{LegalStateChecker, LegalStateViolation};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSink};
pub use table::Table;
pub use trace::{SkewObserver, SkewSample};
pub use watchdog::{InvariantWatchdog, WatchdogTrip, WatchdogViolation};
