//! A small metrics registry (counters, gauges, fixed-bucket histograms) and
//! the [`MetricsSink`] that fills it from an engine's event stream.
//!
//! The registry is snapshotable at any point during an execution: every
//! accessor works on live state, and [`MetricsRegistry::render`] produces a
//! deterministic, sorted text rendering for the CLI's `--metrics` flag.

use std::collections::BTreeMap;

use gcs_sim::{EngineEvent, EventSink};

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Folds another counter in: counts add.
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// Sets the current value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.0
    }

    /// Folds another gauge in. Gauges are last-value-wins, which is not
    /// reconstructible from independent shards; the merge is right-biased by
    /// convention — `other` is the later shard and its value stands.
    pub fn merge(&mut self, other: &Gauge) {
        self.0 = other.0;
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Buckets are defined by an ascending list of upper bounds; an observation
/// `v` lands in the first bucket whose bound satisfies `v <= bound`
/// (less-or-equal semantics, so a value exactly on a boundary belongs to
/// the bucket it bounds). Values above the last bound land in an implicit
/// overflow bucket. Count, sum, min, and max are tracked exactly regardless
/// of bucketing.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not strictly ascending or not finite.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `count` buckets of equal `width` starting at `start`:
    /// bounds `start + width, start + 2·width, …`.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `count == 0`.
    pub fn linear(start: f64, width: f64, count: usize) -> Self {
        assert!(width > 0.0 && count > 0, "invalid linear histogram shape");
        Histogram::new((1..=count).map(|i| start + width * i as f64).collect())
    }

    /// `count` geometrically growing buckets: bounds
    /// `first, first·factor, first·factor², …`.
    ///
    /// # Panics
    ///
    /// Panics if `first <= 0`, `factor <= 1`, or `count == 0`.
    pub fn exponential(first: f64, factor: f64, count: usize) -> Self {
        assert!(
            first > 0.0 && factor > 1.0 && count > 0,
            "invalid exponential histogram shape"
        );
        let mut bounds = Vec::with_capacity(count);
        let mut b = first;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN (a NaN observation is always an upstream bug).
    pub fn record(&mut self, v: f64) {
        assert!(!v.is_nan(), "cannot record NaN");
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// An upper estimate of the `q`-quantile (`0 ≤ q ≤ 1`): the upper bound
    /// of the bucket in which the quantile falls (exact max for values in
    /// the overflow bucket). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Folds another histogram in: bucket counts, count, and sum add;
    /// min/max take the extremes. Merging the per-shard histograms of a
    /// partitioned stream yields exactly the histogram of the interleaved
    /// stream — bucketing is order-independent (pinned by the property
    /// tests in `tests/metrics_merge.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ: histograms of different shapes
    /// measure different things, and folding them silently would corrupt
    /// both.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (acc, &c) in self.counts.iter_mut().zip(&other.counts) {
            *acc += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Uses `BTreeMap`s throughout so that [`MetricsRegistry::render`] is
/// deterministic — same execution, byte-identical rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero if absent.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// The gauge named `name`, created at zero if absent.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_owned()).or_default()
    }

    /// The histogram named `name`; `make` builds it on first use.
    pub fn histogram(&mut self, name: &str, make: impl FnOnce() -> Histogram) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_insert_with(make)
    }

    /// Reads a counter without creating it.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(Counter::get)
    }

    /// Reads a gauge without creating it.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// Reads a histogram without creating it.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Renders every metric as sorted `name value` lines — counters first,
    /// then gauges, then histogram summaries
    /// (`name count/mean/p50/p99/max`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, c) in &self.counters {
            out.push_str(&format!("counter {name} {}\n", c.get()));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!("gauge {name} {}\n", g.get()));
        }
        for (name, h) in &self.histograms {
            match h.mean() {
                Some(mean) => out.push_str(&format!(
                    "histogram {name} count={} mean={mean:.6} p50={:.6} p99={:.6} max={:.6}\n",
                    h.count(),
                    h.quantile(0.5).expect("non-empty"),
                    h.quantile(0.99).expect("non-empty"),
                    h.max().expect("non-empty"),
                )),
                None => out.push_str(&format!("histogram {name} count=0\n")),
            }
        }
        out
    }

    /// Folds another registry in: counters add, histograms merge
    /// (see [`Histogram::merge`] — bounds must agree name-by-name), and
    /// gauges are right-biased (`other`, the later shard, wins). Metrics
    /// present in only one side are kept as-is.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, c) in &other.counters {
            self.counters.entry(name.clone()).or_default().merge(c);
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().merge(g);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the registry as a `gcs-metrics/v1` JSON document: sorted
    /// maps of counters and gauges, and per-histogram summaries with the
    /// full bucket layout. Deterministic — same registry state,
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        fn num(out: &mut String, v: f64) {
            // `f64::to_string` never emits exponents, infinities only by
            // explicit "inf": guard non-finite values as null.
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        let mut out = String::from("{\"schema\":\"gcs-metrics/v1\",\"counters\":{");
        for (i, (name, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", c.get()));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":"));
            num(&mut out, g.get());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{{\"count\":{},\"sum\":", h.count()));
            num(&mut out, h.sum());
            for (key, v) in [
                ("min", h.min()),
                ("max", h.max()),
                ("mean", h.mean()),
                ("p50", h.quantile(0.5)),
                ("p99", h.quantile(0.99)),
            ] {
                out.push_str(&format!(",\"{key}\":"));
                match v {
                    Some(v) => num(&mut out, v),
                    None => out.push_str("null"),
                }
            }
            out.push_str(",\"bounds\":[");
            for (j, &b) in h.bounds().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                num(&mut out, b);
            }
            out.push_str("],\"buckets\":[");
            for (j, &c) in h.bucket_counts().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }
}

/// An [`EventSink`] maintaining the standard engine metrics:
///
/// * `events.<kind>` counters for every [`EngineEvent`] kind plus an
///   `events.total` roll-up,
/// * a `message_delay` histogram over the delays the delay model chose,
/// * a `queue_depth` histogram plus `queue_depth.last` gauge (event-queue
///   pressure),
/// * an `events_per_time` histogram: events per unit of *simulated* time,
///   windowed at a configurable width,
/// * a `global_skew` histogram sampling the clock spread after every event,
/// * `time.last` — the real time of the latest observation.
///
/// The hot path touches **no registry maps**: the standard metrics live in
/// preresolved fields (an `events.*` counter array indexed by
/// [`EngineEvent::kind_index`], owned histograms) and are folded into the
/// registry lazily when it is read — the per-event name lookups and
/// `format!` allocations that made this sink cost 6× an uninstrumented
/// engine are gone from the recording path entirely.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    /// Synced view plus any custom metrics added via
    /// [`MetricsSink::registry_mut`]. The standard metric names listed
    /// above are owned by the sink: external writes to them are
    /// overwritten at the next sync.
    registry: MetricsRegistry,
    window: f64,
    window_start: f64,
    window_events: u64,
    // Preresolved hot-path handles.
    events_total: u64,
    kind_counts: [u64; gcs_sim::KIND_COUNT],
    message_delay: Histogram,
    queue_depth: Histogram,
    global_skew: Histogram,
    events_per_time: Histogram,
    time_last: f64,
    queue_last: f64,
    seen_snapshot: bool,
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink::new()
    }
}

impl MetricsSink {
    /// Creates the sink with a rate window of 1 unit of simulated time.
    pub fn new() -> Self {
        MetricsSink::with_rate_window(1.0)
    }

    /// Creates the sink with an explicit events-per-time window width.
    ///
    /// # Panics
    ///
    /// Panics if `window <= 0`.
    pub fn with_rate_window(window: f64) -> Self {
        assert!(window > 0.0, "invalid rate window {window}");
        MetricsSink {
            registry: MetricsRegistry::new(),
            window,
            window_start: 0.0,
            window_events: 0,
            events_total: 0,
            kind_counts: [0; gcs_sim::KIND_COUNT],
            message_delay: Histogram::exponential(1e-3, 2.0, 16),
            queue_depth: Histogram::exponential(1.0, 2.0, 12),
            global_skew: Histogram::exponential(1e-6, 4.0, 20),
            events_per_time: Histogram::exponential(1.0, 2.0, 20),
            time_last: 0.0,
            queue_last: 0.0,
            seen_snapshot: false,
        }
    }

    /// Folds the preresolved hot-path state into the registry so every
    /// read-side accessor sees a consistent view. Idempotent; standard
    /// metric names appear only once their first observation exists,
    /// exactly as the old lazily-created entries did.
    fn sync(&mut self) {
        if self.events_total > 0 {
            let c = self.registry.counter("events.total");
            c.add(self.events_total - c.get());
        }
        for (i, &n) in self.kind_counts.iter().enumerate() {
            if n > 0 {
                let c = self.registry.counter(KIND_COUNTER_NAMES[i]);
                c.add(n - c.get());
            }
        }
        for (name, h) in [
            ("message_delay", &self.message_delay),
            ("queue_depth", &self.queue_depth),
            ("global_skew", &self.global_skew),
            ("events_per_time", &self.events_per_time),
        ] {
            if h.count() > 0 {
                *self.registry.histogram(name, || h.clone()) = h.clone();
            }
        }
        if self.seen_snapshot {
            self.registry.gauge("time.last").set(self.time_last);
            self.registry.gauge("queue_depth.last").set(self.queue_last);
        }
    }

    /// The live registry (synced with the hot-path state on every call).
    pub fn registry(&mut self) -> &MetricsRegistry {
        self.sync();
        &self.registry
    }

    /// Mutable registry access (to add custom metrics alongside).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        self.sync();
        &mut self.registry
    }

    /// Renders the current snapshot (see [`MetricsRegistry::render`]).
    pub fn render(&mut self) -> String {
        self.sync();
        self.registry.render()
    }

    /// Folds any events counted in the still-open rate window into the
    /// `events_per_time` histogram. Call once at the end of a run; the
    /// sink's automatic windowing only closes windows that filled up.
    pub fn flush_rate_window(&mut self, t: f64) {
        let elapsed = t - self.window_start;
        if self.window_events > 0 && elapsed > 0.0 {
            let rate = self.window_events as f64 / elapsed;
            self.events_per_time.record(rate);
        }
        self.window_start = t;
        self.window_events = 0;
    }

    fn roll_rate_window(&mut self, t: f64) {
        while t >= self.window_start + self.window {
            let rate = self.window_events as f64 / self.window;
            self.events_per_time.record(rate);
            self.window_start += self.window;
            self.window_events = 0;
        }
    }
}

/// `events.*` counter names, indexed by [`EngineEvent::kind_index`] — the
/// preresolved replacement for the old per-event `format!` lookups.
const KIND_COUNTER_NAMES: [&str; gcs_sim::KIND_COUNT] = [
    "events.wake",
    "events.send",
    "events.transmit",
    "events.drop",
    "events.deliver",
    "events.timer_set",
    "events.timer_cancel",
    "events.timer_fire",
    "events.rate_step",
    "events.multiplier",
];

impl EventSink for MetricsSink {
    #[inline]
    fn record(&mut self, event: &EngineEvent) {
        self.roll_rate_window(event.time());
        self.window_events += 1;
        self.events_total += 1;
        self.kind_counts[event.kind_index()] += 1;
        if let EngineEvent::Transmit { delay: Some(d), .. } = event {
            self.message_delay.record(*d);
        }
    }

    fn wants_snapshots(&self) -> bool {
        true
    }

    #[inline]
    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        self.time_last = t;
        self.queue_last = queue_depth as f64;
        self.seen_snapshot = true;
        self.queue_depth.record(queue_depth as f64);
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for &c in clocks {
            max = max.max(c);
            min = min.min(c);
        }
        if max >= min {
            self.global_skew.record(max - min);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        r.gauge("b").set(1.5);
        assert_eq!(r.counter_value("a"), Some(3));
        assert_eq!(r.gauge_value("b"), Some(1.5));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn histogram_boundary_goes_to_lower_bucket() {
        // Bounds 1, 2, 4: a value exactly on a bound belongs to the bucket
        // that bound closes (less-or-equal semantics).
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        h.record(1.0);
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn histogram_overflow_and_underflow() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(-5.0); // below the first bound: first bucket
        h.record(100.0); // above the last bound: overflow
        assert_eq!(h.bucket_counts(), &[1, 0, 1]);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(100.0));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_walks_buckets() {
        let mut h = Histogram::new(vec![1.0, 2.0, 3.0]);
        for _ in 0..9 {
            h.record(0.5);
        }
        h.record(2.5);
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0)); // rank clamps to 1
    }

    #[test]
    fn quantile_of_overflow_values_is_exact_max() {
        let mut h = Histogram::new(vec![1.0]);
        h.record(7.0);
        h.record(9.0);
        assert_eq!(h.quantile(1.0), Some(9.0));
    }

    #[test]
    fn linear_and_exponential_shapes() {
        let lin = Histogram::linear(0.0, 0.5, 4);
        assert_eq!(lin.bounds(), &[0.5, 1.0, 1.5, 2.0]);
        let exp = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(exp.bounds(), &[1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let mut h = Histogram::new(vec![1.0]);
        h.record(f64::NAN);
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let mut r = MetricsRegistry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.gauge("m").set(2.0);
        let text = r.render();
        let a = text.find("counter a").unwrap();
        let z = text.find("counter z").unwrap();
        assert!(a < z);
        assert_eq!(text, r.clone().render());
    }

    #[test]
    fn metrics_sink_counts_events() {
        use gcs_graph::NodeId;
        let mut sink = MetricsSink::new();
        sink.record(&EngineEvent::Wake {
            node: NodeId(0),
            t: 0.0,
            hw: 0.0,
        });
        sink.record(&EngineEvent::Transmit {
            src: NodeId(0),
            dst: NodeId(1),
            t: 0.5,
            delay: Some(0.1),
        });
        sink.snapshot(0.5, &[1.0, 1.25], 3);
        let r = sink.registry();
        assert_eq!(r.counter_value("events.total"), Some(2));
        assert_eq!(r.counter_value("events.wake"), Some(1));
        assert_eq!(r.counter_value("events.transmit"), Some(1));
        assert_eq!(r.histogram_ref("message_delay").unwrap().count(), 1);
        assert_eq!(r.gauge_value("queue_depth.last"), Some(3.0));
        let skew = r.histogram_ref("global_skew").unwrap();
        assert_eq!(skew.max(), Some(0.25));
    }

    #[test]
    fn rate_window_rolls_with_simulated_time() {
        use gcs_graph::NodeId;
        let mut sink = MetricsSink::with_rate_window(1.0);
        for i in 0..10 {
            sink.record(&EngineEvent::Wake {
                node: NodeId(0),
                t: i as f64 * 0.3,
                hw: 0.0,
            });
        }
        sink.flush_rate_window(3.0);
        let h = sink.registry().histogram_ref("events_per_time").unwrap();
        assert!(h.count() >= 2);
        assert!(h.mean().unwrap() > 0.0);
    }
}
