//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// A simple fixed-width table: the output format of every reproduced
/// figure and table in `crates/bench`.
///
/// # Example
///
/// ```
/// let mut t = gcs_analysis::Table::new(vec!["D", "skew", "bound"]);
/// t.row(vec!["8".into(), "0.41".into(), "1.00".into()]);
/// let s = t.to_string();
/// assert!(s.contains("skew"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<T: fmt::Display>(&mut self, cells: Vec<T>) -> &mut Self {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (no quoting; intended for numeric tables).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].trim_start().starts_with("12345"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row_display(vec![1.5, 2.5]);
        t.row_display(vec![3.0, 4.0]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "x,y");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }
}
