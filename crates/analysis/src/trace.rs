//! Exact skew observation over an execution.

use gcs_graph::Graph;
use gcs_sim::{DelayModel, Engine, EngineEvent, EventSink, Protocol};

/// One decimated time-series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewSample {
    /// Real time of the sample.
    pub t: f64,
    /// Largest pairwise logical skew at that instant.
    pub global: f64,
    /// Largest neighbour skew at that instant.
    pub local: f64,
}

/// Tracks the worst-case global and local skew of an execution, plus an
/// optional decimated time series.
///
/// Feed it from [`Engine::run_until_observed`]; because logical clocks are
/// piecewise linear between events, per-event observation captures exact
/// worst cases.
///
/// # Example
///
/// ```
/// use gcs_analysis::SkewObserver;
/// use gcs_core::{AOpt, Params};
/// use gcs_graph::topology;
/// use gcs_sim::{ConstantDelay, Engine};
///
/// let p = Params::recommended(1e-2, 0.1)?;
/// let g = topology::path(4);
/// let mut obs = SkewObserver::new(&g);
/// let mut engine = Engine::builder(g)
///     .protocols(vec![AOpt::new(p); 4])
///     .delay_model(ConstantDelay::new(0.05))
///     .build();
/// engine.wake_all_at(0.0);
/// engine.run_until_observed(30.0, |e| obs.observe(e));
/// assert!(obs.worst_global() <= p.global_skew_bound(3));
/// assert!(obs.worst_local() <= obs.worst_global() + 1e-12);
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SkewObserver {
    edges: Vec<(usize, usize)>,
    worst_global: f64,
    worst_local: f64,
    worst_global_at: f64,
    worst_local_at: f64,
    worst_global_pair: (usize, usize),
    worst_local_pair: (usize, usize),
    series_interval: Option<f64>,
    next_sample_at: f64,
    series: Vec<SkewSample>,
    observations: u64,
}

impl SkewObserver {
    /// Creates an observer for executions on `graph`.
    pub fn new(graph: &Graph) -> Self {
        SkewObserver {
            edges: graph.edges().map(|(a, b)| (a.index(), b.index())).collect(),
            worst_global: 0.0,
            worst_local: 0.0,
            worst_global_at: 0.0,
            worst_local_at: 0.0,
            worst_global_pair: (0, 0),
            worst_local_pair: (0, 0),
            series_interval: None,
            next_sample_at: 0.0,
            series: Vec::new(),
            observations: 0,
        }
    }

    /// Additionally records a time series, at most one point per
    /// `interval` of real time.
    ///
    /// # Panics
    ///
    /// Panics if `interval <= 0`.
    pub fn with_series(mut self, interval: f64) -> Self {
        assert!(interval > 0.0, "invalid series interval {interval}");
        self.series_interval = Some(interval);
        self
    }

    /// Records the engine's current state.
    pub fn observe<P: Protocol, D: DelayModel, S: EventSink>(&mut self, engine: &Engine<P, D, S>) {
        self.observe_clocks(engine.now(), &engine.logical_values());
    }

    /// Records a clock vector sampled at time `t` (e.g. from an
    /// [`EventSink::snapshot`] callback).
    pub fn observe_clocks(&mut self, t: f64, clocks: &[f64]) {
        self.observations += 1;
        let mut max = f64::MIN;
        let mut min = f64::MAX;
        let mut argmax = 0;
        let mut argmin = 0;
        for (i, &c) in clocks.iter().enumerate() {
            if c > max {
                max = c;
                argmax = i;
            }
            if c < min {
                min = c;
                argmin = i;
            }
        }
        let global = max - min;
        let mut local: f64 = 0.0;
        let mut local_pair = (0, 0);
        for &(a, b) in &self.edges {
            let skew = (clocks[a] - clocks[b]).abs();
            if skew > local {
                local = skew;
                local_pair = if clocks[a] >= clocks[b] {
                    (a, b)
                } else {
                    (b, a)
                };
            }
        }
        if global > self.worst_global {
            self.worst_global = global;
            self.worst_global_at = t;
            self.worst_global_pair = (argmax, argmin);
        }
        if local > self.worst_local {
            self.worst_local = local;
            self.worst_local_at = t;
            self.worst_local_pair = local_pair;
        }
        if let Some(interval) = self.series_interval {
            if t >= self.next_sample_at {
                self.series.push(SkewSample { t, global, local });
                self.next_sample_at = t + interval;
            }
        }
    }

    /// The largest pairwise skew seen so far.
    pub fn worst_global(&self) -> f64 {
        self.worst_global
    }

    /// The largest neighbour skew seen so far.
    pub fn worst_local(&self) -> f64 {
        self.worst_local
    }

    /// When the worst global skew occurred.
    pub fn worst_global_at(&self) -> f64 {
        self.worst_global_at
    }

    /// When the worst local skew occurred.
    pub fn worst_local_at(&self) -> f64 {
        self.worst_local_at
    }

    /// The `(argmax, argmin)` node pair attaining the worst global skew
    /// (`(0, 0)` before any observation).
    pub fn worst_global_pair(&self) -> (usize, usize) {
        self.worst_global_pair
    }

    /// The `(ahead, behind)` edge attaining the worst local skew
    /// (`(0, 0)` before any observation).
    pub fn worst_local_pair(&self) -> (usize, usize) {
        self.worst_local_pair
    }

    /// The decimated time series (empty unless enabled).
    pub fn series(&self) -> &[SkewSample] {
        &self.series
    }

    /// Number of observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

/// As a sink, the observer ignores the event stream and samples exact skew
/// from the per-event snapshots.
impl EventSink for SkewObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &EngineEvent) {}

    fn wants_snapshots(&self) -> bool {
        true
    }

    fn snapshot(&mut self, t: f64, clocks: &[f64], _queue_depth: usize) {
        self.observe_clocks(t, clocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::NoSync;
    use gcs_graph::topology;
    use gcs_sim::ConstantDelay;
    use gcs_time::RateSchedule;

    #[test]
    fn tracks_divergence_of_unsynchronized_clocks() {
        let g = topology::path(3);
        let schedules = vec![
            RateSchedule::constant(1.1).unwrap(),
            RateSchedule::constant(1.0).unwrap(),
            RateSchedule::constant(0.9).unwrap(),
        ];
        let mut obs = SkewObserver::new(&g).with_series(1.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; 3])
            .delay_model(ConstantDelay::new(0.0))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(10.0, |e| obs.observe(e));
        assert!((obs.worst_global() - 2.0).abs() < 1e-9); // 0.2/s for 10s
        assert!((obs.worst_local() - 1.0).abs() < 1e-9); // 0.1/s per edge
        assert!((obs.worst_global_at() - 10.0).abs() < 1e-9);
        assert_eq!(obs.worst_global_pair(), (0, 2), "fastest vs slowest");
        let (ahead, behind) = obs.worst_local_pair();
        assert!(ahead < behind, "earlier node drifts ahead on this path");
        assert!(!obs.series().is_empty());
        let last = obs.series().last().unwrap();
        assert!(last.global <= obs.worst_global() + 1e-12);
    }

    #[test]
    fn series_is_decimated() {
        let g = topology::path(2);
        let mut obs = SkewObserver::new(&g).with_series(5.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; 2])
            .delay_model(ConstantDelay::new(0.0))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(20.0, |e| obs.observe(e));
        assert!(obs.series().len() <= 6);
    }

    #[test]
    fn local_never_exceeds_global() {
        let g = topology::cycle(5);
        let mut obs = SkewObserver::new(&g);
        let drift = gcs_time::DriftBounds::new(0.1).unwrap();
        let schedules = gcs_sim::rates::random_walk(5, drift, 1.0, 30.0, 9);
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; 5])
            .delay_model(ConstantDelay::new(0.0))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(30.0, |e| obs.observe(e));
        assert!(obs.worst_local() <= obs.worst_global() + 1e-12);
        assert!(obs.observations() > 0);
    }
}
