//! Online invariant watchdog: checks the paper's correctness conditions
//! *while the execution runs* and keeps a flight recorder of the events
//! leading up to the first violation.
//!
//! Three invariants are monitored, all on the per-event snapshot cadence
//! (exact, because logical clocks are piecewise linear between events):
//!
//! * **Condition (1)** — the affine envelope
//!   `(1 − ε)(t − t_v) ≤ L_v(t) ≤ (1 + ε)t`, per node, via
//!   [`EnvelopeChecker`];
//! * **Condition (2)** — bounded progress
//!   `α(t' − t) ≤ L_v(t') − L_v(t) ≤ β(t' − t)`, per node, via
//!   [`ProgressChecker`] with `A^opt`'s Corollary 5.3 envelope;
//! * **Definition 5.6** — the legal-state invariant
//!   `L_v − L_w ≤ d(v,w)(s + ½)κ` at every level, via
//!   [`LegalStateChecker`].
//!
//! On the first violation the watchdog *trips*: it freezes a
//! [`WatchdogTrip`] carrying the violation and the last `N` engine events
//! from its ring buffer, then stops checking (the first broken invariant is
//! the diagnostic signal; everything after it is noise).

use gcs_core::Params;
use gcs_graph::Graph;
use gcs_sim::{EngineEvent, EventSink, RingBufferSink};
use gcs_time::{DriftBounds, EnvelopeChecker, ProgressChecker, RateEnvelope};

use crate::legal::{LegalStateChecker, LegalStateViolation};

/// Which invariant broke, with the observations that broke it.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchdogViolation {
    /// Condition (1): a logical clock left the affine envelope of real time.
    Envelope {
        /// The offending node.
        node: usize,
        /// Real time of the violating sample.
        t: f64,
        /// The logical value observed.
        logical: f64,
        /// Slack against the lower envelope (negative = too slow).
        low_margin: f64,
        /// Slack against the upper envelope (negative = too fast).
        high_margin: f64,
    },
    /// Condition (2): a logical clock's increment left `[α, β]` per unit
    /// of real time.
    Progress {
        /// The offending node.
        node: usize,
        /// Real time of the violating sample.
        t: f64,
        /// Slack against the minimum rate `α` (negative = stalled).
        min_margin: f64,
        /// Slack against the maximum rate `β` (negative = jumped).
        max_margin: f64,
    },
    /// Definition 5.6: a pair exceeded its legal-state bound.
    LegalState(LegalStateViolation),
}

impl WatchdogViolation {
    /// A short stable tag (`envelope` / `progress` / `legal`), used by the
    /// chaos engine's verdict plumbing and fixture format.
    pub fn kind(&self) -> &'static str {
        match self {
            WatchdogViolation::Envelope { .. } => "envelope",
            WatchdogViolation::Progress { .. } => "progress",
            WatchdogViolation::LegalState(_) => "legal",
        }
    }

    /// The (primary) offending node — the ahead node for a legal-state
    /// violation.
    pub fn node(&self) -> usize {
        match self {
            WatchdogViolation::Envelope { node, .. } | WatchdogViolation::Progress { node, .. } => {
                *node
            }
            WatchdogViolation::LegalState(v) => v.v,
        }
    }

    /// Real time of the violating sample.
    pub fn time(&self) -> f64 {
        match self {
            WatchdogViolation::Envelope { t, .. } | WatchdogViolation::Progress { t, .. } => *t,
            WatchdogViolation::LegalState(v) => v.t,
        }
    }
}

/// The frozen diagnosis of the first violation.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogTrip {
    /// What broke.
    pub violation: WatchdogViolation,
    /// The last events before (and including the instant of) the
    /// violation, oldest first — the flight-recorder context.
    pub recent_events: Vec<EngineEvent>,
    /// Total events recorded before the trip (including evicted ones).
    pub events_recorded: u64,
}

impl WatchdogTrip {
    /// Renders the trip as a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.violation {
            WatchdogViolation::Envelope {
                node,
                t,
                logical,
                low_margin,
                high_margin,
            } => {
                out.push_str(&format!(
                    "watchdog: Condition (1) violated at t={t}: node {node} has \
                     L={logical} (low margin {low_margin:.6}, high margin {high_margin:.6})\n"
                ));
            }
            WatchdogViolation::Progress {
                node,
                t,
                min_margin,
                max_margin,
            } => {
                out.push_str(&format!(
                    "watchdog: Condition (2) violated at t={t}: node {node} progress \
                     out of [α, β] (min margin {min_margin:.6}, max margin {max_margin:.6})\n"
                ));
            }
            WatchdogViolation::LegalState(v) => {
                out.push_str(&format!(
                    "watchdog: legal state (Def. 5.6) violated at t={}: \
                     L_v{} − L_v{} = {:.6} > bound {:.6} (distance {}, level {})\n",
                    v.t, v.v, v.w, v.skew, v.bound, v.distance, v.level
                ));
            }
        }
        out.push_str(&format!(
            "last {} of {} events before the violation:\n",
            self.recent_events.len(),
            self.events_recorded
        ));
        for e in &self.recent_events {
            out.push_str("  ");
            out.push_str(&crate::events::encode_event(e));
            out.push('\n');
        }
        out
    }
}

/// The online invariant watchdog sink. See the module docs.
#[derive(Debug, Clone)]
pub struct InvariantWatchdog {
    drift: DriftBounds,
    envelope: RateEnvelope,
    tolerance: f64,
    /// Per-node Condition (1) checker, created when the node wakes (the
    /// envelope needs the initialization time `t_v`).
    envelopes: Vec<Option<EnvelopeChecker>>,
    /// Per-node Condition (2) checker (only fed once the node is started).
    progress: Vec<ProgressChecker>,
    legal: LegalStateChecker,
    ring: RingBufferSink,
    trip: Option<Box<WatchdogTrip>>,
    snapshots: u64,
}

impl InvariantWatchdog {
    /// Default flight-recorder depth.
    pub const DEFAULT_RING_CAPACITY: usize = 64;

    /// Creates a watchdog for executions of `A^opt`(-like) protocols with
    /// parameters `params` on `graph`, under hardware drift at most
    /// `drift`. Conditions (1)/(2) use the Corollary 5.3 envelope
    /// `[1 − ε, (1 + ε)(1 + μ)]`.
    pub fn new(graph: &Graph, params: Params, drift: DriftBounds) -> Self {
        InvariantWatchdog::with_ring_capacity(graph, params, drift, Self::DEFAULT_RING_CAPACITY)
    }

    /// Like [`InvariantWatchdog::new`] with an explicit flight-recorder
    /// depth.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity == 0`.
    pub fn with_ring_capacity(
        graph: &Graph,
        params: Params,
        drift: DriftBounds,
        ring_capacity: usize,
    ) -> Self {
        let n = graph.len();
        let envelope = RateEnvelope::for_a_opt(drift, params.mu());
        InvariantWatchdog {
            drift,
            envelope,
            tolerance: 1e-9,
            envelopes: vec![None; n],
            progress: vec![ProgressChecker::new(envelope, 1e-9); n],
            legal: LegalStateChecker::new(graph, params),
            ring: RingBufferSink::new(ring_capacity),
            trip: None,
            snapshots: 0,
        }
    }

    /// Whether a violation has been detected.
    pub fn tripped(&self) -> bool {
        self.trip.is_some()
    }

    /// The frozen diagnosis, if the watchdog tripped.
    pub fn trip(&self) -> Option<&WatchdogTrip> {
        self.trip.as_ref().map(Box::as_ref)
    }

    /// Number of state snapshots checked.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// The legal-state checker (margins, first violation).
    pub fn legal_state(&self) -> &LegalStateChecker {
        &self.legal
    }

    /// The Condition (2) progress envelope the watchdog enforces.
    pub fn rate_envelope(&self) -> RateEnvelope {
        self.envelope
    }

    fn trip_with(&mut self, violation: WatchdogViolation) {
        self.trip = Some(Box::new(WatchdogTrip {
            violation,
            recent_events: self.ring.events().copied().collect(),
            events_recorded: self.ring.recorded(),
        }));
    }
}

impl EventSink for InvariantWatchdog {
    fn record(&mut self, event: &EngineEvent) {
        if self.trip.is_some() {
            return;
        }
        self.ring.record(event);
        if let EngineEvent::Wake { node, t, .. } = event {
            self.envelopes[node.index()] =
                Some(EnvelopeChecker::new(self.drift, *t, self.tolerance));
        }
    }

    fn wants_snapshots(&self) -> bool {
        true
    }

    fn snapshot(&mut self, t: f64, clocks: &[f64], _queue_depth: usize) {
        if self.trip.is_some() {
            return;
        }
        self.snapshots += 1;
        for (node, &logical) in clocks.iter().enumerate() {
            // Unstarted nodes hold L = 0 and are exempt from every
            // condition until their wake event creates their checker.
            let Some(env) = self.envelopes[node].as_mut() else {
                continue;
            };
            if !env.observe(t, logical) {
                let (low, high) = (env.worst_low_margin(), env.worst_high_margin());
                self.trip_with(WatchdogViolation::Envelope {
                    node,
                    t,
                    logical,
                    low_margin: low,
                    high_margin: high,
                });
                return;
            }
            let prog = &mut self.progress[node];
            if !prog.observe(t, logical) {
                let (min, max) = (prog.worst_min_margin(), prog.worst_max_margin());
                self.trip_with(WatchdogViolation::Progress {
                    node,
                    t,
                    min_margin: min,
                    max_margin: max,
                });
                return;
            }
        }
        if !self.legal.observe_clocks(t, clocks) {
            let v = self
                .legal
                .first_violation()
                .expect("observe returned false");
            self.trip_with(WatchdogViolation::LegalState(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::{AOpt, NoSync, Params};
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, Engine, UniformDelay};

    fn drift() -> DriftBounds {
        DriftBounds::new(0.02).unwrap()
    }

    #[test]
    fn healthy_a_opt_run_never_trips() {
        let params = Params::recommended(0.02, 0.2).unwrap();
        let g = topology::path(5);
        let watchdog = InvariantWatchdog::new(&g, params, drift());
        let schedules = gcs_sim::rates::split(5, drift(), |v| v < 2);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); 5])
            .delay_model(UniformDelay::new(0.2, 7))
            .rate_schedules(schedules)
            .event_sink(watchdog)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(80.0);
        let watchdog = engine.into_sink();
        assert!(!watchdog.tripped(), "{:?}", watchdog.trip());
        assert!(watchdog.snapshots() > 0);
    }

    #[test]
    fn unsynchronized_clocks_trip_with_event_context() {
        // NoSync under maximal drift split eventually breaks the
        // neighbour-level legal-state constraint; the trip must carry the
        // flight-recorder context.
        let params = Params::recommended(0.02, 0.2).unwrap();
        let n = 7;
        let g = topology::path(n);
        let watchdog = InvariantWatchdog::new(&g, params, drift());
        let schedules = gcs_sim::rates::split(n, drift(), |v| v < n / 2);
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; n])
            .delay_model(ConstantDelay::new(0.0))
            .rate_schedules(schedules)
            .event_sink(watchdog)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(3000.0);
        let watchdog = engine.into_sink();
        assert!(watchdog.tripped());
        let trip = watchdog.trip().unwrap();
        assert!(matches!(
            trip.violation,
            WatchdogViolation::LegalState(_) | WatchdogViolation::Envelope { .. }
        ));
        assert!(!trip.recent_events.is_empty());
        assert!(trip.events_recorded >= trip.recent_events.len() as u64);
        let report = trip.render();
        assert!(report.contains("watchdog:"));
        assert!(report.contains("events before the violation"));
    }

    #[test]
    fn stalled_clock_trips_progress_condition() {
        // NoSync's L = H obeys Condition (1) under correct drift bounds,
        // but a *stalled* clock (rate far below α) breaks Condition (2)
        // against the A^opt envelope... and Condition (1)'s lower envelope
        // too; whichever fires, the watchdog must trip on a slow clock.
        let params = Params::recommended(0.02, 0.2).unwrap();
        let g = topology::path(2);
        let watchdog = InvariantWatchdog::new(&g, params, drift());
        // Rate 0.9 is far below 1 − ε = 0.98: illegal hardware for these
        // bounds, so the logical clock must leave the envelope.
        let schedules = vec![
            gcs_time::RateSchedule::constant(0.9).unwrap(),
            gcs_time::RateSchedule::constant(1.0).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync; 2])
            .delay_model(ConstantDelay::new(0.0))
            .rate_schedules(schedules)
            .event_sink(watchdog)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(50.0);
        let watchdog = engine.into_sink();
        assert!(watchdog.tripped());
        assert!(matches!(
            watchdog.trip().unwrap().violation,
            WatchdogViolation::Envelope { .. } | WatchdogViolation::Progress { .. }
        ));
    }

    #[test]
    fn checking_stops_after_the_trip() {
        let params = Params::recommended(0.02, 0.2).unwrap();
        let g = topology::path(2);
        let mut watchdog = InvariantWatchdog::new(&g, params, drift());
        watchdog.record(&EngineEvent::Wake {
            node: gcs_graph::NodeId(0),
            t: 0.0,
            hw: 0.0,
        });
        watchdog.record(&EngineEvent::Wake {
            node: gcs_graph::NodeId(1),
            t: 0.0,
            hw: 0.0,
        });
        // Violates the upper envelope immediately (L far above (1+ε)t).
        watchdog.snapshot(1.0, &[100.0, 0.0], 0);
        assert!(watchdog.tripped());
        let count = watchdog.snapshots();
        watchdog.snapshot(2.0, &[200.0, 0.0], 0);
        assert_eq!(watchdog.snapshots(), count);
    }
}
