//! Property tests for the metrics merge fold: merging per-shard state must
//! be indistinguishable from feeding one registry the interleaved stream.
//! This is the algebra the parallel engine's sweep-level metrics fold and
//! any future sharded observer rest on.

use gcs_analysis::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Observations stay within a few orders of magnitude of the bucket range
/// so every bucket — underflow, interior, boundary, overflow — gets hit.
fn obs() -> impl Strategy<Value = f64> {
    prop_oneof![
        // Arbitrary magnitudes across the bucket range.
        -2.0..50.0_f64,
        // Exact bucket boundaries: the ≤-semantics edge case.
        prop::sample::select(vec![1.0, 2.0, 4.0, 8.0, 16.0]),
        // Deep overflow.
        100.0..1e6_f64,
    ]
}

fn shards() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(obs(), 0..40), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram: shard-and-merge ≡ one histogram fed everything. Bucket
    /// counts, count, min, max, and every quantile are exact; only `sum`
    /// (float accumulation order) is approximate.
    #[test]
    fn histogram_merge_equals_interleaved(shards in shards()) {
        let make = || Histogram::exponential(1.0, 2.0, 5);
        let mut merged = make();
        let mut reference = make();
        for shard in &shards {
            let mut h = make();
            for &v in shard {
                h.record(v);
                reference.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(merged.count(), reference.count());
        prop_assert_eq!(merged.bucket_counts(), reference.bucket_counts());
        prop_assert_eq!(merged.min(), reference.min());
        prop_assert_eq!(merged.max(), reference.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), reference.quantile(q));
        }
        match (merged.mean(), reference.mean()) {
            (Some(a), Some(b)) => prop_assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "means diverged: {} vs {}", a, b
            ),
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    /// Merge must be associative in the way the sweep fold uses it:
    /// left-fold over shards ≡ one flat merge of everything.
    #[test]
    fn histogram_merge_fold_order_is_irrelevant_for_counts(shards in shards()) {
        let make = || Histogram::exponential(1.0, 2.0, 5);
        let built: Vec<Histogram> = shards
            .iter()
            .map(|s| {
                let mut h = make();
                s.iter().for_each(|&v| h.record(v));
                h
            })
            .collect();
        let mut left_fold = make();
        for h in &built {
            left_fold.merge(h);
        }
        let mut pairwise = built.clone();
        while pairwise.len() > 1 {
            let h = pairwise.pop().unwrap();
            pairwise.last_mut().unwrap().merge(&h);
        }
        let tree = pairwise.pop().unwrap();
        prop_assert_eq!(left_fold.bucket_counts(), tree.bucket_counts());
        prop_assert_eq!(left_fold.count(), tree.count());
        prop_assert_eq!(left_fold.min(), tree.min());
        prop_assert_eq!(left_fold.max(), tree.max());
    }

    /// Registry: counters add across shards, histograms fold exactly, and
    /// gauges take the last shard's value — the documented right bias.
    /// Observations are dyadic (multiples of 0.25) so float sums are exact
    /// in any accumulation order and the text/JSON renderings must be
    /// **byte-identical**, not merely close.
    #[test]
    fn registry_merge_equals_interleaved(
        shard_counts in prop::collection::vec(0u64..100, 1..5),
        shard_obs in prop::collection::vec(
            prop::collection::vec((-8i32..200).prop_map(|i| f64::from(i) * 0.25), 0..20),
            1..5,
        ),
    ) {
        let mut merged = MetricsRegistry::new();
        let mut reference = MetricsRegistry::new();
        let make = || Histogram::linear(0.0, 4.0, 6);
        let shards = shard_counts.len().max(shard_obs.len());
        for i in 0..shards {
            let mut r = MetricsRegistry::new();
            if let Some(&n) = shard_counts.get(i) {
                r.counter("events.total").add(n);
                reference.counter("events.total").add(n);
            }
            for &v in shard_obs.get(i).map(Vec::as_slice).unwrap_or(&[]) {
                r.histogram("delay", make).record(v);
                reference.histogram("delay", make).record(v);
            }
            r.gauge("time.last").set(i as f64);
            reference.gauge("time.last").set(i as f64);
            merged.merge(&r);
        }
        prop_assert_eq!(
            merged.counter_value("events.total"),
            reference.counter_value("events.total")
        );
        prop_assert_eq!(merged.gauge_value("time.last"), Some(shards as f64 - 1.0));
        match (merged.histogram_ref("delay"), reference.histogram_ref("delay")) {
            (Some(m), Some(r)) => {
                prop_assert_eq!(m.bucket_counts(), r.bucket_counts());
                prop_assert_eq!(m.count(), r.count());
            }
            (m, r) => prop_assert_eq!(m.is_some(), r.is_some()),
        }
        // Dyadic observations make sums exact, so the full renderings —
        // means included — must match byte-for-byte.
        prop_assert_eq!(merged.render(), reference.render());
        prop_assert_eq!(merged.to_json(), reference.to_json());
    }
}

#[test]
#[should_panic(expected = "different bounds")]
fn merging_mismatched_bounds_panics() {
    let mut a = Histogram::new(vec![1.0, 2.0]);
    let b = Histogram::new(vec![1.0, 3.0]);
    a.merge(&b);
}

#[test]
fn merge_with_empty_shard_is_identity() {
    let mut h = Histogram::exponential(1.0, 2.0, 4);
    h.record(3.0);
    h.record(100.0);
    let before = h.clone();
    h.merge(&Histogram::exponential(1.0, 2.0, 4));
    assert_eq!(h, before);
    let mut empty = Histogram::exponential(1.0, 2.0, 4);
    empty.merge(&before);
    assert_eq!(empty, before);
}

#[test]
fn registry_json_is_deterministic_and_merge_stable() {
    let mut a = MetricsRegistry::new();
    a.counter("events.total").add(7);
    a.gauge("time.last").set(1.5);
    a.histogram("delay", || Histogram::linear(0.0, 1.0, 3))
        .record(0.5);
    let mut b = MetricsRegistry::new();
    b.counter("events.total").add(3);
    b.histogram("delay", || Histogram::linear(0.0, 1.0, 3))
        .record(2.5);
    let mut merged = a.clone();
    merged.merge(&b);

    let json = merged.to_json();
    assert_eq!(json, merged.to_json(), "to_json must be deterministic");
    assert!(json.starts_with("{\"schema\":\"gcs-metrics/v1\""));
    assert!(json.contains("\"events.total\":10"));
    assert!(json.contains("\"buckets\":[1,0,1,0]"));
    assert!(json.ends_with("}\n"));
}
