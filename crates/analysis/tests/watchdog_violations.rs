//! Dedicated violation-path tests for the invariant watchdog: for each
//! monitored invariant — Condition (1), Condition (2), Definition 5.6 — a
//! crafted illegal execution must trip *that* check, and the trip must
//! freeze the flight recorder with exactly the events that preceded it.
//!
//! The executions are fed to the sink directly (records + snapshots), so
//! each test controls precisely which invariant breaks first: the watchdog
//! checks Condition (1), then Condition (2), then Definition 5.6 on every
//! snapshot, and the crafted clock paths keep the earlier checks green.

use gcs_analysis::{InvariantWatchdog, WatchdogViolation};
use gcs_core::Params;
use gcs_graph::{topology, NodeId};
use gcs_sim::{EngineEvent, EventSink};
use gcs_time::DriftBounds;

const EPS: f64 = 0.02;

fn watchdog(n: usize, ring: usize) -> InvariantWatchdog {
    let params = Params::recommended(EPS, 0.2).unwrap();
    let drift = DriftBounds::new(EPS).unwrap();
    InvariantWatchdog::with_ring_capacity(&topology::path(n), params, drift, ring)
}

fn wake(node: usize, t: f64) -> EngineEvent {
    EngineEvent::Wake {
        node: NodeId(node),
        t,
        hw: 0.0,
    }
}

fn send(node: usize, t: f64) -> EngineEvent {
    EngineEvent::Send {
        node: NodeId(node),
        t,
        hw: t,
    }
}

#[test]
fn too_fast_clock_trips_condition_1_upper_envelope() {
    let mut w = watchdog(2, 8);
    w.record(&wake(0, 0.0));
    w.record(&wake(1, 0.0));
    // (1 + ε)t = 1.02 at t = 1: a logical clock at 1.05 is impossibly fast.
    w.snapshot(1.0, &[1.05, 1.0], 0);
    assert!(w.tripped());
    let trip = w.trip().unwrap();
    match trip.violation {
        WatchdogViolation::Envelope {
            node,
            t,
            logical,
            high_margin,
            ..
        } => {
            assert_eq!(node, 0);
            assert_eq!(t, 1.0);
            assert_eq!(logical, 1.05);
            assert!(high_margin < 0.0, "upper envelope must be the broken side");
        }
        ref other => panic!("expected Condition (1) Envelope, got {other:?}"),
    }
    assert!(trip.render().contains("Condition (1)"));
}

#[test]
fn too_slow_clock_trips_condition_1_lower_envelope() {
    let mut w = watchdog(2, 8);
    w.record(&wake(0, 0.0));
    w.record(&wake(1, 0.0));
    // (1 − ε)(t − t_v) = 9.8 at t = 10: a clock at 9.5 fell behind the
    // slowest legal hardware.
    w.snapshot(10.0, &[9.5, 10.0], 0);
    assert!(w.tripped());
    match w.trip().unwrap().violation {
        WatchdogViolation::Envelope {
            node, low_margin, ..
        } => {
            assert_eq!(node, 0);
            assert!(low_margin < 0.0, "lower envelope must be the broken side");
        }
        ref other => panic!("expected Condition (1) Envelope, got {other:?}"),
    }
}

#[test]
fn stalled_clock_trips_condition_2_within_the_envelope() {
    let mut w = watchdog(2, 8);
    w.record(&wake(0, 0.0));
    w.record(&wake(1, 0.0));
    // Node 0 slides from the top of the Condition-(1) band to its bottom:
    // every sample is inside the envelope, but the increment 10.15 → 10.1
    // over 0.3s of real time is far below α = 1 − ε, so only Condition (2)
    // can fire.
    w.snapshot(10.0, &[10.15, 10.0], 0);
    assert!(!w.tripped(), "{:?}", w.trip());
    w.snapshot(10.3, &[10.1, 10.3], 0);
    assert!(w.tripped());
    match w.trip().unwrap().violation {
        WatchdogViolation::Progress {
            node,
            t,
            min_margin,
            ..
        } => {
            assert_eq!(node, 0);
            assert_eq!(t, 10.3);
            assert!(min_margin < 0.0, "the α side must be the broken one");
        }
        ref other => panic!("expected Condition (2) Progress, got {other:?}"),
    }
    assert!(w.trip().unwrap().render().contains("Condition (2)"));
}

#[test]
fn jumping_clock_trips_condition_2_max_rate() {
    let mut w = watchdog(2, 8);
    w.record(&wake(0, 0.0));
    w.record(&wake(1, 0.0));
    // Bottom of the band to its top in 0.1s: rate 4 ≫ β, envelope intact.
    w.snapshot(10.0, &[9.85, 10.0], 0);
    assert!(!w.tripped(), "{:?}", w.trip());
    w.snapshot(10.1, &[10.25, 10.1], 0);
    assert!(w.tripped());
    match w.trip().unwrap().violation {
        WatchdogViolation::Progress {
            node, max_margin, ..
        } => {
            assert_eq!(node, 0);
            assert!(max_margin < 0.0, "the β side must be the broken one");
        }
        ref other => panic!("expected Condition (2) Progress, got {other:?}"),
    }
}

#[test]
fn drifting_pair_trips_legal_state_while_conditions_hold() {
    let mut w = watchdog(2, 8);
    w.record(&wake(0, 0.0));
    w.record(&wake(1, 0.0));
    // Both nodes stay strictly inside the Condition-(1) band and move at
    // legal per-sample rates, but their gap grows like ~2εt: eventually
    // only the Definition 5.6 bound is the one that breaks.
    let ahead = (1.0 + EPS) * 0.999;
    let behind = (1.0 - EPS) * 1.001;
    let mut tripped_at = None;
    for step in 1..=20_000u32 {
        let t = step as f64;
        w.snapshot(t, &[ahead * t, behind * t], 0);
        if w.tripped() {
            tripped_at = Some(t);
            break;
        }
    }
    let t = tripped_at.expect("growing neighbour skew must trip Def. 5.6");
    match w.trip().unwrap().violation {
        WatchdogViolation::LegalState(ref v) => {
            assert_eq!((v.v, v.w), (0, 1), "node 0 is ahead of node 1");
            assert_eq!(v.distance, 1);
            assert!(v.skew > v.bound, "violation must exceed its bound");
            assert_eq!(v.t, t);
        }
        ref other => panic!("expected Def. 5.6 LegalState, got {other:?}"),
    }
    assert!(w.trip().unwrap().render().contains("Def. 5.6"));
}

#[test]
fn trip_freezes_ring_buffer_with_the_expected_events() {
    let mut w = watchdog(2, 4);
    // Seven events through a 4-deep recorder: only the last four survive.
    let events = vec![
        wake(0, 0.0),
        wake(1, 0.0),
        send(0, 1.0),
        send(1, 2.0),
        send(0, 3.0),
        send(1, 4.0),
        send(0, 5.0),
    ];
    for e in &events {
        w.record(e);
    }
    w.snapshot(6.0, &[100.0, 6.0], 0);
    assert!(w.tripped());
    let trip = w.trip().unwrap().clone();
    assert_eq!(trip.recent_events, events[3..], "oldest-first tail of 4");
    assert_eq!(trip.events_recorded, 7);

    // After the trip the recorder is frozen: further records and
    // snapshots change nothing.
    w.record(&send(1, 7.0));
    w.snapshot(8.0, &[200.0, 8.0], 0);
    assert_eq!(w.trip().unwrap(), &trip);
}
