//! A1 — ablation: is Eq. (4)'s lower bound on κ load-bearing? We scale κ
//! below `2((1+ε̂)(1+μ)𝒯̂ + H̄₀)` and watch the guarantees (scaled
//! accordingly) and the legal-state invariant give way.

use gcs_analysis::Table;
use gcs_analysis::{LegalStateChecker, SkewObserver};
use gcs_bench::banner;
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, DirectionalDelay, Engine};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "A1",
        "ablation: running A^opt with κ below the Eq. (4) minimum",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let d = 16usize;
    let drift = DriftBounds::new(eps).unwrap();
    let base = Params::recommended(eps, t_max).unwrap();
    println!(
        "path D = {d}; Eq. (4) minimum κ = {:.4}; adversarial drift + delays\n",
        base.min_kappa()
    );

    let mut table = Table::new(vec![
        "κ factor",
        "κ",
        "scaled local bound",
        "measured local",
        "within bound",
        "legal state",
    ]);
    for factor in [1.0f64, 0.5, 0.25, 0.1, 0.05] {
        let params = base.with_kappa_factor_unchecked(factor);
        let graph = topology::path(d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        let delay = DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max);
        let mut observer = SkewObserver::new(&graph);
        let mut checker = LegalStateChecker::new(&graph, params);
        let mut engine = Engine::builder(graph.clone())
            .protocols(vec![AOpt::new(params); n])
            .delay_model(delay)
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut legal = true;
        engine.run_until_observed(120.0, |e| {
            observer.observe(e);
            legal &= checker.observe(e);
        });
        let bound = params.local_skew_bound(d as u32);
        table.row(vec![
            format!("{factor}"),
            format!("{:.4}", params.kappa()),
            format!("{bound:.4}"),
            format!("{:.4}", observer.worst_local()),
            (observer.worst_local() <= bound + 1e-9).to_string(),
            legal.to_string(),
        ]);
    }
    println!("{table}");
    println!("κ at or somewhat below the minimum still survives this *generic*");
    println!("adversary (the proofs guard against the worst case), but as κ shrinks");
    println!("further the scaled guarantees and the legal-state invariant fail:");
    println!("Eq. (4) is where the estimate error 2((1+ε)(1+μ)𝒯 + H̄₀) must go.");
}
