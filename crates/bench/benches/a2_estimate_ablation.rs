//! A2 — ablation: Algorithm 2's estimate bookkeeping. `A^opt` advances its
//! neighbour estimates `L_v^w` at the hardware rate between messages, which
//! keeps estimate staleness at `𝒪(𝒯 + H̄₀)`; freezing the estimates at the
//! raw received values degrades staleness to `𝒪(𝒯 + H₀)` — visibly, once
//! `H₀ ≫ H̄₀`.

use gcs_analysis::{SkewObserver, Table};
use gcs_bench::banner;
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, DirectionalDelay, Engine};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "A2",
        "ablation: freezing neighbour estimates between messages (Algorithm 2)",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let d = 16usize;
    let drift = DriftBounds::new(eps).unwrap();
    println!("path D = {d}; sweep H₀ — frozen estimates go stale by H₀, advancing ones by H̄₀ = (2ε+μ)H₀\n");

    let mut table = Table::new(vec![
        "H₀/𝒯",
        "faithful local",
        "frozen local",
        "frozen − faithful",
        "local bound",
    ]);
    for h0_factor in [1.0f64, 4.0, 16.0, 64.0] {
        let mu = 14.0 * eps / (1.0 - eps);
        let params = Params::with_h0_mu(eps, t_max, h0_factor * t_max, mu).unwrap();
        let run = |frozen: bool| {
            let graph = topology::path(d + 1);
            let n = graph.len();
            let dist = graph.distances_from(NodeId(0));
            let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
            let delay = DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max);
            let protocols = if frozen {
                vec![AOpt::with_frozen_estimates(params); n]
            } else {
                vec![AOpt::new(params); n]
            };
            let mut observer = SkewObserver::new(&graph);
            let mut engine = Engine::builder(graph)
                .protocols(protocols)
                .delay_model(delay)
                .rate_schedules(schedules)
                .build();
            engine.wake_all_at(0.0);
            engine.run_until_observed(100.0 + 20.0 * h0_factor, |e| observer.observe(e));
            observer.worst_local()
        };
        let faithful = run(false);
        let frozen = run(true);
        let bound = params.local_skew_bound(d as u32);
        assert!(
            faithful <= bound + 1e-9,
            "faithful algorithm broke its bound"
        );
        table.row(vec![
            format!("{h0_factor}"),
            format!("{faithful:.4}"),
            format!("{frozen:.4}"),
            format!("{:.4}", frozen - faithful),
            format!("{bound:.4}"),
        ]);
    }
    println!("{table}");
    println!("an honest (nuanced) ablation: the measured gap is small, because");
    println!("setClockRate only runs at message arrival, when estimates are fresh");
    println!("either way. Advancing the estimates matters for the *analysis* —");
    println!("Lemma 5.1's idempotence, which lets the proof reason about the clock");
    println!("rate between messages, holds only with advancing estimates — and for");
    println!("any deployment that reads Λ↑/Λ↓ between messages. The worst-case");
    println!("κ accounting (Eq. 4 with H̄₀ rather than H₀) is proof-driven, not");
    println!("something a generic adversary exhibits.");
}
