//! A3 — Section 6.1's frequency-vs-skew trade-off, instantaneous edition:
//! plain `A^opt` bounds only the *amortized* frequency and can burst
//! `Θ(𝒢/H₀)` forwards in a window; `MinGapAOpt` enforces a hard `H₀` gap
//! between sends, paying `Θ(ε·D·H₀)` of global skew.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_protocol};
use gcs_core::{AOpt, MinGapAOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, DirectionalDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "A3",
        "hard minimum send gap (§6.1): burst suppression vs the ε·D·H₀ skew penalty",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let d = 16usize;
    let drift = DriftBounds::new(eps).unwrap();
    let horizon = 200.0;
    println!("path D = {d}; adversarial drift split + slow away-delays; horizon {horizon}\n");

    let mut table = Table::new(vec![
        "H₀/𝒯",
        "plain sends/node",
        "min-gap sends/node",
        "hard cap (hw/H₀)",
        "plain global",
        "min-gap global",
    ]);
    for h0_factor in [1.0f64, 4.0, 16.0] {
        let mu = 14.0 * eps / (1.0 - eps);
        let params = Params::with_h0_mu(eps, t_max, h0_factor * t_max, mu).unwrap();
        let graph = topology::path(d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        let delay = || DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max);

        let plain = run_protocol(
            graph.clone(),
            vec![AOpt::new(params); n],
            delay(),
            schedules.clone(),
            horizon,
        );
        let gapped = run_protocol(
            graph.clone(),
            vec![MinGapAOpt::new(params); n],
            delay(),
            schedules.clone(),
            horizon,
        );
        let cap = (1.0 + eps) * horizon / params.h0() + 1.0;
        table.row(vec![
            format!("{h0_factor}"),
            format!("{:.1}", plain.stats.send_events as f64 / n as f64),
            format!("{:.1}", gapped.stats.send_events as f64 / n as f64),
            format!("{cap:.1}"),
            f4(plain.global),
            f4(gapped.global),
        ]);
    }
    println!("{table}");
    println!("the min-gap variant never exceeds the hard per-node cap and pays only");
    println!("a small global-skew premium over plain A^opt — the §6.1 trade-off.");
}
