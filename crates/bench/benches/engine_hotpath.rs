//! engine_hotpath — throughput and allocation behaviour of the engine's
//! steady-state event loop.
//!
//! The fixture is the F2 wavefront configuration (the local-skew builder
//! behind Theorem 5.10): `A^opt` on a path under `WavefrontDelay` with
//! distance-split drift, at n ∈ {64, 256, 1024, 65536, 10^6}. Each size is
//! warmed past the wavefront flip, then a fixed window of events is stepped
//! while measuring wall time and global heap allocations. Three metrics per
//! size land in `BENCH_engine_hotpath.json` (`gcs-bench-result/v1`):
//!
//! * `events_per_sec_per_core/n=N` — the headline: steady-state dispatch
//!   throughput divided by `config.cores` (1 here — the sequential engine),
//!   comparable against the parallel engine's per-core numbers,
//! * `events_per_sec/n=N`   — raw steady-state dispatch throughput,
//! * `allocs_per_event/n=N` — heap allocations per dispatched event
//!   (the engine's steady state is allocation-free; see
//!   `tests/zero_alloc.rs` for the hard assertion).
//!
//! Set `GCS_BENCH_QUICK=1` (CI) to run n ∈ {64, 65536} with a smaller
//! window — one small row for the constant factors, one large row so cache
//! effects and the pre-reserved SoA planes stay covered in CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gcs_adversary::WavefrontDelay;
use gcs_analysis::Table;
use gcs_bench::{banner, f2, BenchReport};
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Engine};

/// Counts every heap allocation (alloc + realloc) made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const EPS: f64 = 0.02;
const T_MAX: f64 = 0.25;
/// Wavefront flip time; the warmup horizon runs past it so the measured
/// window sees the post-flip steady state (instant near-side delays).
const FLIP: f64 = 30.0;
const WARMUP_HORIZON: f64 = 40.0;

fn fixture(n: usize) -> Engine<AOpt, WavefrontDelay> {
    let graph = topology::path(n);
    // A path's diameter is n - 1 by construction; `graph.diameter()` is an
    // all-pairs BFS scan whose O(n^2) build would dwarf the run at n = 10^6.
    // Likewise the schedules below reproduce `build_rates("distsplit", ..)`
    // exactly (on a path, distance from node 0 is the node index) without
    // its internal diameter scan.
    let diameter = (n - 1) as u32;
    let boundary = (diameter / 2).max(1);
    let delay = WavefrontDelay::new(&graph, NodeId(0), T_MAX, FLIP, boundary);
    let drift = gcs_time::DriftBounds::new(EPS).unwrap();
    let half = diameter / 2;
    let schedules = rates::split(n, drift, move |v| (v as u32) < half);
    let params = Params::recommended(EPS, T_MAX).unwrap();
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine
}

/// Number of measurement windows per size; the fastest is reported
/// (min-of-N rejects scheduler-noise outliers; allocations are summed —
/// zero must hold across *every* window).
const REPS: usize = 5;

/// Cores used by the sequential engine — the divisor behind the
/// `events_per_sec_per_core` headline, so sequential and parallel
/// artifacts report on one scale.
const CORES: u64 = 1;

/// Steps `REPS` windows of exactly `window` events each, returning the
/// fastest window's wall seconds and the total allocations.
fn measure(engine: &mut Engine<AOpt, WavefrontDelay>, window: u64) -> (f64, u64) {
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let started = Instant::now();
        for _ in 0..window {
            engine
                .step()
                .expect("the wavefront fixture never drains its queue");
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    (best, allocs)
}

fn main() {
    banner(
        "engine_hotpath",
        "steady-state events/sec and allocations on the F2 wavefront fixture",
    );
    let quick = std::env::var("GCS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let sizes: &[usize] = if quick {
        &[64, 65_536]
    } else {
        &[64, 256, 1024, 65_536, 1_000_000]
    };
    let window: u64 = if quick { 50_000 } else { 200_000 };

    let mut results = BenchReport::new("engine_hotpath");
    results
        .config("fixture", "f2-wavefront")
        .config("eps", EPS)
        .config("t", T_MAX)
        .config("flip", FLIP)
        .config("warmup_horizon", WARMUP_HORIZON)
        .config("window_events", window)
        .config("reps_best_of", REPS)
        .config("cores", CORES)
        .config("quick", quick);

    let mut table = Table::new(vec!["n", "events/sec/core", "ns/event", "allocs/event"]);
    for &n in sizes {
        let mut engine = fixture(n);
        engine.run_until(WARMUP_HORIZON);
        let (wall, allocs) = measure(&mut engine, window);
        let events_per_sec = window as f64 / wall;
        let allocs_per_event = allocs as f64 / (REPS as u64 * window) as f64;
        results.metric(
            &format!("events_per_sec_per_core/n={n}"),
            events_per_sec / CORES as f64,
        );
        results.metric(&format!("events_per_sec/n={n}"), events_per_sec);
        results.metric(&format!("allocs_per_event/n={n}"), allocs_per_event);
        table.row(vec![
            n.to_string(),
            format!("{:.0}", events_per_sec / CORES as f64),
            format!("{:.0}", 1e9 * wall / window as f64),
            f2(allocs_per_event),
        ]);
    }
    println!("{table}");

    match results.write() {
        Ok(path) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("warning: could not write bench results: {e}"),
    }
}
