//! engine_parallel — multi-core scaling of ONE large simulation via the
//! lookahead-windowed parallel driver (`Engine::run_until_threaded`).
//!
//! The fixture is the F2 wavefront configuration in its *parallelizable*
//! regime: `A^opt` on a path under `WavefrontDelay` with the flip pushed
//! past the horizon, so every message takes the full `𝒯 = 0.25` and the
//! model advertises a lookahead floor of `𝒯` for the whole run. Sizes
//! n ∈ {1024, 4096, 16384} each run at 1/2/4/8 threads; the event stream
//! is byte-identical at every thread count (pinned by
//! `tests/parallel_parity.rs`), so events are counted once per size with a
//! sequential stepping pass and reused for every throughput figure.
//!
//! Metrics in `BENCH_engine_parallel.json` (`gcs-bench-result/v1`):
//!
//! * `events_per_sec/n=N/threads=K` — end-to-end dispatch throughput,
//! * `speedup/n=N/threads=K`       — wall(threads=1) / wall(threads=K),
//! * `allocs_per_event_steady/...` — heap allocations per event in the
//!   parallel steady state, by two-horizon difference (the runs share
//!   their setup allocations, which cancel; windows are allocation-free
//!   once the scratch buffers have grown, so this must be 0),
//! * `replay_share` / `idle_share` / `windows` — the serial barrier
//!   fraction and load-imbalance idle time from [`EngineProfile`].
//!
//! Interpret `speedup` against `config.cores`: on a single-core runner the
//! windows serialize and speedup ≤ 1 by construction.
//!
//! Set `GCS_BENCH_QUICK=1` (CI) for n = 1024 at 1/2 threads only.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gcs_adversary::WavefrontDelay;
use gcs_analysis::Table;
use gcs_bench::{banner, f2, BenchReport};
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::Engine;
use gcs_sweep::build_rates;

/// Counts every heap allocation (alloc + realloc) made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const EPS: f64 = 0.02;
const T_MAX: f64 = 0.25;
/// Far beyond any horizon: the wavefront never flips, so the delay model's
/// `lookahead_at` promises a floor of `T_MAX` for the entire run.
const FLIP: f64 = 1e9;

fn fixture(n: usize, profiled: bool) -> Engine<AOpt, WavefrontDelay> {
    let graph = topology::path(n);
    let boundary = (graph.diameter() / 2).max(1);
    let delay = WavefrontDelay::new(&graph, NodeId(0), T_MAX, FLIP, boundary);
    let drift = gcs_time::DriftBounds::new(EPS).unwrap();
    let horizon = 1e6; // rate schedules only need to cover the run
    let schedules = build_rates("distsplit", &graph, drift, horizon, 0).expect("valid rates spec");
    let params = Params::recommended(EPS, T_MAX).unwrap();
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .profiling(profiled)
        .build();
    engine.wake_all_at(0.0);
    engine
}

/// Steps a clone of `base` sequentially to `horizon`, returning the event
/// count — valid for every thread count because the parallel driver's
/// stream (and therefore its pop sequence) is byte-identical.
fn count_events(base: &Engine<AOpt, WavefrontDelay>, horizon: f64) -> u64 {
    let mut engine = base.clone();
    let mut events = 0;
    while let Some(next) = engine.next_event_time() {
        if next > horizon {
            break;
        }
        engine.step();
        events += 1;
    }
    events
}

/// Wall seconds of `run_until_threaded(horizon, threads)` on a clone of
/// `base`, best of `reps`.
fn measure(base: &Engine<AOpt, WavefrontDelay>, horizon: f64, threads: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut engine = base.clone();
        let started = Instant::now();
        engine.run_until_threaded(horizon, threads);
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Heap allocations of one cold `run_until_threaded` call on a clone.
fn allocs_of_run(base: &Engine<AOpt, WavefrontDelay>, horizon: f64, threads: usize) -> u64 {
    let mut engine = base.clone();
    let before = ALLOCS.load(Ordering::Relaxed);
    engine.run_until_threaded(horizon, threads);
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() {
    banner(
        "engine_parallel",
        "multi-core scaling of one simulation under lookahead windowing",
    );
    let quick = std::env::var("GCS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let sizes: &[usize] = if quick { &[1024] } else { &[1024, 4096, 16384] };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let horizon: f64 = if quick { 15.0 } else { 30.0 };
    let reps: usize = if quick { 1 } else { 2 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut results = BenchReport::new("engine_parallel");
    results
        .config("fixture", "f2-wavefront-preflip")
        .config("eps", EPS)
        .config("t", T_MAX)
        .config("horizon", horizon)
        .config("reps_best_of", reps)
        .config("cores", cores)
        .config("quick", quick);

    let mut table = Table::new(vec!["n", "threads", "events/sec", "speedup"]);
    for &n in sizes {
        let base = fixture(n, false);
        let events = count_events(&base, horizon);
        let mut wall_seq = f64::NAN;
        let reference = {
            let mut engine = base.clone();
            engine.run_until_threaded(horizon, 1);
            engine.logical_values()
        };
        for &threads in thread_counts {
            let wall = measure(&base, horizon, threads, reps);
            if threads == 1 {
                wall_seq = wall;
            }
            // Cheap cross-check riding along with the timing: final clocks
            // must match the sequential run (full parity is pinned in
            // tests/parallel_parity.rs).
            let mut check = base.clone();
            check.run_until_threaded(horizon, threads);
            assert_eq!(
                check.logical_values(),
                reference,
                "parallel run diverged at n={n} threads={threads}"
            );
            let events_per_sec = events as f64 / wall;
            let speedup = wall_seq / wall;
            results.metric(
                &format!("events_per_sec/n={n}/threads={threads}"),
                events_per_sec,
            );
            results.metric(&format!("speedup/n={n}/threads={threads}"), speedup);
            table.row(vec![
                n.to_string(),
                threads.to_string(),
                format!("{events_per_sec:.0}"),
                format!("{speedup:.2}"),
            ]);
        }
    }
    println!("{table}");

    // Steady-state allocations per event, by two-horizon difference: both
    // runs pay identical setup costs (partition clones, thread spawns,
    // scratch growth), so the difference isolates the extra windows — which
    // must allocate nothing.
    let alloc_n = if quick { 1024 } else { 4096 };
    let alloc_threads = if quick { 2 } else { 4 };
    let (h1, h2) = (horizon, horizon * 1.5);
    let base = fixture(alloc_n, false);
    let events_h1 = count_events(&base, h1);
    let events_h2 = count_events(&base, h2);
    let allocs_h1 = allocs_of_run(&base, h1, alloc_threads);
    let allocs_h2 = allocs_of_run(&base, h2, alloc_threads);
    let steady_allocs = allocs_h2.saturating_sub(allocs_h1) as f64;
    let steady_events = (events_h2 - events_h1) as f64;
    let allocs_per_event = steady_allocs / steady_events;
    results.metric(
        &format!("allocs_per_event_steady/n={alloc_n}/threads={alloc_threads}"),
        allocs_per_event,
    );
    println!(
        "steady allocs/event at n={alloc_n}, {alloc_threads} threads: {} \
         ({steady_allocs:.0} allocations over {steady_events:.0} extra events)",
        f2(allocs_per_event),
    );

    // Where does parallel wall time go? One profiled run at the alloc
    // config: the serial replay share bounds scaling (Amdahl), the idle
    // share measures load imbalance across partitions.
    let mut profiled = fixture(alloc_n, true);
    profiled.run_until_threaded(horizon, alloc_threads);
    let profile = profiled.profile().expect("profiling was enabled");
    let wall = profile.par_wall.as_secs_f64();
    if wall > 0.0 && profile.par_workers > 0 {
        let replay_share = profile.par_replay.as_secs_f64() / wall;
        let idle_share = profile.par_idle.as_secs_f64() / (wall * profile.par_workers as f64);
        results.metric("replay_share", replay_share);
        results.metric("idle_share", idle_share);
        results.metric("windows", profile.par_windows as f64);
        println!(
            "parallel phase: {} windows, replay {:.1}% of wall, idle {:.1}% per worker",
            profile.par_windows,
            100.0 * replay_share,
            100.0 * idle_share,
        );
    }

    match results.write() {
        Ok(path) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("warning: could not write bench results: {e}"),
    }
}
