//! F10 — Definition 5.6: the *legal state* invariant, the engine of
//! Theorem 5.10's proof. At every instant and every level `s`, pairs at
//! distance `≥ C_s = (2𝒢/κ)σ^{−s}` carry at most `d·(s+½)·κ` of skew. We
//! audit the invariant over adversarial executions and report the worst
//! remaining margin per level.

use gcs_analysis::{LegalStateChecker, Table};
use gcs_bench::banner;
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, DirectionalDelay, Engine};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F10",
        "legal-state audit (Def 5.6): skew ≤ d(s+½)κ for all pairs at distance ≥ C_s",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let drift = DriftBounds::new(eps).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();
    let d = 32usize;
    let graph = topology::path(d + 1);
    let n = graph.len();
    println!(
        "path D = {d}; σ = {}, κ = {:.4}, 𝒢 = {:.4}; adversarial split drift + slow away-delays\n",
        params.sigma(),
        params.kappa(),
        params.global_skew_bound(d as u32)
    );

    let dist = graph.distances_from(NodeId(0));
    let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
    let delay = DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max);
    let mut checker = LegalStateChecker::new(&graph, params);
    let mut engine = Engine::builder(graph.clone())
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    let horizon = 60.0 + 4.0 * d as f64 * t_max;
    engine.run_until_observed(horizon, |e| {
        assert!(
            checker.observe(e),
            "legal state violated: {:?}",
            checker.first_violation()
        );
    });

    let mut table = Table::new(vec![
        "level s",
        "C_s (min distance)",
        "per-hop allowance (s+½)κ",
        "worst remaining margin",
    ]);
    for (s, &margin) in checker.margins().iter().enumerate() {
        table.row(vec![
            s.to_string(),
            format!("{:.2}", params.legal_state_threshold(d as u32, s as u32)),
            format!("{:.4}", (s as f64 + 0.5) * params.kappa()),
            if margin.is_finite() {
                format!("{margin:.4}")
            } else {
                "unused".to_string()
            },
        ]);
    }
    println!("{table}");
    println!("no violation at any level over the {horizon}-second horizon — the system");
    println!("never leaves the legal state, exactly as the proof of Thm 5.10 requires.");
}
