//! F11 — the worst case is far from the average case: with i.i.d. random
//! delays and drifts (the wireless-sensor-network regime of the paper's
//! related-work discussion, Lenzen–Sommer–Wattenhofer 2009b) observed skews
//! are far below the adversarial ones on the same graph.

use gcs_analysis::Table;
use gcs_bench::{banner, f2, f4, run_aopt};
use gcs_core::Params;
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, DirectionalDelay, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F11",
        "random (benign) vs adversarial environments: observed global skew",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let drift = DriftBounds::new(eps).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();

    let mut table = Table::new(vec![
        "D",
        "random-env global",
        "adversarial global",
        "bound 𝒢",
        "adv/random",
    ]);
    for d in [8usize, 16, 32, 64] {
        let graph = topology::path(d + 1);
        let n = graph.len();
        let horizon = 60.0 + 4.0 * d as f64 * t_max;

        let random = run_aopt(
            graph.clone(),
            params,
            UniformDelay::new(t_max, d as u64),
            rates::random_walk(n, drift, 5.0, horizon, d as u64),
            horizon,
        );
        let dist = graph.distances_from(NodeId(0));
        let adversarial = run_aopt(
            graph.clone(),
            params,
            DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max),
            rates::split(n, drift, |v| dist[v] < (d / 2) as u32),
            horizon,
        );
        table.row(vec![
            d.to_string(),
            f4(random.global),
            f4(adversarial.global),
            f4(params.global_skew_bound(d as u32)),
            f2(adversarial.global / random.global),
        ]);
    }
    println!("{table}");
    println!("the adversarial/random gap widens with D: random delays average out");
    println!("(the Õ(√D)-flavoured behaviour cited in the paper's related work),");
    println!("while the coordinated adversary extracts Θ(D·𝒯).");
}
