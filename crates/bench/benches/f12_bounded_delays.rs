//! F12 — Section 8.3: when delays lie in `[𝒯₁, 𝒯₂]`, only the *uncertainty*
//! `𝒯₂ − 𝒯₁` matters. The offset variant compensates the known floor `𝒯₁`;
//! its skew stays flat as `𝒯₁` grows with the uncertainty fixed, whereas an
//! uncompensated run degrades linearly in `𝒯₂`.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_protocol};
use gcs_core::{AOpt, OffsetAOpt, Params};
use gcs_graph::topology;
use gcs_sim::{rates, DelayCtx, Delivery, FnDelay};
use gcs_time::DriftBounds;
use rand::{Rng, SeedableRng};

fn banded(t1: f64, t2: f64, seed: u64) -> FnDelay<impl FnMut(&DelayCtx<'_>) -> Delivery + Clone> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    FnDelay::new(
        move |_: &DelayCtx<'_>| Delivery::After(rng.gen_range(t1..=t2)),
        Some(t2),
    )
}

fn main() {
    banner(
        "F12",
        "delays in [𝒯₁, 𝒯₂]: the offset variant pays only for 𝒯₂ − 𝒯₁ (§8.3)",
    );
    let eps = 2e-3;
    let uncertainty = 0.1;
    let d = 8usize;
    let drift = DriftBounds::new(eps).unwrap();
    // The variant's parameters are built from the *uncertainty*.
    let params = Params::recommended(eps, uncertainty).unwrap();
    // The naive run must assume 𝒯̂ = 𝒯₂ (it cannot exploit the floor).
    println!("path D = {d}, ε̂ = {eps}, fixed uncertainty 𝒯₂−𝒯₁ = {uncertainty}\n");

    let mut table = Table::new(vec![
        "𝒯₁",
        "𝒯₂",
        "offset-variant global",
        "naive A^opt global",
        "naive bound (D·𝒯₂ scale)",
    ]);
    for t1 in [0.0f64, 0.2, 0.5, 1.0, 2.0] {
        let t2 = t1 + uncertainty;
        let graph = topology::path(d + 1);
        let n = graph.len();
        let schedules = rates::split(n, drift, |v| v % 2 == 0);
        let horizon = 150.0 + 20.0 * t2;

        let offset = run_protocol(
            graph.clone(),
            vec![OffsetAOpt::new(params, t1); n],
            banded(t1, t2, 3),
            schedules.clone(),
            horizon,
        );
        let naive_params = Params::recommended(eps, t2).unwrap();
        let naive = run_protocol(
            graph.clone(),
            vec![AOpt::new(naive_params); n],
            banded(t1, t2, 3),
            schedules,
            horizon,
        );
        table.row(vec![
            format!("{t1:.1}"),
            format!("{t2:.1}"),
            f4(offset.global),
            f4(naive.global),
            f4(naive_params.global_skew_bound(d as u32)),
        ]);
    }
    println!("{table}");
    println!("the offset column stays ~flat (it sees only the uncertainty), while");
    println!("the naive column's bound — and with it κ, H₀, and the achievable");
    println!("skew — grows with 𝒯₂: exactly §8.3's point.");
}
