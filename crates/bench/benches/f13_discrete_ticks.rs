//! F13 — Section 8.4: discrete clock ticks. With hardware clocks that only
//! tick every `1/f`, the effective uncertainty becomes `max(1/f, 𝒯)`:
//! granularity is free while ticks are finer than the delay uncertainty
//! and dominates beyond.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_protocol};
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Ticked, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F13",
        "discrete clock ticks (§8.4): skew vs tick period — 𝒯 is replaced by max(1/f, 𝒯)",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let d = 8usize;
    let drift = DriftBounds::new(eps).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();
    println!("path D = {d}, 𝒯 = {t_max}; uniform delays + split drift\n");

    let mut table = Table::new(vec![
        "tick period / 𝒯",
        "global skew",
        "local skew",
        "max(1/f, 𝒯)/𝒯",
    ]);
    for period_factor in [0.015625f64, 0.0625, 0.25, 1.0, 2.0, 4.0] {
        let period = period_factor * t_max;
        let graph = topology::path(d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        let outcome = run_protocol(
            graph,
            vec![Ticked::new(AOpt::new(params), period); n],
            UniformDelay::new(t_max, 7),
            schedules,
            120.0,
        );
        table.row(vec![
            format!("{period_factor}"),
            f4(outcome.global),
            f4(outcome.local),
            format!("{:.2}", period_factor.max(1.0)),
        ]);
    }
    println!("{table}");
    println!("skews are flat while the tick period stays below 𝒯 and grow once it");
    println!("dominates — 𝒯 effectively becomes max(1/f, 𝒯), §8.4's claim.");
}
