//! F14 — Section 8.6: the hardware-envelope condition. The adapted
//! algorithm keeps every logical clock between the smallest and largest
//! hardware clock value in the system, while still synchronizing.

use gcs_analysis::Table;
use gcs_bench::banner;
use gcs_core::{EnvelopeAOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Engine, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F14",
        "hardware-envelope variant (§8.6): min_w H_w ≤ L_v ≤ max_w H_w, always",
    );
    let eps = 0.02;
    let t_max = 0.1;
    let params = Params::recommended(eps, t_max).unwrap();
    let drift = DriftBounds::new(eps).unwrap();

    let mut table = Table::new(vec![
        "n",
        "worst margin to max_w H_w",
        "worst margin to min_w H_w",
        "worst global skew",
        "bound 𝒢 + slack",
    ]);
    for (n, seed) in [(5usize, 3u64), (8, 11), (12, 29)] {
        let graph = topology::path(n);
        let horizon = 150.0;
        let schedules = rates::random_walk(n, drift, 4.0, horizon, seed);
        let mut engine = Engine::builder(graph)
            .protocols(vec![EnvelopeAOpt::new(params); n])
            .delay_model(UniformDelay::new(t_max, seed))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut worst_high = f64::INFINITY; // max H − L
        let mut worst_low = f64::INFINITY; // L − min H
        let mut worst_skew: f64 = 0.0;
        engine.run_until_observed(horizon, |e| {
            let hws: Vec<f64> = (0..n).map(|v| e.hardware_value(NodeId(v))).collect();
            let h_min = hws.iter().cloned().fold(f64::MAX, f64::min);
            let h_max = hws.iter().cloned().fold(f64::MIN, f64::max);
            let clocks = e.logical_values();
            for &l in &clocks {
                worst_high = worst_high.min(h_max - l);
                worst_low = worst_low.min(l - h_min);
            }
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            worst_skew = worst_skew.max(max - min);
        });
        assert!(worst_high >= -1e-9, "envelope violated above");
        assert!(worst_low >= -1e-9, "envelope violated below");
        let slack = 2.0 * eps * horizon * t_max;
        table.row(vec![
            n.to_string(),
            format!("{worst_high:.5}"),
            format!("{worst_low:.5}"),
            format!("{worst_skew:.4}"),
            format!("{:.4}", params.global_skew_bound((n - 1) as u32) + slack),
        ]);
    }
    println!("{table}");
    println!("both margins stay non-negative (the sharpened Condition 1 of §8.6");
    println!("holds exactly), and skews remain on the usual 𝒢 scale: damping the");
    println!("rates by 1 − 𝒪(ε̂) costs only constants, as the paper asserts.");
}
