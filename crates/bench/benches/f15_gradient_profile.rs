//! F15 — Corollaries 7.9/7.13: the full gradient property. The worst-case
//! skew between nodes at distance `d` behaves like
//! `Θ(α𝒯·d·(1 + log_b(D/d)))`. Both sides are exhibited:
//!
//! * **floor** — the Theorem 7.7 construction *forces*, at each stage, a
//!   skew of `(k+1)/2·α𝒯·n_k` on a pair at distance `n_k = D/b^k`: the
//!   per-hop average `(k+1)/2·α𝒯` grows exactly logarithmically as the
//!   distance shrinks;
//! * **ceiling** — `A^opt`'s legal state caps pairs at distance `d` by
//!   `d·(s+½)κ` with `s ≈ log_σ(2𝒢/(dκ))` — the same `d(1+log(D/d))`
//!   shape from above.

use gcs_adversary::framed::LocalLowerBound;
use gcs_analysis::{GradientProfile, Table};
use gcs_bench::banner;
use gcs_core::{AOpt, NoSync, Params};
use gcs_graph::topology;
use gcs_sim::{rates, Engine, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F15",
        "gradient property (Cor 7.9): forced floor and guaranteed ceiling vs distance",
    );

    // ---- Floor: the construction's per-stage forced skews. ----
    let eps = 0.2;
    let alpha = 1.0 - eps;
    let t_max = 1.0;
    let b = 4usize;
    let stages = 3usize;
    let lb = LocalLowerBound::new(b, stages, eps, t_max, alpha);
    let reports = lb.run(|n| vec![NoSync; n]);
    println!(
        "Theorem 7.7 construction on a path of D = {} (b = {b}, α = {alpha}):\n",
        lb.d_prime()
    );
    let mut table = Table::new(vec![
        "pair distance d",
        "forced skew",
        "forced per hop",
        "shape (k+1)/2·α𝒯",
    ]);
    for r in &reports {
        table.row(vec![
            r.distance.to_string(),
            format!("{:.3}", r.skew),
            format!("{:.3}", r.skew / r.distance as f64),
            format!("{:.3}", (r.stage as f64 + 1.0) / 2.0 * alpha * t_max),
        ]);
    }
    println!("{table}");
    println!("per-hop forced skew *rises* as the distance shrinks — one α𝒯-step per");
    println!("b-fold reduction: the logarithmic gradient from below.\n");

    // ---- Ceiling: A^opt's per-distance legal-state cap + a measured run. ----
    let eps = 0.02;
    let t_max = 0.25;
    let d = 32usize;
    let params = Params::recommended(eps, t_max).unwrap();
    let drift = DriftBounds::new(eps).unwrap();
    let graph = topology::path(d + 1);
    let n = graph.len();
    let horizon = 300.0;
    let schedules = rates::alternating(n, drift, 17.0, horizon);
    let mut profile = GradientProfile::new(&graph);
    let mut engine = Engine::builder(graph.clone())
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(t_max, 23))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    let mut next_sample = 0.0;
    engine.run_until_observed(horizon, |e| {
        if e.now() >= next_sample {
            profile.observe(e);
            next_sample = e.now() + 0.5;
        }
    });
    let worst = profile.worst_by_distance();
    println!(
        "A^opt ceiling on a path of D = {d} (ε̂ = {eps}, κ = {:.3}, σ = {}):\n",
        params.kappa(),
        params.sigma()
    );
    let ceiling = |dd: usize| {
        // Smallest legal-state level binding distance dd:
        let c0 = 2.0 * params.global_skew_bound(d as u32) / params.kappa();
        let s = if dd as f64 >= c0 {
            0.0
        } else {
            (c0 / dd as f64).log(params.sigma() as f64).ceil()
        };
        dd as f64 * (s + 0.5) * params.kappa()
    };
    let mut table = Table::new(vec![
        "distance d",
        "measured worst skew",
        "legal-state ceiling d(s+½)κ",
        "ceiling per hop",
    ]);
    for &dd in &[1usize, 2, 4, 8, 16, 32] {
        assert!(
            worst[dd] <= ceiling(dd) + 1e-9,
            "ceiling violated at d = {dd}"
        );
        table.row(vec![
            dd.to_string(),
            format!("{:.4}", worst[dd]),
            format!("{:.4}", ceiling(dd)),
            format!("{:.4}", ceiling(dd) / dd as f64),
        ]);
    }
    println!("{table}");
    println!("the ceiling's per-hop allowance also falls logarithmically with");
    println!("distance — floor and ceiling share the Θ(d(1 + log(D/d))) shape of");
    println!("Corollary 7.9, closing the gradient property from both sides.");
}
