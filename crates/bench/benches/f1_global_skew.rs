//! F1 — Theorem 5.5: the global skew of `A^opt` never exceeds
//! `𝒢 = (1 + ε̂)·D·𝒯̂ + 2ε̂/(1 + ε̂)·H₀`, across topologies and adversarial
//! environments, and the bound is linear in the diameter.
//!
//! The topology grid runs through the `gcs-sweep` orchestrator: one job
//! per case, executed in parallel, results in deterministic job order.

use gcs_analysis::Table;
use gcs_bench::{banner, f2, f4, workers};
use gcs_core::Params;
use gcs_sweep::{run_sweep, SweepSpec};

fn main() {
    banner(
        "F1",
        "global skew ≤ 𝒢 = (1+ε)D𝒯 + 2ε/(1+ε)H₀ (Thm 5.5), linear in D",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let params = Params::recommended(eps, t_max).unwrap();
    println!(
        "ε̂ = {eps}, 𝒯̂ = {t_max}, H₀ = {:.3}, κ = {:.4}\n",
        params.h0(),
        params.kappa()
    );

    // Max-drift split along distance from node 0 (`distsplit`) + slow
    // away-delays (`directional`): the strongest generic skew builder.
    let spec = SweepSpec {
        topologies: [
            "path:9",
            "path:17",
            "path:33",
            "path:65",
            "grid:5x5",
            "grid:8x8",
            "tree:31",
            "tree:127",
            "torus:6x6",
            "er:40:0.08",
        ]
        .map(String::from)
        .to_vec(),
        eps: vec![eps],
        t: vec![t_max],
        delays: vec!["directional".into()],
        rates: vec!["distsplit".into()],
        seeds: 7..8,
        horizon: 40.0,
        horizon_per_diameter: 4.0,
        ..SweepSpec::default()
    };

    let jobs = spec.expand();
    let (outcomes, _) = run_sweep(&jobs, workers(), |_, _| {});

    let mut table = Table::new(vec![
        "topology",
        "n",
        "D",
        "measured skew",
        "bound 𝒢",
        "used %",
    ]);
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        let r = outcome
            .completed()
            .unwrap_or_else(|| panic!("{} failed: {:?}", job.label(), outcome.failure()));
        assert!(
            r.global_skew <= r.global_bound + 1e-9,
            "{}: Thm 5.5 violated",
            job.topology
        );
        table.row(vec![
            job.topology.clone(),
            r.nodes.to_string(),
            r.diameter.to_string(),
            f4(r.global_skew),
            f4(r.global_bound),
            f2(r.global_skew / r.global_bound * 100.0),
        ]);
    }
    println!("{table}");
    println!("every run respects 𝒢; see F7 for the matching forced floor (1+ϱ)D𝒯.");
}
