//! F1 — Theorem 5.5: the global skew of `A^opt` never exceeds
//! `𝒢 = (1 + ε̂)·D·𝒯̂ + 2ε̂/(1 + ε̂)·H₀`, across topologies and adversarial
//! environments, and the bound is linear in the diameter.

use gcs_analysis::Table;
use gcs_bench::{banner, f2, f4, run_aopt};
use gcs_core::Params;
use gcs_graph::{topology, Graph, NodeId};
use gcs_sim::{rates, DirectionalDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F1",
        "global skew ≤ 𝒢 = (1+ε)D𝒯 + 2ε/(1+ε)H₀ (Thm 5.5), linear in D",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let drift = DriftBounds::new(eps).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();
    println!(
        "ε̂ = {eps}, 𝒯̂ = {t_max}, H₀ = {:.3}, κ = {:.4}\n",
        params.h0(),
        params.kappa()
    );

    let mut table = Table::new(vec![
        "topology",
        "n",
        "D",
        "measured skew",
        "bound 𝒢",
        "used %",
    ]);
    let cases: Vec<(&str, Graph)> = vec![
        ("path", topology::path(9)),
        ("path", topology::path(17)),
        ("path", topology::path(33)),
        ("path", topology::path(65)),
        ("grid", topology::grid(5, 5)),
        ("grid", topology::grid(8, 8)),
        ("tree", topology::binary_tree(31)),
        ("tree", topology::binary_tree(127)),
        ("torus", topology::torus(6, 6)),
        ("random", topology::erdos_renyi(40, 0.08, 7)),
    ];
    for (name, graph) in cases {
        let n = graph.len();
        let d = graph.diameter();
        // Max-drift split along distance from node 0 + slow away-delays:
        // the strongest generic skew builder.
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < d / 2);
        let delay = DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max);
        let horizon = 40.0 + 4.0 * d as f64 * t_max;
        let outcome = run_aopt(graph, params, delay, schedules, horizon);
        let bound = params.global_skew_bound(d);
        assert!(outcome.global <= bound + 1e-9, "{name}: Thm 5.5 violated");
        table.row(vec![
            name.to_string(),
            n.to_string(),
            d.to_string(),
            f4(outcome.global),
            f4(bound),
            f2(outcome.global / bound * 100.0),
        ]);
    }
    println!("{table}");
    println!("every run respects 𝒢; see F7 for the matching forced floor (1+ϱ)D𝒯.");
}
