//! F2 — Theorem 5.10: the local skew of `A^opt` is bounded by
//! `κ(⌈log_σ(2𝒢/κ)⌉ + ½)`, i.e. it grows *logarithmically* with the
//! diameter while the global skew grows linearly.

use gcs_adversary::WavefrontDelay;
use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_aopt};
use gcs_core::Params;
use gcs_graph::{topology, NodeId};
use gcs_sim::rates;
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F2",
        "local skew ≤ κ(⌈log_σ(2𝒢/κ)⌉+½) (Thm 5.10): logarithmic in D",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let drift = DriftBounds::new(eps).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();

    let mut table = Table::new(vec![
        "D",
        "measured local",
        "local bound",
        "measured global",
        "global bound 𝒢",
    ]);
    for d in [8usize, 16, 32, 64, 128] {
        let graph = topology::path(d + 1);
        let n = graph.len();
        // Drift split + a mid-run wavefront flip: a strong local-skew
        // builder that A^opt must absorb smoothly.
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        let boundary = (d / 2) as u32;
        let flip = boundary as f64 * t_max / (2.0 * eps) + 20.0;
        let delay = WavefrontDelay::new(&graph, NodeId(0), t_max, flip, boundary);
        let outcome = run_aopt(graph, params, delay, schedules, flip + 20.0);
        let l_bound = params.local_skew_bound(d as u32);
        let g_bound = params.global_skew_bound(d as u32);
        assert!(
            outcome.local <= l_bound + 1e-9,
            "Thm 5.10 violated at D={d}"
        );
        table.row(vec![
            d.to_string(),
            f4(outcome.local),
            f4(l_bound),
            f4(outcome.global),
            f4(g_bound),
        ]);
    }
    println!("{table}");
    println!("the local bound column grows by ≈ κ per doubling of D (logarithmic),");
    println!("while 𝒢 doubles with D (linear) — the gradient property of the paper.");
}
