//! F2 — Theorem 5.10: the local skew of `A^opt` is bounded by
//! `κ(⌈log_σ(2𝒢/κ)⌉ + ½)`, i.e. it grows *logarithmically* with the
//! diameter while the global skew grows linearly.
//!
//! The diameter grid runs through the `gcs-sweep` orchestrator; the
//! `wavefront` delay spec extends each job's horizon past its flip time.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, workers};
use gcs_sweep::{run_sweep, SweepSpec};

fn main() {
    banner(
        "F2",
        "local skew ≤ κ(⌈log_σ(2𝒢/κ)⌉+½) (Thm 5.10): logarithmic in D",
    );

    // Drift split by distance (`distsplit`) + a mid-run wavefront flip: a
    // strong local-skew builder that A^opt must absorb smoothly.
    let spec = SweepSpec {
        topologies: ["path:9", "path:17", "path:33", "path:65", "path:129"]
            .map(String::from)
            .to_vec(),
        eps: vec![0.02],
        t: vec![0.25],
        delays: vec!["wavefront".into()],
        rates: vec!["distsplit".into()],
        seeds: 0..1,
        horizon: 0.0, // the wavefront's flip time + 20 dominates
        ..SweepSpec::default()
    };

    let jobs = spec.expand();
    let (outcomes, _) = run_sweep(&jobs, workers(), |_, _| {});

    let mut table = Table::new(vec![
        "D",
        "measured local",
        "local bound",
        "measured global",
        "global bound 𝒢",
    ]);
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        let r = outcome
            .completed()
            .unwrap_or_else(|| panic!("{} failed: {:?}", job.label(), outcome.failure()));
        assert!(
            r.local_skew <= r.local_bound + 1e-9,
            "Thm 5.10 violated at D={}",
            r.diameter
        );
        table.row(vec![
            r.diameter.to_string(),
            f4(r.local_skew),
            f4(r.local_bound),
            f4(r.global_skew),
            f4(r.global_bound),
        ]);
    }
    println!("{table}");
    println!("the local bound column grows by ≈ κ per doubling of D (logarithmic),");
    println!("while 𝒢 doubles with D (linear) — the gradient property of the paper.");
}
