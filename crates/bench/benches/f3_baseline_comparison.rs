//! F3 — the gradient property matters: under the wavefront adversary the
//! Srikanth–Toueg-style maximum-forwarding baseline suffers `Θ(D·𝒯)` local
//! skew while `A^opt` stays within its `O(𝒯 log D)` bound; the naive
//! midpoint strategy (paper Section 4.2's warning) sits in between.

use gcs_adversary::WavefrontDelay;
use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_protocol};
use gcs_core::{AOpt, MaxAlgorithm, MidpointAlgorithm, Params};
use gcs_graph::{topology, NodeId};
use gcs_time::RateSchedule;

fn main() {
    banner(
        "F3",
        "local skew under the wavefront adversary: A^opt vs max-forwarding vs midpoint",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let params = Params::recommended(eps, t_max).unwrap();

    let mut table = Table::new(vec![
        "D",
        "A^opt local",
        "A^opt bound",
        "max-algo local",
        "midpoint local",
        "max/A^opt",
    ]);
    for d in [8usize, 16, 32, 64] {
        let n = d + 1;
        let graph = topology::path(n);
        let boundary = (3 * d / 4) as u32;
        let flip = boundary as f64 * t_max / (2.0 * eps) + 20.0;
        let horizon = flip + 10.0;
        let mut schedules = vec![RateSchedule::constant(1.0 + eps).unwrap()];
        schedules.extend(vec![RateSchedule::constant(1.0 - eps).unwrap(); n - 1]);
        let delay = || WavefrontDelay::new(&graph, NodeId(0), t_max, flip, boundary);

        let aopt = run_protocol(
            graph.clone(),
            vec![AOpt::new(params); n],
            delay(),
            schedules.clone(),
            horizon,
        );
        let maxa = run_protocol(
            graph.clone(),
            vec![MaxAlgorithm::new(1.0); n],
            delay(),
            schedules.clone(),
            horizon,
        );
        let mid = run_protocol(
            graph.clone(),
            vec![MidpointAlgorithm::new(params.h0(), params.mu()); n],
            delay(),
            schedules.clone(),
            horizon,
        );
        let bound = params.local_skew_bound(d as u32);
        assert!(aopt.local <= bound + 1e-9);
        table.row(vec![
            d.to_string(),
            f4(aopt.local),
            f4(bound),
            f4(maxa.local),
            f4(mid.local),
            format!("{:.1}", maxa.local / aopt.local),
        ]);
    }
    println!("{table}");
    println!("max-forwarding's local skew grows linearly with D (the wavefront),");
    println!("A^opt's stays near its logarithmic bound — who wins flips as D grows.");
}
