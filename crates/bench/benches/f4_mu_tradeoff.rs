//! F4 — Eq. (6) / Corollary 7.8: the base of the local-skew logarithm is
//! `σ = ⌊μ(1−ε̂)/(7ε̂)⌋`. Raising `μ` (a faster fast mode) shrinks the bound
//! `κ(⌈log_σ(2𝒢/κ)⌉+½)` — but also raises `κ` (linearly in `μ` through
//! Eq. 4) and loosens the rate envelope `β = (1+ε̂)(1+μ)`: the paper's
//! trade-off between smooth clocks and small local skew.
//!
//! The σ axis runs through the `gcs-sweep` orchestrator: one job per σ.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, workers};
use gcs_core::Params;
use gcs_sweep::{run_sweep, SweepSpec};

fn main() {
    banner(
        "F4",
        "σ = Θ(μ/ε) trade-off: local skew bound and measured skew vs μ (Cor 7.8)",
    );
    let eps = 1e-3;
    let t_max = 0.25;
    let d = 64usize;
    println!("fixed D = {d}, ε̂ = {eps}, 𝒯̂ = {t_max}\n");

    let spec = SweepSpec {
        topologies: vec![format!("path:{}", d + 1)],
        eps: vec![eps],
        t: vec![t_max],
        sigmas: [2u32, 4, 8, 16, 64, 256].map(Some).to_vec(),
        delays: vec!["directional".into()],
        rates: vec!["distsplit".into()],
        seeds: 0..1,
        horizon: 120.0,
        ..SweepSpec::default()
    };

    let jobs = spec.expand();
    let (outcomes, _) = run_sweep(&jobs, workers(), |_, _| {});

    let mut table = Table::new(vec![
        "σ",
        "μ",
        "β",
        "κ",
        "levels",
        "local bound",
        "measured local",
    ]);
    for (job, outcome) in jobs.iter().zip(&outcomes) {
        let r = outcome
            .completed()
            .unwrap_or_else(|| panic!("{} failed: {:?}", job.label(), outcome.failure()));
        assert!(r.local_skew <= r.local_bound + 1e-9);
        let sigma = job.sigma.expect("the σ axis is explicit in this sweep");
        let params = Params::with_sigma(job.eps, job.t, sigma).unwrap();
        let levels = (2.0 * r.global_bound / params.kappa())
            .log(sigma as f64)
            .ceil();
        table.row(vec![
            sigma.to_string(),
            format!("{:.4}", params.mu()),
            format!("{:.3}", params.rate_envelope().1),
            format!("{:.4}", params.kappa()),
            format!("{levels:.0}"),
            f4(r.local_bound),
            f4(r.local_skew),
        ]);
    }
    println!("{table}");
    println!("larger σ ⇒ fewer levels (smaller logarithm) but a larger κ and β:");
    println!("the bound is minimized at a moderate σ — exactly the paper's");
    println!("\"μ ≈ 14ε suffices; larger μ helps only while μ ≪ 1\" discussion.");
}
