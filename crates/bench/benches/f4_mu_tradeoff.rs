//! F4 — Eq. (6) / Corollary 7.8: the base of the local-skew logarithm is
//! `σ = ⌊μ(1−ε̂)/(7ε̂)⌋`. Raising `μ` (a faster fast mode) shrinks the bound
//! `κ(⌈log_σ(2𝒢/κ)⌉+½)` — but also raises `κ` (linearly in `μ` through
//! Eq. 4) and loosens the rate envelope `β = (1+ε̂)(1+μ)`: the paper's
//! trade-off between smooth clocks and small local skew.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_aopt};
use gcs_core::Params;
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, DirectionalDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F4",
        "σ = Θ(μ/ε) trade-off: local skew bound and measured skew vs μ (Cor 7.8)",
    );
    let eps = 1e-3;
    let t_max = 0.25;
    let d = 64usize;
    let drift = DriftBounds::new(eps).unwrap();
    println!("fixed D = {d}, ε̂ = {eps}, 𝒯̂ = {t_max}\n");

    let mut table = Table::new(vec![
        "σ",
        "μ",
        "β",
        "κ",
        "levels",
        "local bound",
        "measured local",
    ]);
    for sigma in [2u32, 4, 8, 16, 64, 256] {
        let params = Params::with_sigma(eps, t_max, sigma).unwrap();
        let graph = topology::path(d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        let delay = DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max);
        let outcome = run_aopt(graph, params, delay, schedules, 120.0);
        let bound = params.local_skew_bound(d as u32);
        assert!(outcome.local <= bound + 1e-9);
        let levels = (2.0 * params.global_skew_bound(d as u32) / params.kappa())
            .log(params.sigma() as f64)
            .ceil();
        table.row(vec![
            sigma.to_string(),
            format!("{:.4}", params.mu()),
            format!("{:.3}", params.rate_envelope().1),
            format!("{:.4}", params.kappa()),
            format!("{levels:.0}"),
            f4(bound),
            f4(outcome.local),
        ]);
    }
    println!("{table}");
    println!("larger σ ⇒ fewer levels (smaller logarithm) but a larger κ and β:");
    println!("the bound is minimized at a moderate σ — exactly the paper's");
    println!("\"μ ≈ 14ε suffices; larger μ helps only while μ ≪ 1\" discussion.");
}
