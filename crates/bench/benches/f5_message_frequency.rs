//! F5 — Section 6.1: the amortized message frequency is `Θ(1/H₀)`, and
//! `H₀` buys message savings at the price of the `2ε/(1+ε)·H₀` term in `𝒢`
//! (and the `H̄₀ = (2ε+μ)H₀` term in `κ`): a tunable trade-off.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_aopt};
use gcs_core::Params;
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, DirectionalDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F5",
        "amortized message frequency Θ(1/H₀) and the H₀-vs-skew trade-off (§6.1)",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let d = 16usize;
    let drift = DriftBounds::new(eps).unwrap();
    let horizon = 150.0;
    println!("fixed path D = {d}, ε̂ = {eps}, 𝒯̂ = {t_max}, horizon = {horizon}\n");

    let mut table = Table::new(vec![
        "H₀/𝒯",
        "sends/node/𝒯 (measured)",
        "1/H₀·𝒯 (predicted)",
        "κ",
        "global bound 𝒢",
        "measured global",
        "measured local",
    ]);
    for h0_factor in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let h0 = h0_factor * t_max;
        let mu = 14.0 * eps / (1.0 - eps);
        let params = Params::with_h0_mu(eps, t_max, h0, mu).unwrap();
        let graph = topology::path(d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        let delay = DirectionalDelay::new(&graph, NodeId(0), 0.0, t_max);
        let outcome = run_aopt(graph, params, delay, schedules, horizon);
        let per_node_per_t = outcome.stats.send_events as f64 / n as f64 / horizon * t_max;
        assert!(outcome.global <= params.global_skew_bound(d as u32) + 1e-9);
        table.row(vec![
            format!("{h0_factor}"),
            f4(per_node_per_t),
            f4(t_max / h0),
            f4(params.kappa()),
            f4(params.global_skew_bound(d as u32)),
            f4(outcome.global),
            f4(outcome.local),
        ]);
    }
    println!("{table}");
    println!("measured frequency tracks 1/H₀ within a small constant (forwarding");
    println!("bursts add at most 2×); the skew bounds inflate linearly with H₀.");
}
