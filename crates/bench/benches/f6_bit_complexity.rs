//! F6 — Section 6.2: messages can be discretized to `O(log 1/μ̂)` bits (the
//! `dl` field) plus `O(1)` bits (the capped `dmax` field), at a skew penalty
//! absorbed by enlarging `κ` by two quanta.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_protocol};
use gcs_core::{AOpt, DiscreteAOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, ConstantDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "F6",
        "bit complexity O(log 1/μ̂) per message via quantized differential encoding (§6.2)",
    );
    let t_max = 0.25;
    let d = 16usize;
    println!("fixed path D = {d}, 𝒯̂ = {t_max}; sweep ε̂ (hence μ̂ = 14ε̂/(1−ε̂))\n");

    let mut table = Table::new(vec![
        "ε̂",
        "μ",
        "dl cap",
        "dmax cap",
        "bits/msg",
        "exact global",
        "quantized global",
        "penalty",
    ]);
    for eps in [0.05f64, 0.02, 0.01, 0.005, 0.002, 0.001] {
        let params = Params::recommended(eps, t_max).unwrap();
        let drift = DriftBounds::new(eps).unwrap();
        let graph = topology::path(d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        // FIFO-preserving delays (required by differential encoding).
        let exact = run_protocol(
            graph.clone(),
            vec![AOpt::new(params); n],
            ConstantDelay::new(t_max / 2.0),
            schedules.clone(),
            120.0,
        );
        let quantized = run_protocol(
            graph.clone(),
            vec![DiscreteAOpt::new(params); n],
            ConstantDelay::new(t_max / 2.0),
            schedules,
            120.0,
        );
        table.row(vec![
            format!("{eps}"),
            format!("{:.4}", params.mu()),
            DiscreteAOpt::dl_cap(&params).to_string(),
            DiscreteAOpt::dmax_cap(&params).to_string(),
            DiscreteAOpt::bits_per_message(&params).to_string(),
            f4(exact.global),
            f4(quantized.global),
            f4(quantized.global - exact.global),
        ]);
    }
    println!("{table}");
    println!("bits grow as log₂(1/μ̂) ≈ log₂(1/ε̂) − 3.8 (one extra bit per halving");
    println!("of ε̂), and the quantized variant tracks the exact one within ~κ.");
}
