//! F7 — Theorem 7.2: the indistinguishable executions `E₁`/`E₂`/`E₃` force
//! a global skew of `(1 + ϱ)·D·𝒯` on every envelope-respecting algorithm,
//! matching `A^opt`'s upper bound `𝒢` within a small constant.

use gcs_adversary::shift::GlobalLowerBound;
use gcs_analysis::Table;
use gcs_bench::{banner, f2, f4};
use gcs_core::{AOpt, Params};
use gcs_graph::topology;

fn main() {
    banner(
        "F7",
        "forced global skew (1+ϱ)D𝒯 via shifted executions (Thm 7.2) vs upper bound 𝒢",
    );
    let eps = 0.05;
    let t = 0.5;

    for (label, t_hat) in [("loose 𝒯̂ = 2𝒯 (ϱ≈ε)", 1.0), ("tight 𝒯̂ = 𝒯 (ϱ=−ε)", 0.5)]
    {
        println!("--- {label} ---");
        let params = Params::recommended(eps, t_hat).unwrap();
        let mut table = Table::new(vec![
            "D",
            "predicted floor",
            "forced (E₃)",
            "upper bound 𝒢",
            "𝒢/forced",
            "indist.",
        ]);
        for d in [4usize, 8, 16, 32] {
            let lb = GlobalLowerBound::new(topology::path(d + 1), eps, eps, t, t_hat, 0.01);
            let (reports, ok) = lb.verify_indistinguishable(|| vec![AOpt::new(params); d + 1]);
            let forced = reports[2].endpoint_skew;
            assert!(
                forced >= 0.85 * lb.predicted_skew(),
                "floor missed at D={d}"
            );
            assert!(ok, "executions distinguishable at D={d}");
            let g = params.global_skew_bound(d as u32);
            table.row(vec![
                d.to_string(),
                f4(lb.predicted_skew()),
                f4(forced),
                f4(g),
                f2(g / forced),
                ok.to_string(),
            ]);
        }
        println!("{table}");
    }
    println!("the floor and 𝒢 stay within a small constant factor of each other,");
    println!("and the gap shrinks as estimates tighten — Thm 7.2 + Cor 7.3's");
    println!("\"A^opt is essentially optimal for the global skew\".");
}
