//! F8 — Theorems 7.7 / 7.12: the iterative construction forces a local skew
//! of `(1 + ⌊log_b D⌋)/2 · α𝒯` between some pair of neighbours — even on
//! algorithms with unbounded clock rates (the jump variant). Together with
//! F2's upper bound this brackets the achievable local skew.

use gcs_adversary::framed::LocalLowerBound;
use gcs_analysis::Table;
use gcs_bench::{banner, f4};
use gcs_core::{AOpt, AOptJump, NoSync, Params};

fn main() {
    banner(
        "F8",
        "forced local skew (1+⌊log_b D⌋)/2·α𝒯 via the iterative construction (Thm 7.7/7.12)",
    );
    let t_max = 1.0;

    // Part 1: against NoSync (α = 1−ε, β = 1+ε ⇒ small required b), the
    // guarantee holds stage by stage and grows with log D.
    println!("--- vs NoSync (b meets Thm 7.7's threshold: guarantee applies) ---");
    let eps = 0.2;
    let alpha = 1.0 - eps;
    let b = LocalLowerBound::required_branching(alpha, 1.0 + eps, eps);
    let mut table = Table::new(vec![
        "stages S",
        "D' = b^S",
        "guaranteed (S+1)/2·α𝒯",
        "forced neighbour skew",
    ]);
    for stages in [1usize, 2, 3] {
        let lb = LocalLowerBound::new(b, stages, eps, t_max, alpha);
        let reports = lb.run(|n| vec![NoSync; n]);
        let last = reports.last().unwrap();
        assert_eq!(last.distance, 1);
        assert!(last.skew >= lb.guaranteed_final_skew() - 1e-9);
        table.row(vec![
            stages.to_string(),
            lb.d_prime().to_string(),
            f4(lb.guaranteed_final_skew()),
            f4(last.skew),
        ]);
    }
    println!("{table}");

    // Part 2: against A^opt and its jump variant — the same construction
    // still forces Ω(𝒯) neighbour skew (Thm 7.12's point: unbounded rates
    // do not help asymptotically), and A^opt's bound is never violated.
    println!("--- vs A^opt and the β = ∞ jump variant (b = 3, S = 3) ---");
    let eps = 0.1;
    let params = Params::recommended(eps, t_max).unwrap();
    let lb = LocalLowerBound::new(3, 3, eps, t_max, 1.0 - eps);
    let d = lb.d_prime() as u32;
    let mut table = Table::new(vec![
        "algorithm",
        "forced neighbour skew",
        "A^opt local bound (D=27)",
    ]);
    for (name, reports) in [
        ("A^opt", lb.run(|n| vec![AOpt::new(params); n])),
        ("A^opt (jumps)", lb.run(|n| vec![AOptJump::new(params); n])),
        ("NoSync", lb.run(|n| vec![NoSync; n])),
    ] {
        let last = reports.last().unwrap();
        assert!(last.skew > 0.1 * t_max);
        table.row(vec![
            name.to_string(),
            f4(last.skew),
            f4(params.local_skew_bound(d)),
        ]);
    }
    println!("{table}");
    println!("jumping buys nothing (Thm 7.12); A^opt keeps the forced skew below");
    println!("its logarithmic guarantee while the unprotected baseline cannot.");
}
