//! F9 — Section 8.5: external synchronization. With a real-time reference,
//! the adapted algorithm keeps every logical clock at or below real time,
//! and the worst lag of a node grows linearly with its distance from the
//! reference (the modified envelope `t − d(v,v₀)𝒯 − τ ≤ L_v(t) ≤ t`).

use gcs_analysis::Table;
use gcs_bench::banner;
use gcs_core::{ExternalAOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Engine, UniformDelay};
use gcs_time::{DriftBounds, RateSchedule};

fn main() {
    banner(
        "F9",
        "external synchronization: L_v ≤ t always; lag linear in d(v, v₀) (§8.5)",
    );
    let eps = 5e-3;
    let t_max = 0.02;
    let params = Params::recommended(eps, t_max).unwrap();
    let drift = DriftBounds::new(eps).unwrap();
    let horizon = 240.0;

    let graph = topology::path(13);
    let n = graph.len();
    let mut schedules = vec![RateSchedule::constant(1.0).unwrap()];
    schedules.extend(rates::random_walk(n - 1, drift, 5.0, horizon, 77));
    let mut nodes = vec![ExternalAOpt::reference(params)];
    nodes.extend(vec![ExternalAOpt::new(params); n - 1]);
    let mut engine = Engine::builder(graph.clone())
        .protocols(nodes)
        .delay_model(UniformDelay::new(t_max, 5))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);

    let mut worst_ahead = f64::MIN;
    let mut worst_lag = vec![0.0f64; n];
    // Exclude the start-up transient (nodes begin at L = 0 at t = 0 and
    // need ~1/ε-scaled time to catch up to the reference).
    let warmup = horizon / 2.0;
    engine.run_until(warmup);
    engine.run_until_observed(horizon, |e| {
        for (v, lag) in worst_lag.iter_mut().enumerate() {
            let l = e.logical_value(NodeId(v));
            worst_ahead = worst_ahead.max(l - e.now());
            *lag = lag.max(e.now() - l);
        }
    });
    assert!(worst_ahead <= 1e-9, "a clock overtook real time");

    let mut table = Table::new(vec!["d(v, v₀)", "worst lag (steady state)", "lag / d"]);
    for (v, &lag) in worst_lag.iter().enumerate() {
        table.row(vec![
            v.to_string(),
            format!("{:.5}", lag),
            if v == 0 {
                "-".to_string()
            } else {
                format!("{:.5}", lag / v as f64)
            },
        ]);
    }
    println!("{table}");
    println!(
        "worst 'ahead of real time': {:.2e} (never positive)",
        worst_ahead.max(0.0)
    );
    println!("the lag column grows ≈ linearly in the distance, as the modified");
    println!("envelope of §8.5 predicts (a node d hops away cannot know real time");
    println!("more accurately than d·𝒯).");
}
