//! Criterion micro-benchmarks of the substrate: event-engine throughput,
//! the `setClockRate` decision rule, and graph BFS.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gcs_core::{rate_rule, AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{ConstantDelay, Engine, UniformDelay};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.bench_function("a_opt_path32_100s", |b| {
        let params = Params::recommended(0.02, 0.25).unwrap();
        b.iter_batched(
            || {
                let graph = topology::path(32);
                let mut engine = Engine::builder(graph)
                    .protocols(vec![AOpt::new(params); 32])
                    .delay_model(UniformDelay::new(0.25, 3))
                    .build();
                engine.wake_all_at(0.0);
                engine
            },
            |mut engine| {
                engine.run_until(100.0);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("snapshot_clone_path64", |b| {
        let params = Params::recommended(0.02, 0.25).unwrap();
        let graph = topology::path(64);
        let mut engine = Engine::builder(graph)
            .protocols(vec![AOpt::new(params); 64])
            .delay_model(ConstantDelay::new(0.1))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(50.0);
        b.iter(|| std::hint::black_box(engine.clone()).now());
    });
    group.finish();
}

fn rate_rule_cost(c: &mut Criterion) {
    c.bench_function("set_clock_rate_rule", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x += 0.01;
            let lu = 3.7 + (x % 5.0);
            let ld = 1.1 + (x % 3.0);
            std::hint::black_box(rate_rule::clamped_increase(lu, ld, 4.0, 10.0))
        });
    });
}

fn graph_bfs(c: &mut Criterion) {
    c.bench_function("bfs_grid_32x32", |b| {
        let g = topology::grid(32, 32);
        b.iter(|| std::hint::black_box(g.distances_from(NodeId(0))));
    });
}

fn ticked_overhead(c: &mut Criterion) {
    // How much the §8.4 tick adapter costs relative to the bare protocol
    // (extra timer churn + buffering).
    c.bench_function("ticked_a_opt_path16_100s", |b| {
        let params = Params::recommended(0.02, 0.25).unwrap();
        b.iter_batched(
            || {
                let graph = topology::path(16);
                let mut engine = Engine::builder(graph)
                    .protocols(vec![gcs_sim::Ticked::new(AOpt::new(params), 0.05); 16])
                    .delay_model(UniformDelay::new(0.25, 3))
                    .build();
                engine.wake_all_at(0.0);
                engine
            },
            |mut engine| {
                engine.run_until(100.0);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });
}

fn legal_state_audit(c: &mut Criterion) {
    use gcs_analysis::LegalStateChecker;
    c.bench_function("legal_state_check_path32", |b| {
        let params = Params::recommended(0.02, 0.25).unwrap();
        let graph = topology::path(32);
        let mut engine = Engine::builder(graph.clone())
            .protocols(vec![AOpt::new(params); 32])
            .delay_model(ConstantDelay::new(0.1))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(50.0);
        let mut checker = LegalStateChecker::new(&graph, params);
        b.iter(|| std::hint::black_box(checker.observe(&engine)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_throughput, rate_rule_cost, graph_bfs, ticked_overhead, legal_state_audit
}
criterion_main!(benches);
