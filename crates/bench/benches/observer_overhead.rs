//! Criterion micro-benchmark: cost of the observability layer.
//!
//! The engine is generic over its [`gcs_sim::EventSink`], and the default
//! [`gcs_sim::NullSink`] reports `enabled() == false`, so every emission
//! site monomorphizes to a no-op. This benchmark pins that promise down:
//! the same `A^opt` run with the default sink, an explicit `NullSink`, a
//! counting metrics sink, and a full JSONL encoder — the first two must be
//! indistinguishable (≤ ~1% apart), and the figure for the heavier sinks
//! tells you what `--events`/`--metrics` actually costs.

use criterion::{BatchSize, Criterion};
use gcs_analysis::{JsonlWriter, MetricsSink};
use gcs_bench::BenchReport;
use gcs_core::{AOpt, Params};
use gcs_graph::topology;
use gcs_sim::{Engine, EventSink, NullSink, UniformDelay};

const N: usize = 32;
const HORIZON: f64 = 100.0;

fn make_engine<S: EventSink>(sink: S) -> Engine<AOpt, UniformDelay, S> {
    let params = Params::recommended(0.02, 0.25).unwrap();
    let graph = topology::path(N);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); N])
        .delay_model(UniformDelay::new(0.25, 3))
        .event_sink(sink)
        .build();
    engine.wake_all_at(0.0);
    engine
}

fn observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer_overhead");

    // Baseline: the default engine type, no `.event_sink(..)` call at all.
    group.bench_function("baseline_default", |b| {
        let params = Params::recommended(0.02, 0.25).unwrap();
        b.iter_batched(
            || {
                let graph = topology::path(N);
                let mut engine = Engine::builder(graph)
                    .protocols(vec![AOpt::new(params); N])
                    .delay_model(UniformDelay::new(0.25, 3))
                    .build();
                engine.wake_all_at(0.0);
                engine
            },
            |mut engine| {
                engine.run_until(HORIZON);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });

    // Explicit NullSink through the generic path — must match the baseline.
    group.bench_function("null_sink", |b| {
        b.iter_batched(
            || make_engine(NullSink),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });

    // Counting sink: counters + histograms on every event and snapshot.
    group.bench_function("metrics_sink", |b| {
        b.iter_batched(
            || make_engine(MetricsSink::new()),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });

    // Full JSONL encoding into an in-memory buffer (no disk I/O).
    group.bench_function("jsonl_writer", |b| {
        b.iter_batched(
            || make_engine(JsonlWriter::new(Vec::with_capacity(1 << 20))),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.into_sink().finish().map(|v| v.len()).unwrap()
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

// A hand-written main instead of `criterion_main!`: after the group runs,
// drain the measurements and export them as BENCH_observer_overhead.json
// so the observability layer's cost is tracked commit over commit.
fn main() {
    let mut criterion = Criterion::default();
    observer_overhead(&mut criterion);

    let results = criterion.take_results();
    let mut report = BenchReport::new("observer_overhead");
    report
        .config("topology", format!("path:{N}"))
        .config("horizon", HORIZON)
        .config("eps", 0.02)
        .config("t", 0.25);
    let mut baseline = None;
    for r in &results {
        report.metric(
            &format!(
                "median_seconds/{}",
                r.id.rsplit('/').next().unwrap_or(&r.id)
            ),
            r.median.as_secs_f64(),
        );
        if r.id.ends_with("baseline_default") {
            baseline = Some(r.median.as_secs_f64());
        }
    }
    if let Some(baseline) = baseline.filter(|b| *b > 0.0) {
        for r in &results {
            if !r.id.ends_with("baseline_default") {
                report.metric(
                    &format!(
                        "overhead_ratio/{}",
                        r.id.rsplit('/').next().unwrap_or(&r.id)
                    ),
                    r.median.as_secs_f64() / baseline,
                );
            }
        }
    }
    match report.write() {
        Ok(path) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("warning: could not write bench results: {e}"),
    }
}
