//! Criterion micro-benchmark: cost of the observability layer.
//!
//! The engine is generic over its [`gcs_sim::EventSink`], and the default
//! [`gcs_sim::NullSink`] reports `enabled() == false`, so every emission
//! site monomorphizes to a no-op. This benchmark pins that promise down:
//! the same `A^opt` run with the default sink, an explicit `NullSink`, the
//! always-armed flight recorder, a counting metrics sink, and a full JSONL
//! encoder — the first two must be indistinguishable (≤ ~1% apart), the
//! recorder must stay within the always-on budget (`overhead_ratio ≤ 1.10`,
//! CI-gated), and the figures for the heavier sinks tell you what
//! `--events`/`--metrics` actually costs.
//!
//! A second row at n = 4096 checks that the recorder's cost stays flat as
//! the node count (and hence the partition spread) grows.

use criterion::{BatchSize, Criterion};
use gcs_adversary::WavefrontDelay;
use gcs_analysis::{JsonlWriter, MetricsSink};
use gcs_bench::BenchReport;
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{Engine, EventSink, NullSink, RecorderSink, UniformDelay};
use gcs_sweep::build_rates;

const N: usize = 32;
const HORIZON: f64 = 100.0;
/// The large-n row: same per-node workload shape, 128× the nodes, with the
/// horizon cut so one iteration stays in the same time budget.
const N_LARGE: usize = 4096;
const HORIZON_LARGE: f64 = 2.0;

fn make_engine<S: EventSink>(n: usize, sink: S) -> Engine<AOpt, UniformDelay, S> {
    let params = Params::recommended(0.02, 0.25).unwrap();
    let graph = topology::path(n);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(0.25, 3))
        .event_sink(sink)
        .build();
    engine.wake_all_at(0.0);
    engine
}

fn make_default_engine(n: usize) -> Engine<AOpt, UniformDelay> {
    let params = Params::recommended(0.02, 0.25).unwrap();
    let graph = topology::path(n);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(0.25, 3))
        .build();
    engine.wake_all_at(0.0);
    engine
}

fn observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer_overhead");

    // Baseline: the default engine type, no `.event_sink(..)` call at all.
    group.bench_function("baseline_default", |b| {
        b.iter_batched(
            || make_default_engine(N),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });

    // Explicit NullSink through the generic path — must match the baseline.
    group.bench_function("null_sink", |b| {
        b.iter_batched(
            || make_engine(N, NullSink),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });

    // The always-armed flight recorder: fixed-width binary frames into a
    // bounded ring. This is what every `gcs run` now pays by default.
    group.bench_function("recorder_sink", |b| {
        b.iter_batched(
            || make_engine(N, RecorderSink::new()),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.into_sink().recorded()
            },
            BatchSize::SmallInput,
        );
    });

    // Counting sink: counters + histograms on every event and snapshot.
    group.bench_function("metrics_sink", |b| {
        b.iter_batched(
            || make_engine(N, MetricsSink::new()),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });

    // Full JSONL encoding into an in-memory buffer (no disk I/O).
    group.bench_function("jsonl_writer", |b| {
        b.iter_batched(
            || make_engine(N, JsonlWriter::new(Vec::with_capacity(1 << 20))),
            |mut engine| {
                engine.run_until(HORIZON);
                engine.into_sink().finish().map(|v| v.len()).unwrap()
            },
            BatchSize::SmallInput,
        );
    });

    // Large-n rows: the recorder's per-event cost must not degrade when
    // events spread over many nodes (partition indexing, cache behavior).
    group.bench_function("baseline_default_n4096", |b| {
        b.iter_batched(
            || make_default_engine(N_LARGE),
            |mut engine| {
                engine.run_until(HORIZON_LARGE);
                engine.message_stats().deliveries
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("recorder_sink_n4096", |b| {
        b.iter_batched(
            || make_engine(N_LARGE, RecorderSink::new()),
            |mut engine| {
                engine.run_until(HORIZON_LARGE);
                engine.into_sink().recorded()
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

/// Passes over the whole group. Shared machines drift on a seconds scale
/// — slow enough that every sample of one bench can land in the same load
/// spike — so the group is repeated and each bench keeps its best epoch.
const EPOCHS: usize = 3;

/// The engine_hotpath / zero_alloc steady-state fixture: `A^opt` on a
/// path under the F2 wavefront adversary with distance-split drift,
/// warmed past the wavefront flip. This is the workload whose events/sec
/// the repo tracks commit over commit — the denominator an "always-on
/// recorder" claim has to be measured against.
fn wavefront_engine<S: EventSink>(n: usize, sink: S) -> Engine<AOpt, WavefrontDelay, S> {
    let (eps, t_max, flip) = (0.02, 0.25, 30.0);
    let warmup_horizon = 40.0;
    let graph = topology::path(n);
    let boundary = (graph.diameter() / 2).max(1);
    let delay = WavefrontDelay::new(&graph, NodeId(0), t_max, flip, boundary);
    let drift = gcs_time::DriftBounds::new(eps).unwrap();
    let schedules = build_rates("distsplit", &graph, drift, warmup_horizon, 0).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(sink)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(warmup_horizon);
    engine
}

/// Times `window` engine steps; the inner loop of the paired measurement.
fn run_window<S: EventSink>(engine: &mut Engine<AOpt, WavefrontDelay, S>, window: u64) -> f64 {
    let started = std::time::Instant::now();
    for _ in 0..window {
        engine
            .step()
            .expect("the wavefront fixture never drains its queue");
    }
    started.elapsed().as_secs_f64()
}

/// The CI-gated recorder overhead: steady-state windows of `window` engine
/// steps on the canonical wavefront fixture, timed in interleaved pairs —
/// a baseline window and a recorder window back to back, giving one
/// `(base, recorder)` time pair per rep. The reported figure is the
/// median ratio of the fastest quarter of pairs by combined wall time.
///
/// The pairing makes this measurement hold still on a noisy shared
/// machine where independently-timed whole-run ratios swing past any
/// threshold: paired windows are adjacent in time, so load drift hits
/// both sides alike, and the within-pair order alternates, so residual
/// drift across a pair biases half the pairs each way. Both engines run
/// the same deterministic execution (each rep advances both by exactly
/// `window` steps), so every pair compares identical work — many short
/// pairs beat few long ones because each pair is a fresh chance to
/// dodge a load spike.
///
/// Selecting pairs by combined time — not by the shape of the ratio
/// distribution — is what makes the estimate robust when background
/// load is *sustained* rather than transient. A co-scheduled neighbor
/// inflates the absolute time of whichever window it lands in, so clean
/// pairs are exactly the fast pairs, and that signal is independent of
/// the ratio being estimated. Ratio-only estimators (median, quantiles,
/// half-sample mode — all tried) fail here: under ~50% background load
/// the contaminated pairs become the majority and can even form the
/// densest cluster, dragging any such statistic around by several
/// percent per run. The fastest-quarter median is the paired analog of
/// the min-sample rule used for the unpaired rows above, and agrees
/// with the plain median to well under 1% on a quiet machine.
fn recorder_steady_ratio(n: usize, window: u64, reps: usize) -> f64 {
    let mut base = wavefront_engine(n, NullSink);
    let mut recorder = wavefront_engine(n, RecorderSink::new());
    let mut pairs: Vec<(f64, f64)> = (0..reps)
        .map(|i| {
            if i % 2 == 0 {
                let b = run_window(&mut base, window);
                (b, run_window(&mut recorder, window))
            } else {
                let r = run_window(&mut recorder, window);
                (run_window(&mut base, window), r)
            }
        })
        .collect();
    criterion::black_box(recorder.sink().recorded());
    pairs.sort_unstable_by(|p, q| (p.0 + p.1).total_cmp(&(q.0 + q.1)));
    let kept = (pairs.len() / 4).max(1);
    let mut ratios: Vec<f64> = pairs[..kept].iter().map(|(b, r)| r / b).collect();
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let fastest_quarter = ratios[ratios.len() / 2];
    // Stderr diagnostic for when the CI gate fires: if the all-pairs
    // median reads well above the fastest-quarter figure, the machine
    // was loaded; if they agree and both are high, the recorder really
    // regressed.
    let mut all: Vec<f64> = pairs.iter().map(|(b, r)| r / b).collect();
    all.sort_unstable_by(|a, b| a.total_cmp(b));
    eprintln!(
        "recorder steady-state pairs (n = {n}): fastest-quarter median = {fastest_quarter:.4}, \
         all-pairs median = {:.4}",
        all[all.len() / 2],
    );
    fastest_quarter
}

// A hand-written main instead of `criterion_main!`: after the group runs,
// drain the measurements and export them as BENCH_observer_overhead.json
// so the observability layer's cost is tracked commit over commit.
fn main() {
    let mut criterion = Criterion::default();
    for _ in 0..EPOCHS {
        observer_overhead(&mut criterion);
    }

    // Fold the epochs: per bench id, keep the fastest median and the
    // fastest single sample seen in any epoch.
    let mut results: Vec<criterion::BenchResult> = Vec::new();
    for r in criterion.take_results() {
        match results.iter_mut().find(|k| k.id == r.id) {
            Some(kept) => {
                kept.median = kept.median.min(r.median);
                kept.min = kept.min.min(r.min);
            }
            None => results.push(r),
        }
    }
    let mut report = BenchReport::new("observer_overhead");
    report
        .config("topology", format!("path:{N}"))
        .config("horizon", HORIZON)
        .config("topology_large", format!("path:{N_LARGE}"))
        .config("horizon_large", HORIZON_LARGE)
        .config("eps", 0.02)
        .config("t", 0.25);
    let name = |id: &str| id.rsplit('/').next().unwrap_or(id).to_string();
    let mut baseline = None;
    let mut baseline_large = None;
    for r in &results {
        report.metric(
            &format!("median_seconds/{}", name(&r.id)),
            r.median.as_secs_f64(),
        );
        match name(&r.id).as_str() {
            "baseline_default" => baseline = Some(r.min.as_secs_f64()),
            "baseline_default_n4096" => baseline_large = Some(r.min.as_secs_f64()),
            _ => {}
        }
    }
    for r in &results {
        let n = name(&r.id);
        // Each row is compared against the baseline of its own size class.
        // Ratios come from per-bench *minimum* samples, not medians: on a
        // shared machine transient load inflates both numerator and
        // denominator unpredictably, while the fastest sample of each side
        // is the run the noise missed. The recorder rows are gated in CI,
        // so they get a stronger interleaved measurement below instead.
        let base = if n.ends_with("_n4096") {
            baseline_large
        } else {
            baseline
        };
        if n.starts_with("baseline_default") || n.starts_with("recorder_sink") {
            continue;
        }
        if let Some(base) = base.filter(|b| *b > 0.0) {
            report.metric(&format!("overhead_ratio/{n}"), r.min.as_secs_f64() / base);
        }
    }
    // Like the criterion rows, the gated measurement keeps its best of
    // EPOCHS repetitions: within a repetition the fastest-quarter median
    // suppresses transient spikes, and across repetitions the minimum
    // dodges background load sustained for the whole repetition —
    // contamination only ever inflates the estimate, so the smallest
    // repetition is the most accurate one.
    let best_of = |n: usize, window: u64, reps: usize| {
        (0..EPOCHS)
            .map(|_| recorder_steady_ratio(n, window, reps))
            .fold(f64::INFINITY, f64::min)
    };
    report.metric("overhead_ratio/recorder_sink", best_of(64, 5_000, 301));
    report.metric(
        "overhead_ratio/recorder_sink_n4096",
        best_of(N_LARGE, 5_000, 75),
    );
    match report.write() {
        Ok(path) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("warning: could not write bench results: {e}"),
    }
}
