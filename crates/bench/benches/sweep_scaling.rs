//! BENCH — `gcs-sweep` orchestrator scaling: wall-clock speedup of a
//! 256-job sweep at 1/2/4/8 workers, plus the determinism contract that
//! aggregated CSV/JSONL output is byte-identical at every worker count.
//!
//! Jobs are independent simulations, so the expected speedup is
//! `min(workers, cores)` up to queue/emit overhead. The ≥3× assertion at
//! 8 workers only fires on hosts that actually have ≥8 cores — on smaller
//! hosts the bench still verifies determinism and reports the measured
//! scaling.

use std::time::{Duration, Instant};

use gcs_analysis::Table;
use gcs_bench::{banner, f2, BenchReport};
use gcs_sweep::{report, run_sweep, SweepSpec};

/// Runs the sweep at the given worker count, returning the concatenated
/// CSV+JSONL output and the wall-clock time of the orchestrated portion.
fn run_at(spec: &SweepSpec, workers: usize) -> (String, Duration, usize) {
    let jobs = spec.expand();
    let mut out = String::from(report::CSV_HEADER);
    out.push('\n');
    let started = Instant::now();
    let (_, aggregate) = run_sweep(&jobs, workers, |job, outcome| {
        out.push_str(&report::csv_row(job, outcome));
        out.push('\n');
        out.push_str(&report::jsonl_row(job, outcome));
        out.push('\n');
    });
    let elapsed = started.elapsed();
    out.push_str(&report::jsonl_summary(&aggregate));
    out.push('\n');
    assert_eq!(aggregate.failed, 0, "scaling sweep jobs must all complete");
    (out, elapsed, jobs.len())
}

fn main() {
    banner(
        "SWEEP-SCALING",
        "256-job sweep wall clock at 1/2/4/8 workers; byte-identical output",
    );
    let spec = SweepSpec {
        topologies: ["path:8", "ring:8", "grid:4x4", "tree:15"]
            .map(String::from)
            .to_vec(),
        eps: vec![0.01, 0.02],
        t: vec![0.1],
        delays: vec!["uniform".into()],
        rates: vec!["walk".into()],
        seeds: 0..32,
        horizon: 60.0,
        ..SweepSpec::default()
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {cores} core(s)\n");

    // Warm-up pass so first-touch effects don't bias the 1-worker baseline.
    let (reference, _, count) = run_at(&spec, 1);
    assert_eq!(count, 256, "the scaling sweep must expand to 256 jobs");

    let mut results = BenchReport::new("sweep_scaling");
    results
        .config("jobs", count)
        .config("topologies", spec.topologies.join(","))
        .config("eps", "0.01,0.02")
        .config("seeds", "0..32")
        .config("horizon", spec.horizon)
        .config("host_cores", cores);

    let mut table = Table::new(vec!["workers", "wall clock", "speedup", "output"]);
    let mut baseline = Duration::ZERO;
    let mut speedup_at_8 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let (out, elapsed, _) = run_at(&spec, workers);
        let identical = out == reference;
        assert!(
            identical,
            "sweep output at {workers} workers diverged from the 1-worker output"
        );
        if workers == 1 {
            baseline = elapsed;
        }
        let speedup = baseline.as_secs_f64() / elapsed.as_secs_f64();
        if workers == 8 {
            speedup_at_8 = speedup;
        }
        results.metric(
            &format!("wall_seconds/workers={workers}"),
            elapsed.as_secs_f64(),
        );
        results.metric(&format!("speedup/workers={workers}"), speedup);
        table.row(vec![
            workers.to_string(),
            format!("{elapsed:.2?}"),
            format!("{}x", f2(speedup)),
            if identical { "identical" } else { "DIVERGED" }.to_string(),
        ]);
    }
    println!("{table}");

    match results.write() {
        Ok(path) => println!("machine-readable results written to {path}"),
        Err(e) => eprintln!("warning: could not write bench results: {e}"),
    }

    if cores >= 8 {
        assert!(
            speedup_at_8 >= 3.0,
            "expected ≥3x speedup at 8 workers on a {cores}-core host, got {speedup_at_8:.2}x"
        );
        println!(
            "8-worker speedup {}x ≥ 3x on {cores} cores ✓",
            f2(speedup_at_8)
        );
    } else {
        println!(
            "host has only {cores} core(s): speedup ceiling is min(workers, cores); \
             the ≥3x-at-8-workers check needs ≥8 cores and was skipped"
        );
    }
    println!("aggregated CSV+JSONL byte-identical across 1/2/4/8 workers ✓");
}
