//! T1 — the Section 6 complexity table: amortized message frequency
//! (§6.1), bits per message (§6.2), and per-node state (§6.3), for several
//! parameter points on a fixed workload.

use gcs_analysis::{ComplexityReport, Table};
use gcs_bench::banner;
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Engine, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "T1",
        "complexity accounting (§6): messages / bits / state per parameter point",
    );
    let t_max = 0.25;
    let d = 16usize;
    let horizon = 200.0;
    println!("workload: path D = {d}, uniform random delays, drift walks, horizon {horizon}\n");

    let mut table = Table::new(vec![
        "ε̂",
        "σ",
        "H₀",
        "sends/node/𝒯 (meas)",
        "sends/node/𝒯 (= 𝒯/H₀)",
        "bits/msg",
        "state bits/node",
    ]);
    for (eps, sigma) in [(0.02, 2u32), (0.02, 8), (0.005, 2), (0.005, 8), (0.001, 2)] {
        let params = Params::with_sigma(eps, t_max, sigma).unwrap();
        let drift = DriftBounds::new(eps).unwrap();
        let graph = topology::path(d + 1);
        let n = graph.len();
        let schedules = rates::random_walk(n, drift, 5.0, horizon, 9);
        let mut engine = Engine::builder(graph.clone())
            .protocols(vec![AOpt::new(params); n])
            .delay_model(UniformDelay::new(t_max, 4))
            .rate_schedules(schedules)
            .build();
        engine.wake(NodeId(0), 0.0);
        engine.run_until(horizon);
        let report = ComplexityReport::from_stats(
            engine.message_stats(),
            &params,
            n,
            graph.max_degree(),
            d as u32,
            horizon,
        );
        table.row(vec![
            format!("{eps}"),
            sigma.to_string(),
            format!("{:.3}", params.h0()),
            format!("{:.4}", report.sends_per_node_per_t),
            format!("{:.4}", t_max / params.h0()),
            report.bits_per_message.to_string(),
            report.state_bits_per_node.to_string(),
        ]);
    }
    println!("{table}");
    println!("frequency tracks Θ(1/H₀) = Θ(ε̂·σ/𝒯̂); bits grow with log(1/μ̂);");
    println!("state stays a few dozen bits per node — §6's economy claims.");
}
