//! T2 — the paper's Section 9 headline: with realistic drifts
//! (`ε ≈ 10⁻⁵`) and real network diameters (20–30), `D ≪ (1/ε)^c`, so the
//! local skew bound collapses to a *handful of 𝒯* — worst-case neighbour
//! synchronization at essentially the delay uncertainty.

use gcs_analysis::Table;
use gcs_bench::{banner, f2, run_aopt};
use gcs_core::Params;
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "T2",
        "realistic networks (§9): quartz drifts, D ≤ 30 ⇒ local skew = O(𝒯)",
    );
    // Quartz-grade drift and a 1 ms delay uncertainty. (The simulation runs
    // a shorter horizon than a real deployment, but the *bounds* — the
    // paper's claim — are exact formulas.)
    let t_max = 1e-3;

    let mut table = Table::new(vec![
        "ε̂",
        "D",
        "local bound / 𝒯 (μ=14ε̂)",
        "local bound / 𝒯 (μ≈½)",
        "global bound / 𝒯",
        "measured local / 𝒯",
    ]);
    for (eps, d) in [
        (1e-5f64, 8usize),
        (1e-5, 30),
        (1e-4, 30),
        (1e-3, 30),
        (1e-5, 300),
    ] {
        let params = Params::recommended(eps, t_max).unwrap();
        // The μ ∈ Θ(1) regime of §9: logarithm base Θ(1/ε̂), so realistic
        // diameters need a single level.
        let sigma_half = ((0.5 * (1.0 - eps)) / (7.0 * eps)).floor() as u32;
        let params_half = Params::with_sigma(eps, t_max, sigma_half.max(2)).unwrap();
        let drift = DriftBounds::new(eps).unwrap();
        // Measure on a modest prefix of the topology for the big-D rows.
        let sim_d = d.min(30);
        let graph = topology::path(sim_d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (sim_d / 2) as u32);
        let outcome = run_aopt(graph, params, UniformDelay::new(t_max, 11), schedules, 60.0);
        table.row(vec![
            format!("{eps:.0e}"),
            d.to_string(),
            f2(params.local_skew_bound(d as u32) / t_max),
            f2(params_half.local_skew_bound(d as u32) / t_max),
            f2(params.global_skew_bound(d as u32) / t_max),
            format!("{:.3}", outcome.local / t_max),
        ]);
    }
    println!("{table}");
    println!("with ε = 10⁻⁵ the logarithm base 1/ε dwarfs any realistic diameter:");
    println!("one level suffices and neighbours stay within a few 𝒯 — the paper's");
    println!("\"clock skew between neighboring nodes can be bounded by O(𝒯) in most");
    println!("real-world systems\".");
}
