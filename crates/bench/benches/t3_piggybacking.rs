//! T3 — piggybacking (Section 1's motivation for the tiny messages of §6.2):
//! once application traffic is denser than `1/H₀`, the synchronization
//! protocol needs almost no messages of its own — its few bits ride along
//! for free — while the skew guarantees are unchanged.

use gcs_analysis::{SkewObserver, Table};
use gcs_bench::banner;
use gcs_core::{Params, PiggybackAOpt};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Engine, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "T3",
        "piggybacking on application traffic: dedicated sync messages vs app rate",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let d = 12usize;
    let drift = DriftBounds::new(eps).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();
    let horizon = 200.0;
    println!(
        "path D = {d}; H₀ = {:.3} (sync needs ≈ {:.2} msgs/node/s on its own)\n",
        params.h0(),
        1.0 / params.h0()
    );

    let mut table = Table::new(vec![
        "app msgs/node/s",
        "dedicated sync/node/s",
        "piggybacked/node/s",
        "dedicated saved %",
        "global skew",
    ]);
    // Baseline: effectively no app traffic.
    for app_rate in [0.01f64, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let app_gap = 1.0 / app_rate;
        let graph = topology::path(d + 1);
        let n = graph.len();
        let schedules = rates::split(n, drift, |v| v < n / 2);
        let nodes: Vec<PiggybackAOpt> = (0..n)
            .map(|v| PiggybackAOpt::new(params, app_gap, v as u64 + 1))
            .collect();
        let mut observer = SkewObserver::new(&graph);
        let mut engine = Engine::builder(graph)
            .protocols(nodes)
            .delay_model(UniformDelay::new(t_max, 5))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(horizon, |e| observer.observe(e));
        let mut dedicated = 0u64;
        let mut piggybacked = 0u64;
        for v in 0..n {
            dedicated += engine.protocol(NodeId(v)).dedicated_sends();
            piggybacked += engine.protocol(NodeId(v)).piggybacked_sends();
        }
        let dedicated_rate = dedicated as f64 / n as f64 / horizon;
        let baseline = 1.0 / params.h0();
        table.row(vec![
            format!("{app_rate}"),
            format!("{dedicated_rate:.3}"),
            format!("{:.3}", piggybacked as f64 / n as f64 / horizon),
            format!("{:.0}", (1.0 - dedicated_rate / baseline) * 100.0),
            format!("{:.4}", observer.worst_global()),
        ]);
        assert!(
            observer.worst_global() <= params.global_skew_bound(d as u32) + 1e-9,
            "piggybacking must not cost correctness"
        );
    }
    println!("{table}");
    println!("dedicated sync traffic falls toward zero once the application sends");
    println!("more often than 1/H₀, while the global-skew bound keeps holding —");
    println!("the practical upshot of §6.2's few-bits messages.");
}
