//! T4 — Section 8.1: a completely unknown `𝒯` is no restriction. Starting
//! from a wildly wrong initial guess, the adaptive variant measures round
//! trips, floods the maximum, re-derives `(κ, H₀)` a logarithmic number of
//! times, and ends up synchronizing as if `𝒯̂` had been known (up to the
//! `𝒯̂ ≤ 2𝒯/(1−ε̂)`-ish over-approximation inherent to round-trip probing).

use gcs_analysis::Table;
use gcs_bench::banner;
use gcs_core::{AdaptiveAOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Engine, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "T4",
        "adaptive 𝒯̂ (§8.1): convergence from a wrong initial guess, per true 𝒯",
    );
    let eps = 0.02;
    let n = 8;
    let d = (n - 1) as u32;
    let drift = DriftBounds::new(eps).unwrap();
    println!("path D = {d}; initial guess 𝒯̂₀ = 0.001 everywhere\n");

    let mut table = Table::new(vec![
        "true 𝒯",
        "converged 𝒯̂",
        "𝒯̂ / 𝒯",
        "adaptations (max/node)",
        "global skew (steady)",
        "𝒢(converged 𝒯̂)",
    ]);
    for t_true in [0.05f64, 0.2, 0.8] {
        let g = topology::path(n);
        let schedules = rates::split(n, drift, |v| v < n / 2);
        let mut engine = Engine::builder(g)
            .protocols(vec![AdaptiveAOpt::new(eps, 0.001); n])
            .delay_model(UniformDelay::new(t_true, 17))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        // Convergence phase.
        engine.run_until(300.0 * t_true.max(0.1));
        let converged: Params = *engine.protocol(NodeId(0)).params();
        let adaptations = (0..n)
            .map(|v| engine.protocol(NodeId(v)).adaptations())
            .max()
            .unwrap();
        // Steady-state measurement phase.
        let mut worst: f64 = 0.0;
        let end = engine.now() + 600.0 * t_true.max(0.1);
        engine.run_until_observed(end, |e| {
            let clocks = e.logical_values();
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            worst = worst.max(max - min);
        });
        let bound = converged.global_skew_bound(d);
        assert!(worst <= bound + 1e-9, "steady-state bound violated");
        table.row(vec![
            format!("{t_true}"),
            format!("{:.4}", converged.t_hat()),
            format!("{:.2}", converged.t_hat() / t_true),
            adaptations.to_string(),
            format!("{worst:.4}"),
            format!("{bound:.4}"),
        ]);
    }
    println!("{table}");
    println!("𝒯̂ lands within a small factor of the true 𝒯 (round trips measure");
    println!("≤ 2𝒯, doubling adds ≤ 2×), after a logarithmic number of parameter");
    println!("changes — §8.1's 'no restriction' argument, executed.");
}
