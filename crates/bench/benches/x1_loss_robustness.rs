//! X1 — robustness extension (beyond the paper's model): the paper assumes
//! reliable links; its conclusion hopes the techniques carry into practical
//! protocols. This experiment drops transmissions i.i.d. and measures the
//! degradation. `A^opt` is naturally self-healing — every state item is
//! refreshed by the periodic broadcasts, so lost messages only make
//! estimates staler — but the proven bounds no longer formally apply; we
//! report how far the measured skews drift past them.

use gcs_analysis::Table;
use gcs_bench::{banner, f4, run_aopt};
use gcs_core::Params;
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, LossyDelay, UniformDelay};
use gcs_time::DriftBounds;

fn main() {
    banner(
        "X1",
        "EXTENSION (beyond the model): A^opt under i.i.d. message loss",
    );
    let eps = 0.02;
    let t_max = 0.25;
    let d = 16usize;
    let drift = DriftBounds::new(eps).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();
    let g_bound = params.global_skew_bound(d as u32);
    let l_bound = params.local_skew_bound(d as u32);
    println!("path D = {d}; uniform delays + split drift; bounds assume NO loss\n");

    let mut table = Table::new(vec![
        "loss rate",
        "global skew",
        "vs 𝒢 (no-loss bound)",
        "local skew",
        "vs local bound",
    ]);
    for loss in [0.0f64, 0.05, 0.1, 0.2, 0.4, 0.6] {
        let graph = topology::path(d + 1);
        let n = graph.len();
        let dist = graph.distances_from(NodeId(0));
        let schedules = rates::split(n, drift, |v| dist[v] < (d / 2) as u32);
        let delay = LossyDelay::new(UniformDelay::new(t_max, 7), loss.min(0.999), 13);
        let outcome = run_aopt(graph, params, delay, schedules, 240.0);
        table.row(vec![
            format!("{loss}"),
            f4(outcome.global),
            format!("{:.0}%", outcome.global / g_bound * 100.0),
            f4(outcome.local),
            format!("{:.0}%", outcome.local / l_bound * 100.0),
        ]);
    }
    println!("{table}");
    println!("degradation is graceful: moderate loss costs a constant-factor skew");
    println!("increase (staler estimates ≈ a larger effective H₀), with no failure");
    println!("mode — the periodic broadcasts resynchronize everything they touch.");
}
