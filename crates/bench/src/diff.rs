//! Bench-regression gating: parse two `BENCH_*.json` artifacts
//! (`gcs-bench-result/v1`) and compare them metric-by-metric.
//!
//! The comparison is **direction-aware** — each metric family declares
//! whether bigger numbers are better (`events_per_sec/*`, `speedup/*`) or
//! worse (`wall_seconds/*`, `allocs_per_event/*`, `median_seconds/*`,
//! `overhead_ratio/*`); everything else is informational and can never
//! fail the gate. A metric regresses when it moves in the bad direction by
//! more than the relative tolerance. Near-zero values (both sides within
//! the absolute floor of each other) always compare as unchanged, so
//! zero-alloc metrics don't explode the relative math.
//!
//! Speedup metrics are machine-dependent in a way the rest are not: on a
//! single-core host a `speedup/threads=8` number measures scheduler churn,
//! nothing else. When either artifact's config says `cores`/`host_cores`
//! is `1`, every `speedup/*` metric is skipped — which also de-fangs
//! artifacts committed from single-core machines. The same applies when
//! the two artifacts disagree on `cores`/`host_cores`: a speedup curve
//! from a 4-core box is incomparable with one from a 16-core box, so
//! `speedup/*` rows are skipped (with a note) rather than gated.
//!
//! Config differences are reported as notes, never failures: the expected
//! CI use compares a quick-mode run against a committed full-mode
//! artifact, and the common metrics are still worth gating.

use std::fmt::Write as _;

use gcs_forensics::{parse_json, Json};

/// A parsed `gcs-bench-result/v1` artifact.
#[derive(Debug, Clone)]
pub struct BenchArtifact {
    /// The bench name (`BENCH_<name>.json`).
    pub bench: String,
    /// Configuration knobs, in artifact order.
    pub config: Vec<(String, String)>,
    /// Measurements, in artifact order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchArtifact {
    /// Looks up a config knob.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// True when the artifact declares it was produced on a single core
    /// (`cores` or `host_cores` config knob).
    pub fn single_core(&self) -> bool {
        self.config_value("cores") == Some("1") || self.config_value("host_cores") == Some("1")
    }
}

/// Parses one artifact, validating the schema tag.
pub fn parse_artifact(text: &str) -> Result<BenchArtifact, String> {
    let v = parse_json(text.trim()).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "gcs-bench-result/v1" {
        return Err(format!(
            "not a gcs-bench-result/v1 artifact (schema: {schema:?})"
        ));
    }
    let bench = v
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing `bench` name")?
        .to_string();
    let mut config = Vec::new();
    if let Some(Json::Obj(fields)) = v.get("config") {
        for (k, val) in fields {
            config.push((
                k.clone(),
                val.as_str().map(str::to_string).unwrap_or_default(),
            ));
        }
    }
    let mut metrics = Vec::new();
    if let Some(Json::Obj(fields)) = v.get("metrics") {
        for (k, val) in fields {
            let num = val
                .as_f64()
                .ok_or_else(|| format!("metric {k} is not a number"))?;
            metrics.push((k.clone(), num));
        }
    }
    Ok(BenchArtifact {
        bench,
        config,
        metrics,
    })
}

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, speedup).
    HigherIsBetter,
    /// Smaller is better (wall time, allocations, overhead).
    LowerIsBetter,
    /// Informational; never gates.
    Neutral,
}

/// Classifies a metric by its name prefix (the repo-wide convention:
/// `family/qualifiers`).
pub fn direction(name: &str) -> Direction {
    let family = name.split('/').next().unwrap_or(name);
    match family {
        "events_per_sec"
        | "events_per_sec_per_core"
        | "speedup"
        | "throughput"
        | "jobs_per_sec"
        | "cache_hit_ratio"
        | "cache_speedup" => Direction::HigherIsBetter,
        "wall_seconds"
        | "median_seconds"
        | "allocs_per_event"
        | "allocs_per_event_steady"
        | "overhead_ratio"
        | "latency_ms" => Direction::LowerIsBetter,
        _ => Direction::Neutral,
    }
}

/// Outcome for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance (or informational).
    Ok,
    /// Moved in the good direction by more than the tolerance.
    Improved,
    /// Moved in the bad direction by more than the tolerance — gates.
    Regressed,
    /// Not compared (single-core speedup skip).
    Skipped,
    /// Present only in the old artifact.
    OnlyOld,
    /// Present only in the new artifact.
    OnlyNew,
}

/// One row of the regression table.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric name.
    pub metric: String,
    /// Old value, if present.
    pub old: Option<f64>,
    /// New value, if present.
    pub new: Option<f64>,
    /// Relative change `(new - old) / |old|`; 0 when not comparable.
    pub change: f64,
    /// The metric's gating direction.
    pub direction: Direction,
    /// Comparison outcome.
    pub status: Status,
}

/// The full comparison of two artifacts.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// Bench name both artifacts agree on.
    pub bench: String,
    /// Human-readable notes (config drift, speedup skips).
    pub notes: Vec<String>,
    /// Per-metric rows, old-artifact order first, then new-only metrics.
    pub rows: Vec<DiffRow>,
    /// The relative tolerance used.
    pub tolerance: f64,
}

/// Values within this absolute distance always compare as unchanged,
/// guarding the relative math around zero (e.g. zero-alloc metrics).
pub const ABS_FLOOR: f64 = 1e-3;

/// Compares two parsed artifacts with the given relative tolerance
/// (`0.25` = 25 %).
///
/// Fails if the artifacts describe different benches — that is an operator
/// error, not a regression.
pub fn diff(old: &BenchArtifact, new: &BenchArtifact, tolerance: f64) -> Result<BenchDiff, String> {
    if old.bench != new.bench {
        return Err(format!(
            "artifacts describe different benches: {:?} vs {:?}",
            old.bench, new.bench
        ));
    }
    assert!(
        tolerance >= 0.0 && tolerance.is_finite(),
        "invalid tolerance {tolerance}"
    );
    let mut notes = Vec::new();
    for (k, ov) in &old.config {
        match new.config_value(k) {
            Some(nv) if nv == ov => {}
            Some(nv) => notes.push(format!("config {k}: {ov:?} -> {nv:?}")),
            None => notes.push(format!("config {k}: {ov:?} -> (absent)")),
        }
    }
    for (k, nv) in &new.config {
        if old.config_value(k).is_none() {
            notes.push(format!("config {k}: (absent) -> {nv:?}"));
        }
    }
    let cores_differ = old.config_value("cores") != new.config_value("cores")
        || old.config_value("host_cores") != new.config_value("host_cores");
    let skip_speedup = old.single_core() || new.single_core() || cores_differ;
    if old.single_core() || new.single_core() {
        notes.push(
            "single-core artifact: speedup/* metrics skipped (they measure \
             scheduler churn, not scaling)"
                .to_string(),
        );
    } else if cores_differ {
        notes.push(
            "artifacts disagree on cores: speedup/* metrics skipped \
             (incomparable machine classes)"
                .to_string(),
        );
    }

    let mut rows = Vec::new();
    for (name, ov) in &old.metrics {
        let dir = direction(name);
        let row = match new.metric(name) {
            None => DiffRow {
                metric: name.clone(),
                old: Some(*ov),
                new: None,
                change: 0.0,
                direction: dir,
                status: Status::OnlyOld,
            },
            Some(nv) => {
                let skipped = skip_speedup && name.split('/').next() == Some("speedup");
                let change = if ov.abs() > 0.0 {
                    (nv - ov) / ov.abs()
                } else {
                    0.0
                };
                let status = if skipped {
                    Status::Skipped
                } else if (nv - ov).abs() <= ABS_FLOOR {
                    Status::Ok
                } else {
                    let moved = (nv - ov) / ov.abs().max(ABS_FLOOR);
                    match dir {
                        Direction::Neutral => Status::Ok,
                        Direction::HigherIsBetter if moved < -tolerance => Status::Regressed,
                        Direction::HigherIsBetter if moved > tolerance => Status::Improved,
                        Direction::LowerIsBetter if moved > tolerance => Status::Regressed,
                        Direction::LowerIsBetter if moved < -tolerance => Status::Improved,
                        _ => Status::Ok,
                    }
                };
                DiffRow {
                    metric: name.clone(),
                    old: Some(*ov),
                    new: Some(nv),
                    change,
                    direction: dir,
                    status,
                }
            }
        };
        rows.push(row);
    }
    for (name, nv) in &new.metrics {
        if old.metric(name).is_none() {
            rows.push(DiffRow {
                metric: name.clone(),
                old: None,
                new: Some(*nv),
                change: 0.0,
                direction: direction(name),
                status: Status::OnlyNew,
            });
        }
    }
    Ok(BenchDiff {
        bench: old.bench.clone(),
        notes,
        rows,
        tolerance,
    })
}

impl BenchDiff {
    /// Number of regressed metrics; non-zero means the gate fails.
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.status == Status::Regressed)
            .count()
    }

    /// Renders the regression table plus notes and verdict.
    pub fn render(&self) -> String {
        fn val(v: Option<f64>) -> String {
            match v {
                Some(v) => format!("{v:.6}"),
                None => "-".to_string(),
            }
        }
        let mut out = format!(
            "bench diff: {} (tolerance {:.0}%)\n",
            self.bench,
            self.tolerance * 100.0
        );
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        let width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = writeln!(
            out,
            "{:<width$} {:>16} {:>16} {:>9}  status",
            "metric", "old", "new", "change"
        );
        for r in &self.rows {
            let status = match r.status {
                Status::Ok => "ok",
                Status::Improved => "improved",
                Status::Regressed => "REGRESSED",
                Status::Skipped => "skipped",
                Status::OnlyOld => "only-old",
                Status::OnlyNew => "only-new",
            };
            let change = if r.old.is_some() && r.new.is_some() {
                format!("{:+.1}%", r.change * 100.0)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<width$} {:>16} {:>16} {:>9}  {status}",
                r.metric,
                val(r.old),
                val(r.new),
                change,
            );
        }
        let regressions = self.regressions();
        if regressions > 0 {
            let _ = writeln!(out, "FAIL: {regressions} metric(s) regressed");
        } else {
            let _ = writeln!(out, "OK: no regressions");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchReport;

    fn artifact(cores: &str, metrics: &[(&str, f64)]) -> BenchArtifact {
        let mut r = BenchReport::new("engine_parallel");
        r.config("cores", cores);
        for (k, v) in metrics {
            r.metric(k, *v);
        }
        parse_artifact(&r.to_json()).expect("own reports parse")
    }

    #[test]
    fn parses_own_report_format() {
        let a = artifact("4", &[("events_per_sec/n=64", 1e6), ("windows", 98.0)]);
        assert_eq!(a.bench, "engine_parallel");
        assert_eq!(a.config_value("cores"), Some("4"));
        assert_eq!(a.metric("windows"), Some(98.0));
        assert!(!a.single_core());
    }

    #[test]
    fn rejects_foreign_schema() {
        assert!(parse_artifact("{\"schema\":\"nope\"}").is_err());
        assert!(parse_artifact("not json").is_err());
    }

    #[test]
    fn throughput_collapse_regresses_and_gain_improves() {
        let old = artifact("4", &[("events_per_sec/n=64", 1.0e6)]);
        let slow = artifact("4", &[("events_per_sec/n=64", 0.4e6)]);
        let fast = artifact("4", &[("events_per_sec/n=64", 2.0e6)]);
        let d = diff(&old, &slow, 0.25).unwrap();
        assert_eq!(d.regressions(), 1);
        assert!(d.render().contains("REGRESSED"));
        let d = diff(&old, &fast, 0.25).unwrap();
        assert_eq!(d.regressions(), 0);
        assert_eq!(d.rows[0].status, Status::Improved);
    }

    #[test]
    fn lower_is_better_metrics_regress_upward() {
        let old = artifact("4", &[("wall_seconds/workers=1", 4.0)]);
        let worse = artifact("4", &[("wall_seconds/workers=1", 6.0)]);
        let better = artifact("4", &[("wall_seconds/workers=1", 2.0)]);
        assert_eq!(diff(&old, &worse, 0.25).unwrap().regressions(), 1);
        let d = diff(&old, &better, 0.25).unwrap();
        assert_eq!(d.regressions(), 0);
        assert_eq!(d.rows[0].status, Status::Improved);
    }

    #[test]
    fn within_tolerance_is_ok_and_neutral_never_gates() {
        let old = artifact("4", &[("events_per_sec/n=64", 1.0e6), ("windows", 98.0)]);
        let new = artifact("4", &[("events_per_sec/n=64", 0.9e6), ("windows", 42.0)]);
        let d = diff(&old, &new, 0.25).unwrap();
        assert_eq!(d.regressions(), 0);
        assert!(d.rows.iter().all(|r| r.status == Status::Ok));
    }

    #[test]
    fn single_core_skips_speedups_only() {
        let old = artifact(
            "1",
            &[
                ("speedup/n=64/threads=4", 1.5),
                ("events_per_sec/n=64", 1e6),
            ],
        );
        let new = artifact(
            "4",
            &[
                ("speedup/n=64/threads=4", 0.2), // would regress hard
                ("events_per_sec/n=64", 0.1e6),  // genuine regression
            ],
        );
        let d = diff(&old, &new, 0.25).unwrap();
        assert_eq!(d.rows[0].status, Status::Skipped);
        assert_eq!(d.rows[1].status, Status::Regressed);
        assert_eq!(d.regressions(), 1);
        assert!(d.notes.iter().any(|n| n.contains("speedup")));
    }

    #[test]
    fn differing_core_counts_skip_speedups_only() {
        let old = artifact(
            "4",
            &[
                ("speedup/n=64/threads=4", 1.5),
                ("events_per_sec/n=64", 1e6),
            ],
        );
        let new = artifact(
            "16",
            &[
                ("speedup/n=64/threads=4", 0.2), // incomparable, not gated
                ("events_per_sec/n=64", 0.1e6),  // genuine regression
            ],
        );
        let d = diff(&old, &new, 0.25).unwrap();
        assert_eq!(d.rows[0].status, Status::Skipped);
        assert_eq!(d.rows[1].status, Status::Regressed);
        assert_eq!(d.regressions(), 1);
        assert!(d.notes.iter().any(|n| n.contains("disagree on cores")));
    }

    #[test]
    fn near_zero_allocs_do_not_explode_relative_math() {
        let old = artifact("4", &[("allocs_per_event/n=64", 0.0)]);
        let same = artifact("4", &[("allocs_per_event/n=64", 0.0005)]);
        let leaky = artifact("4", &[("allocs_per_event/n=64", 0.5)]);
        assert_eq!(diff(&old, &same, 0.25).unwrap().regressions(), 0);
        assert_eq!(diff(&old, &leaky, 0.25).unwrap().regressions(), 1);
    }

    #[test]
    fn missing_metrics_and_config_drift_are_notes_not_failures() {
        let old = artifact(
            "4",
            &[("events_per_sec/n=64", 1e6), ("wall_seconds/x", 2.0)],
        );
        let mut r = BenchReport::new("engine_parallel");
        r.config("cores", "4").config("quick", "true");
        r.metric("events_per_sec/n=64", 1e6);
        r.metric("events_per_sec/n=128", 2e6);
        let new = parse_artifact(&r.to_json()).unwrap();
        let d = diff(&old, &new, 0.25).unwrap();
        assert_eq!(d.regressions(), 0);
        assert!(d.rows.iter().any(|r| r.status == Status::OnlyOld));
        assert!(d.rows.iter().any(|r| r.status == Status::OnlyNew));
        assert!(d.notes.iter().any(|n| n.contains("config quick")));
    }

    #[test]
    fn mismatched_bench_names_error() {
        let old = artifact("4", &[]);
        let r = BenchReport::new("other_bench");
        let new = parse_artifact(&r.to_json()).unwrap();
        assert!(diff(&old, &new, 0.25).is_err());
    }
}
