//! Shared support for the experiment harness.
//!
//! Every bench target in `benches/` regenerates one figure or table of the
//! reproduction (see `DESIGN.md` §5 and `EXPERIMENTS.md`): it prints the
//! experiment header, runs the sweep, and renders a [`gcs_analysis::Table`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod results;
mod serve_bench;

pub use diff::{
    diff, direction, parse_artifact, BenchArtifact, BenchDiff, DiffRow, Direction, Status,
    ABS_FLOOR,
};
pub use results::BenchReport;
pub use serve_bench::{run_serve_bench, ServeBenchConfig, ServeBenchOutcome};

use gcs_analysis::SkewObserver;
use gcs_core::{AOpt, Params};
use gcs_graph::Graph;
use gcs_sim::{DelayModel, Engine, MessageStats, Protocol};
use gcs_time::RateSchedule;

/// Prints the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("================================================================");
    println!("{id}: {claim}");
    println!("================================================================");
}

/// Result of one simulated execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Worst pairwise skew over the run.
    pub global: f64,
    /// Worst neighbour skew over the run.
    pub local: f64,
    /// Message counters.
    pub stats: MessageStats,
}

/// Runs any protocol on `graph` and measures exact worst skews.
pub fn run_protocol<P: Protocol, D: DelayModel>(
    graph: Graph,
    protocols: Vec<P>,
    delay: D,
    schedules: Vec<RateSchedule>,
    horizon: f64,
) -> RunOutcome {
    let mut observer = SkewObserver::new(&graph);
    let mut engine = Engine::builder(graph)
        .protocols(protocols)
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(horizon, |e| observer.observe(e));
    RunOutcome {
        global: observer.worst_global(),
        local: observer.worst_local(),
        stats: engine.message_stats().clone(),
    }
}

/// Runs `A^opt` with the given parameters.
pub fn run_aopt<D: DelayModel>(
    graph: Graph,
    params: Params,
    delay: D,
    schedules: Vec<RateSchedule>,
    horizon: f64,
) -> RunOutcome {
    let n = graph.len();
    run_protocol(graph, vec![AOpt::new(params); n], delay, schedules, horizon)
}

/// Worker-thread count for orchestrated sweeps: the host's available
/// parallelism (sweep output is byte-identical at any worker count, so
/// this only affects wall clock).
pub fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Formats a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a ratio with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
