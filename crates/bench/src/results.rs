//! Machine-readable bench results: `BENCH_<name>.json`.
//!
//! Perf-tracking benches write one JSON file per run so the repo's
//! performance trajectory can be tracked across commits by diffing
//! artifacts. The schema is deliberately **commit-agnostic** — no git
//! hashes, timestamps, or hostnames — so two files differ only when the
//! measured numbers or the bench configuration differ:
//!
//! ```json
//! {
//!   "schema": "gcs-bench-result/v1",
//!   "bench": "sweep_scaling",
//!   "config": {"jobs": "256", "horizon": "60"},
//!   "metrics": {"wall_seconds/workers=1": 4.21, "speedup/workers=8": 3.4}
//! }
//! ```
//!
//! `config` holds the knobs that make the numbers comparable (as strings);
//! `metrics` holds the measurements (as finite floats). Both preserve
//! insertion order.

use std::fmt::Display;
use std::io;

/// Accumulates one bench's configuration and measurements, then renders
/// or writes the `BENCH_<name>.json` artifact.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    config: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Starts a report for the bench called `name`.
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records one configuration knob (stringified).
    pub fn config(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Records one measurement.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite value — a NaN measurement is a bench bug,
    /// not a result.
    pub fn metric(&mut self, name: &str, value: f64) -> &mut Self {
        assert!(value.is_finite(), "metric {name} is not finite: {value}");
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Renders the report as a JSON object (single line + trailing
    /// newline, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"gcs-bench-result/v1\",\"bench\":");
        push_json_string(&mut out, &self.name);
        out.push_str(",\"config\":{");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("},\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            // `{}` prints the shortest representation that round-trips.
            out.push_str(&format!("{v}"));
        }
        out.push_str("}}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into the workspace root (so artifacts
    /// from every bench crate land in one tracked place) and returns the
    /// path written.
    pub fn write(&self) -> io::Result<String> {
        // crates/bench/ → workspace root. Compile-time, so the artifact
        // lands in the repo no matter where `cargo bench` is invoked from.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/bench has a workspace root two levels up");
        let path = root.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path.display().to_string())
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_schema() {
        let mut r = BenchReport::new("sweep_scaling");
        r.config("jobs", 256).config("horizon", 60.0);
        r.metric("wall_seconds/workers=1", 4.25);
        r.metric("speedup/workers=8", 3.5);
        assert_eq!(
            r.to_json(),
            "{\"schema\":\"gcs-bench-result/v1\",\"bench\":\"sweep_scaling\",\
             \"config\":{\"jobs\":\"256\",\"horizon\":\"60\"},\
             \"metrics\":{\"wall_seconds/workers=1\":4.25,\"speedup/workers=8\":3.5}}\n"
        );
    }

    #[test]
    fn escapes_strings() {
        let mut r = BenchReport::new("x");
        r.config("quote\"key", "a\\b\nc");
        assert!(r.to_json().contains("\"quote\\\"key\":\"a\\\\b\\nc\""));
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn rejects_nan_metrics() {
        BenchReport::new("x").metric("bad", f64::NAN);
    }
}
