//! The `gcs serve-bench` load generator: mixed hot/cold workloads against
//! a daemon, measuring throughput, latency percentiles, and the cache's
//! cold-vs-hot speedup.
//!
//! Two phases over one set of distinct sweep specs:
//!
//! 1. **Cold** — every spec is submitted once with `wait=1` (the daemon
//!    executes it); clients run concurrently, so this also exercises
//!    admission and fair scheduling.
//! 2. **Hot** — the same specs are resubmitted `repeat` times each; every
//!    response must come from the result cache, byte-identical to the
//!    cold body.
//!
//! The outcome feeds `BENCH_serve.json` (`gcs-bench-result/v1`), wired
//! into the CI bench-diff gate like every other perf artifact.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use gcs_serve::{Client, ServeConfig, ServerHandle};

use crate::BenchReport;

/// Load-generator knobs (the `gcs serve-bench` flags).
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Daemon address; `None` spawns an embedded daemon for the run.
    pub addr: Option<String>,
    /// Concurrent client connections.
    pub clients: usize,
    /// Distinct specs in the working set.
    pub specs: usize,
    /// Hot replays of each spec.
    pub repeat: usize,
    /// Embedded-daemon worker threads (`0` ⇒ available parallelism);
    /// ignored when `addr` targets an external daemon.
    pub workers: usize,
    /// Smaller grids and working set (CI).
    pub quick: bool,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            addr: None,
            clients: 8,
            specs: 24,
            repeat: 4,
            workers: 0,
            quick: false,
        }
    }
}

/// What one run measured.
#[derive(Debug)]
pub struct ServeBenchOutcome {
    /// The `BENCH_serve.json` report, ready to render or write.
    pub report: BenchReport,
    /// Cold (executing) submissions per second.
    pub cold_jobs_per_sec: f64,
    /// Hot (cache-replay) submissions per second.
    pub hot_jobs_per_sec: f64,
    /// Cache hit ratio observed across the hot phase.
    pub hit_ratio: f64,
    /// Mean cold latency over mean hot latency.
    pub speedup: f64,
}

/// One spec of the working set: small distinct sweeps whose cost is
/// dominated by engine execution, so the hot/cold contrast measures the
/// cache, not the wire.
fn spec_body(i: usize, quick: bool) -> String {
    let (nodes, horizon, seeds) = if quick { (8, 60.0, 4) } else { (12, 150.0, 6) };
    format!(
        "topologies = path:{nodes}\nseeds = {}..{}\nhorizon = {horizon}\n",
        i * 100,
        i * 100 + seeds,
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let at = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[at]
}

struct PhaseResult {
    latencies_ms: Vec<f64>,
    wall_s: f64,
    bodies: HashMap<usize, u64>,
}

/// FNV-1a over a response body — only equality matters here.
fn body_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Runs one phase: `tasks` is a list of spec indices; each client thread
/// drains a shared cursor, timing every `wait=1` submission.
fn run_phase(
    addr: &str,
    clients: usize,
    tasks: &[usize],
    quick: bool,
    session_prefix: &str,
) -> Result<PhaseResult, String> {
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, f64, u64)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let cursor = &cursor;
            let results = &results;
            let errors = &errors;
            scope.spawn(move || {
                let mut client = Client::new(addr);
                let session = format!("{session_prefix}-{c}");
                loop {
                    let at = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&spec) = tasks.get(at) else { break };
                    let body = spec_body(spec, quick);
                    let t0 = Instant::now();
                    match client.post("/v1/jobs?kind=sweep&wait=1", Some(&session), &body) {
                        Ok(resp) if resp.status == 200 => {
                            let ms = t0.elapsed().as_secs_f64() * 1e3;
                            results
                                .lock()
                                .unwrap()
                                .push((spec, ms, body_digest(&resp.body)));
                        }
                        Ok(resp) => errors
                            .lock()
                            .unwrap()
                            .push(format!("spec {spec}: status {}", resp.status)),
                        Err(e) => errors.lock().unwrap().push(format!("spec {spec}: {e}")),
                    }
                }
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let errors = errors.into_inner().unwrap();
    if let Some(first) = errors.first() {
        return Err(format!(
            "{} request(s) failed; first: {first}",
            errors.len()
        ));
    }
    let samples = results.into_inner().unwrap();
    let mut latencies_ms: Vec<f64> = samples.iter().map(|(_, ms, _)| *ms).collect();
    latencies_ms.sort_by(f64::total_cmp);
    let mut bodies: HashMap<usize, u64> = HashMap::new();
    for (spec, _, digest) in samples {
        if let Some(prev) = bodies.insert(spec, digest) {
            if prev != digest {
                return Err(format!(
                    "spec {spec}: two subscribers saw different bodies in one phase"
                ));
            }
        }
    }
    Ok(PhaseResult {
        latencies_ms,
        wall_s,
        bodies,
    })
}

/// Runs the full benchmark and builds the `BENCH_serve.json` report.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> Result<ServeBenchOutcome, String> {
    // Embedded daemon unless one was pointed at; keep the handle so it
    // shuts down cleanly when the run ends.
    let mut embedded: Option<ServerHandle> = None;
    let addr = match &cfg.addr {
        Some(addr) => addr.clone(),
        None => {
            let server = ServerHandle::spawn(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: cfg.workers,
                // Ample for the working set: the speedup metric needs
                // every cold artifact still resident in the hot phase.
                cache_bytes: 256 << 20,
                max_live: (cfg.clients * 2).max(64),
                dump_dir: std::env::temp_dir().join("gcs-serve-bench-dumps"),
                deterministic: true,
            })
            .map_err(|e| format!("cannot spawn embedded daemon: {e}"))?;
            let addr = server.addr().to_string();
            embedded = Some(server);
            addr
        }
    };

    let mut stats_client = Client::new(&addr);
    let stats_before = stats_client
        .get("/stats")
        .map_err(|e| format!("daemon unreachable at {addr}: {e}"))?;
    if stats_before.status != 200 {
        return Err(format!("/stats returned {}", stats_before.status));
    }

    // Cold: each spec once.
    let cold_tasks: Vec<usize> = (0..cfg.specs).collect();
    let cold = run_phase(&addr, cfg.clients, &cold_tasks, cfg.quick, "cold")?;

    // Hot: each spec `repeat` more times, interleaved across clients.
    let hot_tasks: Vec<usize> = (0..cfg.specs * cfg.repeat).map(|i| i % cfg.specs).collect();
    let hits_before = parse_stat(&mut stats_client, "cache_hits")?;
    let hot = run_phase(&addr, cfg.clients, &hot_tasks, cfg.quick, "hot")?;
    let hits_after = parse_stat(&mut stats_client, "cache_hits")?;

    // Byte-identity across the cache boundary: the hot replay of every
    // spec must equal its cold execution.
    for (spec, cold_digest) in &cold.bodies {
        match hot.bodies.get(spec) {
            Some(hot_digest) if hot_digest == cold_digest => {}
            Some(_) => {
                return Err(format!(
                    "spec {spec}: cache-hit body differs from the cold execution"
                ))
            }
            None => return Err(format!("spec {spec}: never replayed in the hot phase")),
        }
    }

    let cold_n = cold.latencies_ms.len() as f64;
    let hot_n = hot.latencies_ms.len() as f64;
    let cold_mean = cold.latencies_ms.iter().sum::<f64>() / cold_n.max(1.0);
    let hot_mean = hot.latencies_ms.iter().sum::<f64>() / hot_n.max(1.0);
    let cold_jobs_per_sec = cold_n / cold.wall_s.max(1e-9);
    let hot_jobs_per_sec = hot_n / hot.wall_s.max(1e-9);
    let hit_ratio = (hits_after - hits_before) as f64 / hot_n.max(1.0);
    let speedup = cold_mean / hot_mean.max(1e-9);

    let mut report = BenchReport::new("serve");
    report
        .config("clients", cfg.clients)
        .config("specs", cfg.specs)
        .config("repeat", cfg.repeat)
        .config("quick", cfg.quick)
        .metric("jobs_per_sec/cold", cold_jobs_per_sec)
        .metric("jobs_per_sec/hot", hot_jobs_per_sec)
        .metric("latency_ms/cold_p50", percentile(&cold.latencies_ms, 0.50))
        .metric("latency_ms/cold_p99", percentile(&cold.latencies_ms, 0.99))
        .metric("latency_ms/hot_p50", percentile(&hot.latencies_ms, 0.50))
        .metric("latency_ms/hot_p99", percentile(&hot.latencies_ms, 0.99))
        .metric("cache_hit_ratio/hot", hit_ratio)
        .metric("cache_speedup/hot_vs_cold", speedup);

    if let Some(mut server) = embedded {
        server.shutdown();
    }
    Ok(ServeBenchOutcome {
        report,
        cold_jobs_per_sec,
        hot_jobs_per_sec,
        hit_ratio,
        speedup,
    })
}

/// Reads one integer counter out of the `/stats` JSON line.
fn parse_stat(client: &mut Client, key: &str) -> Result<u64, String> {
    let resp = client
        .get("/stats")
        .map_err(|e| format!("/stats failed: {e}"))?;
    let text = resp.text();
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("/stats has no `{key}`: {text}"))?;
    let digits: String = text[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("/stats `{key}` is not an integer: {text}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_round_trips_with_speedup() {
        let cfg = ServeBenchConfig {
            clients: 4,
            specs: 6,
            repeat: 2,
            workers: 2,
            quick: true,
            ..ServeBenchConfig::default()
        };
        let outcome = run_serve_bench(&cfg).expect("bench runs");
        assert!(outcome.cold_jobs_per_sec > 0.0);
        assert!(outcome.hot_jobs_per_sec > 0.0);
        assert!(
            (outcome.hit_ratio - 1.0).abs() < 1e-9,
            "hot phase must be all cache hits, got {}",
            outcome.hit_ratio
        );
        assert!(
            outcome.speedup > 1.0,
            "cache replay must beat execution, got {}×",
            outcome.speedup
        );
        let json = outcome.report.to_json();
        assert!(json.contains("\"bench\":\"serve\""));
        assert!(json.contains("cache_speedup/hot_vs_cold"));
    }

    #[test]
    fn percentiles_are_order_stats() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
