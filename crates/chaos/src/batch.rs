//! Batch execution: thousands of seed-randomized scenarios on the sweep
//! worker pool, the invariant watchdog as online oracle, unexpected
//! violations auto-shrunk to minimal reproducers.
//!
//! The pool is [`gcs_sweep::run_pool`], so a batch inherits the sweep's
//! guarantees: panic isolation (a scenario that panics is a `failed` entry,
//! not a dead batch) and deterministic seed-order result emission
//! regardless of worker count.

use gcs_sweep::{run_pool, JobOutcome};

use crate::random::random_spec;
use crate::run::{run_scenario, ScenarioOutcome};
use crate::shrink::{shrink, ShrinkOutcome};
use crate::spec::ChaosSpec;

/// Batch parameters.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Scenarios to run.
    pub scenarios: usize,
    /// First seed; scenario `i` uses `start_seed + i`.
    pub start_seed: u64,
    /// Worker threads for the pool (`0` ⇒ available parallelism).
    pub workers: usize,
    /// Engine threads *per scenario* (usually 1: the pool already owns the
    /// cores; raise it only to exercise the parallel engine under chaos).
    pub threads: usize,
    /// Whether to auto-shrink findings to minimal reproducers.
    pub shrink: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            scenarios: 1000,
            start_seed: 1,
            workers: 0,
            threads: 1,
            shrink: true,
        }
    }
}

/// One batch scenario's verdict, kept deliberately small (the full spec is
/// reproducible from the seed).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioVerdict {
    /// The scenario's seed.
    pub seed: u64,
    /// Violation tag + node + time, if the watchdog tripped.
    pub violation: Option<(String, usize, f64)>,
    /// Whether the schedule contained an out-of-model clause.
    pub expected: bool,
}

impl ScenarioVerdict {
    fn from_outcome(seed: u64, o: &ScenarioOutcome) -> Self {
        ScenarioVerdict {
            seed,
            violation: o
                .violation
                .as_ref()
                .map(|v| (v.kind().to_string(), v.node(), v.time())),
            expected: o.violation_expected,
        }
    }

    /// An unexpected violation — a finding.
    pub fn finding(&self) -> bool {
        self.violation.is_some() && !self.expected
    }
}

/// An unexpected violation, with its minimal reproducer when shrinking was
/// enabled.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Seed of the violating scenario.
    pub seed: u64,
    /// The full generated scenario.
    pub spec: ChaosSpec,
    /// Violation tag of the original execution.
    pub kind: String,
    /// The shrink result (`None` when shrinking is disabled or the shrink
    /// itself errored — the raw spec above still reproduces).
    pub shrunk: Option<ShrinkOutcome>,
}

/// A finished batch.
#[derive(Debug, Clone, Default)]
pub struct BatchSummary {
    /// Scenarios executed (including failures).
    pub scenarios: usize,
    /// Scenarios with no violation.
    pub clean: usize,
    /// Violations the fault taxonomy allows (out-of-model clauses).
    pub expected_violations: usize,
    /// Unexpected violations, in seed order.
    pub findings: Vec<Finding>,
    /// `(seed, error)` for scenarios that failed to execute, in seed order.
    pub failed: Vec<(u64, String)>,
}

/// Runs the batch. Results are deterministic in content and order for a
/// given `(scenarios, start_seed, threads)` regardless of `workers`.
pub fn run_batch(cfg: &BatchConfig) -> BatchSummary {
    let threads = cfg.threads.max(1);
    let start = cfg.start_seed;
    let verdicts: Vec<JobOutcome<ScenarioVerdict>> = run_pool(
        cfg.scenarios,
        cfg.workers,
        |i| {
            let seed = start + i as u64;
            let spec = random_spec(seed);
            run_scenario(&spec, threads).map(|o| ScenarioVerdict::from_outcome(seed, &o))
        },
        |_, _| {},
    );

    let mut summary = BatchSummary {
        scenarios: cfg.scenarios,
        ..BatchSummary::default()
    };
    for (i, outcome) in verdicts.iter().enumerate() {
        let seed = start + i as u64;
        match outcome {
            JobOutcome::Completed(v) if v.finding() => {
                let spec = random_spec(seed);
                let kind = v
                    .violation
                    .as_ref()
                    .expect("finding has violation")
                    .0
                    .clone();
                let shrunk = cfg.shrink.then(|| shrink(&spec, threads).ok()).flatten();
                summary.findings.push(Finding {
                    seed,
                    spec,
                    kind,
                    shrunk,
                });
            }
            JobOutcome::Completed(v) if v.violation.is_some() => {
                summary.expected_violations += 1;
            }
            JobOutcome::Completed(_) => summary.clean += 1,
            JobOutcome::Failed(e) => summary.failed.push((seed, e.clone())),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(scenarios: usize, workers: usize) -> BatchConfig {
        BatchConfig {
            scenarios,
            start_seed: 1,
            workers,
            threads: 1,
            shrink: false,
        }
    }

    #[test]
    fn batch_accounts_every_scenario() {
        let s = run_batch(&cfg(40, 2));
        assert_eq!(s.scenarios, 40);
        assert_eq!(
            s.clean + s.expected_violations + s.findings.len() + s.failed.len(),
            40
        );
        assert!(s.failed.is_empty(), "failures: {:?}", s.failed);
    }

    #[test]
    fn batch_is_worker_count_independent() {
        let a = run_batch(&cfg(30, 1));
        let b = run_batch(&cfg(30, 4));
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.expected_violations, b.expected_violations);
        assert_eq!(
            a.findings.iter().map(|f| f.seed).collect::<Vec<_>>(),
            b.findings.iter().map(|f| f.seed).collect::<Vec<_>>()
        );
    }
}
