//! # gcs-chaos — seeded fault-injection scenario engine
//!
//! VOPR-style chaos testing for the gradient clock-synchronization
//! simulator: deterministic scenarios described by a small DSL
//! ([`ChaosSpec`], the `.chaos` document format), compiled onto the
//! adversary layer ([`gcs_adversary::ChaosDelay`] over the sweep's delay
//! substrate), executed through the ordinary engine event path with the
//! paper's invariant watchdog as the online **oracle**:
//!
//! * **Condition (1)** — the affine envelope of real time;
//! * **Condition (2)** — bounded per-node progress;
//! * **Definition 5.6** — the legal-state invariant.
//!
//! The fault taxonomy ([`gcs_adversary::FaultClause::violation_allowed`])
//! splits violations into *expected* (an out-of-model clause — a rate
//! outside the drift bounds, a clog beyond 𝒯̂, a partition — broke an
//! assumption the paper's proofs need) and **unexpected** (every clause
//! stayed in-model, yet an invariant broke): the latter are findings.
//!
//! Three entry points:
//!
//! * [`run_scenario`] — one scenario, one verdict;
//! * [`run_batch`] — thousands of seed-randomized scenarios
//!   ([`random_spec`]) on the sweep worker pool, findings auto-shrunk;
//! * [`shrink`] — delta-debugging minimization of a violating scenario to
//!   a locally-minimal, byte-identically-reproducible `.chaos` fixture.

pub mod batch;
pub mod random;
pub mod run;
pub mod shrink;
pub mod spec;

pub use batch::{run_batch, BatchConfig, BatchSummary, Finding, ScenarioVerdict};
pub use random::{random_spec, SplitMix64};
pub use run::{run_scenario, ScenarioOutcome};
pub use shrink::{shrink, ShrinkOutcome};
pub use spec::{ChaosSpec, ExpectedViolation};
