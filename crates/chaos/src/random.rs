//! Seeded scenario generation for `gcs chaos --batch`: a pure function
//! from a `u64` seed to a [`ChaosSpec`], so a batch is fully described by
//! its seed block and any finding is reproducible from its seed alone.
//!
//! Generated schedules are biased toward **in-model** faults — drops,
//! duplicates, clogs and flaps within the delay bound 𝒯̂, rate attacks
//! within the drift bounds — because those are the scenarios where a
//! watchdog trip is a genuine finding. A minority of clauses are
//! out-of-model (partitions, crashes) to exercise the expected-violation
//! path too; the taxonomy in [`gcs_adversary::FaultClause::violation_allowed`]
//! keeps the two populations separate in the batch verdict.

use gcs_adversary::{EdgeSel, FaultClause, FaultKind, NodeSel};

use crate::spec::ChaosSpec;

/// SplitMix64 — the same finalizer family as the fault layer's
/// [`gcs_adversary::chaos_hash`], here run as a sequential stream for
/// scenario construction.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 significant bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Topologies the generator draws from: small enough that a batch of
/// thousands stays fast, varied enough to cover path/cycle/expander-ish
/// shapes.
const TOPOLOGIES: &[&str] = &["path:6", "ring:8", "grid:3x3", "star:6", "tree:7"];

/// Algorithms the generator draws from — only the variants that satisfy
/// the watchdog's invariants fault-free. The baselines (`max`, `midpoint`,
/// `nosync`) break them trivially, and `jump`/`envelope` move their
/// logical clocks in discrete steps, which violates the Condition (2)
/// rate envelope by construction; any of those would drown real findings
/// in known-behavior noise.
const ALGOS: &[&str] = &["aopt", "mingap"];

const DELAYS: &[&str] = &["const", "uniform"];
const RATES: &[&str] = &["nominal", "split", "walk"];

/// Generates the scenario for `seed`. Pure and total: every seed yields a
/// valid spec, and the same seed always yields the same spec.
pub fn random_spec(seed: u64) -> ChaosSpec {
    let mut rng = SplitMix64::new(seed ^ 0xc0a5_c0a5_c0a5_c0a5);
    let t = 0.2;
    let horizon = 40.0;
    let topology = TOPOLOGIES[rng.below(TOPOLOGIES.len())].to_string();
    // Node count per topology above (path:6 → 6, ring:8 → 8, ...).
    let n = match topology.as_str() {
        "ring:8" => 8,
        "grid:3x3" => 9,
        "tree:7" => 7,
        _ => 6,
    };
    let clause_count = 1 + rng.below(3);
    let mut faults = Vec::with_capacity(clause_count);
    for _ in 0..clause_count {
        faults.push(random_clause(&mut rng, n, t, horizon));
    }
    faults.sort_by(|a, b| a.start.total_cmp(&b.start));
    ChaosSpec {
        topology,
        algo: ALGOS[rng.below(ALGOS.len())].to_string(),
        eps: 0.02,
        t,
        sigma: None,
        delay: DELAYS[rng.below(DELAYS.len())].to_string(),
        rates: RATES[rng.below(RATES.len())].to_string(),
        horizon,
        seed,
        faults,
        violation: None,
    }
}

/// Rounds to a fixed grid so formatted clauses stay short and halving in
/// the shrinker produces exactly representable floats.
fn grid(v: f64) -> f64 {
    (v * 64.0).round() / 64.0
}

fn random_window(rng: &mut SplitMix64, horizon: f64) -> (f64, f64) {
    let start = grid(rng.range(0.0, horizon * 0.6));
    let len = grid(rng.range(2.0, horizon * 0.4).max(2.0));
    (start, (start + len).min(horizon))
}

fn random_edges(rng: &mut SplitMix64, n: usize) -> EdgeSel {
    if rng.next_f64() < 0.5 {
        EdgeSel::All
    } else {
        let u = rng.below(n);
        let v = (u + 1 + rng.below(n - 1)) % n;
        EdgeSel::List(vec![(u.min(v), u.max(v))])
    }
}

fn random_nodes(rng: &mut SplitMix64, n: usize) -> NodeSel {
    if rng.next_f64() < 0.5 {
        let a = rng.below(n - 1);
        let b = a + 1 + rng.below(n - a - 1).min(2);
        NodeSel::Range(a, b + 1)
    } else {
        NodeSel::List(vec![rng.below(n)])
    }
}

fn random_clause(rng: &mut SplitMix64, n: usize, t: f64, horizon: f64) -> FaultClause {
    let (start, end) = random_window(rng, horizon);
    // Weighted kind choice: mostly in-model message faults, occasionally an
    // out-of-model partition/crash (expected-violation population).
    let kind = match rng.below(10) {
        0..=2 => FaultKind::Drop {
            edges: random_edges(rng, n),
            prob: grid(rng.range(0.05, 0.35)),
        },
        3..=4 => FaultKind::Dup {
            edges: random_edges(rng, n),
            prob: grid(rng.range(0.05, 0.25)),
            extra: grid(rng.range(0.0, t / 4.0)),
        },
        5..=6 => FaultKind::Clog {
            edges: random_edges(rng, n),
            // Within 𝒯̂: forced delay never exceeds the algorithm's bound.
            delay: grid(rng.range(t / 4.0, t)).min(t),
        },
        7 => FaultKind::Flap {
            edges: random_edges(rng, n),
            period: grid(rng.range(1.0, 5.0)),
            slow: grid(rng.range(t / 4.0, t)).min(t),
        },
        8 => FaultKind::Rate {
            nodes: random_nodes(rng, n),
            // Within the drift bounds: a legal-hardware rate attack.
            rate: grid(rng.range(1.0 - 0.02, 1.0 + 0.02)),
        },
        _ => {
            if rng.next_f64() < 0.5 {
                FaultKind::Partition {
                    side: random_nodes(rng, n),
                }
            } else {
                FaultKind::Crash {
                    nodes: random_nodes(rng, n),
                }
            }
        }
    };
    FaultClause { start, end, kind }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChaosSpec;

    #[test]
    fn generation_is_deterministic_and_round_trips() {
        for seed in 0..200 {
            let a = random_spec(seed);
            let b = random_spec(seed);
            assert_eq!(a, b, "seed {seed} must be deterministic");
            assert!(!a.faults.is_empty());
            // Every generated spec must survive the canonical format.
            let rt = ChaosSpec::parse(&a.format()).unwrap();
            assert_eq!(rt, a, "seed {seed} must round-trip byte-identically");
        }
    }

    #[test]
    fn neighbouring_seeds_differ() {
        let a = random_spec(1);
        let b = random_spec(2);
        assert_ne!(a.format(), b.format());
    }

    #[test]
    fn windows_stay_inside_the_horizon() {
        for seed in 0..500 {
            let spec = random_spec(seed);
            for c in &spec.faults {
                assert!(c.start >= 0.0 && c.end <= spec.horizon && c.start < c.end);
            }
        }
    }
}
