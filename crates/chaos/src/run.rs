//! Executing one chaos scenario: the sweep substrate (topology, delay
//! model, rate schedules) with the fault schedule compiled onto it via
//! [`gcs_adversary::ChaosDelay`], observed by the invariant watchdog as the
//! online oracle.

use gcs_adversary::{apply_rate_faults, ChaosDelay};
use gcs_analysis::{InvariantWatchdog, SkewObserver, WatchdogViolation};
use gcs_core::{
    AOpt, AOptJump, EnvelopeAOpt, MaxAlgorithm, MidpointAlgorithm, MinGapAOpt, NoSync, Params,
};
use gcs_graph::Graph;
use gcs_sim::{Engine, EngineEvent, EventSink, MessageStats, Protocol, RecorderSink};
use gcs_sweep::{build_delay, build_rates, parse_topology, SweepDelay};
use gcs_time::{DriftBounds, RateSchedule};

use crate::spec::ChaosSpec;

/// Everything one scenario execution produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Nodes of the instantiated topology.
    pub nodes: usize,
    /// Diameter of the instantiated topology.
    pub diameter: u32,
    /// Effective horizon the execution ran to.
    pub horizon: f64,
    /// Worst pairwise logical skew observed.
    pub global_skew: f64,
    /// Worst neighbour logical skew observed.
    pub local_skew: f64,
    /// Theorem 5.5 global bound for these parameters.
    pub global_bound: f64,
    /// Theorem 5.10 local bound for these parameters.
    pub local_bound: f64,
    /// Engine message counters (per-cause drop attribution included).
    pub stats: MessageStats,
    /// The first invariant violation, if the watchdog tripped.
    pub violation: Option<WatchdogViolation>,
    /// Whether the schedule contains at least one clause that is *allowed*
    /// to break an invariant (out-of-model fault). A violation without such
    /// a clause is an **unexpected** violation — a finding.
    pub violation_expected: bool,
    /// The flight-recorder window at end of run, present only when the
    /// oracle tripped: the recent events leading up to the violation, in
    /// execution order, ready to dump as a JSONL forensic artifact.
    pub recorder_window: Option<Vec<EngineEvent>>,
}

impl ScenarioOutcome {
    /// A violation the fault taxonomy says should not have happened.
    pub fn unexpected(&self) -> bool {
        self.violation.is_some() && !self.violation_expected
    }
}

/// The oracle sink: exact skew observation plus the invariant watchdog,
/// with the flight recorder armed so a violation leaves a causal window.
struct OracleSinks {
    observer: SkewObserver,
    watchdog: InvariantWatchdog,
    recorder: RecorderSink,
}

impl EventSink for OracleSinks {
    fn record(&mut self, event: &EngineEvent) {
        self.recorder.record(event);
        self.watchdog.record(event);
    }

    fn wants_snapshots(&self) -> bool {
        true
    }

    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        self.observer.observe_clocks(t, clocks);
        self.watchdog.snapshot(t, clocks, queue_depth);
    }
}

fn exec<P: Protocol + Send>(
    graph: Graph,
    protocols: Vec<P>,
    delay: ChaosDelay<SweepDelay>,
    schedules: Vec<RateSchedule>,
    horizon: f64,
    threads: usize,
    sinks: OracleSinks,
) -> (OracleSinks, MessageStats)
where
    P::Msg: Send,
{
    let mut engine = Engine::builder(graph)
        .protocols(protocols)
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(sinks)
        .build();
    engine.wake_all_at(0.0);
    if threads >= 2 {
        // The parallel driver transparently falls back to the sequential
        // loop whenever the (chaos-degraded) lookahead promise cannot
        // justify a window — either way the observable execution is
        // byte-identical to `threads = 1`.
        engine.run_until_threaded(horizon, threads);
    } else {
        engine.run_until(horizon);
    }
    let stats = engine.message_stats().clone();
    (engine.into_sink(), stats)
}

/// Runs `spec` to completion and reports what the oracle saw.
///
/// The outcome is a pure function of the spec: topology randomness, delay
/// randomness, rate walks, and every fault coin-flip all derive from
/// `spec.seed`, and the engine guarantees `threads`-independence, so the
/// same spec reproduces the same outcome at any thread count.
pub fn run_scenario(spec: &ChaosSpec, threads: usize) -> Result<ScenarioOutcome, String> {
    let graph = parse_topology(&spec.topology, spec.seed)?;
    let n = graph.len();
    let d = graph.diameter();
    let drift = DriftBounds::new(spec.eps).map_err(|e| e.to_string())?;
    let params = match spec.sigma {
        Some(sigma) => Params::with_sigma(spec.eps, spec.t, sigma),
        None => Params::recommended(spec.eps, spec.t),
    }
    .map_err(|e| e.to_string())?;
    let (delay, min_horizon) = build_delay(&spec.delay, &graph, spec.t, spec.eps, spec.seed)?;
    let horizon = spec.horizon.max(min_horizon);
    let mut schedules = build_rates(&spec.rates, &graph, drift, horizon, spec.seed)?;
    apply_rate_faults(&mut schedules, &spec.faults)?;
    let delay = ChaosDelay::new(delay, spec.faults.clone(), spec.seed);
    let violation_expected = spec
        .faults
        .iter()
        .any(|c| c.violation_allowed(drift, Some(spec.t)));
    let sinks = OracleSinks {
        observer: SkewObserver::new(&graph),
        watchdog: InvariantWatchdog::new(&graph, params, drift),
        recorder: RecorderSink::new(),
    };

    macro_rules! run {
        ($protocols:expr) => {
            exec(graph, $protocols, delay, schedules, horizon, threads, sinks)
        };
    }
    let (sinks, stats) = match spec.algo.as_str() {
        "aopt" => run!(vec![AOpt::new(params); n]),
        "jump" => run!(vec![AOptJump::new(params); n]),
        "mingap" => run!(vec![MinGapAOpt::new(params); n]),
        "envelope" => run!(vec![EnvelopeAOpt::new(params); n]),
        "max" => run!(vec![MaxAlgorithm::new(1.0); n]),
        "midpoint" => run!(vec![MidpointAlgorithm::new(params.h0(), params.mu()); n]),
        "nosync" => run!(vec![NoSync; n]),
        other => return Err(format!("unknown algorithm `{other}`")),
    };

    let violation = sinks.watchdog.trip().map(|trip| trip.violation.clone());
    let recorder_window = violation.is_some().then(|| sinks.recorder.window_events());
    Ok(ScenarioOutcome {
        nodes: n,
        diameter: d,
        horizon,
        global_skew: sinks.observer.worst_global(),
        local_skew: sinks.observer.worst_local(),
        global_bound: params.global_skew_bound(d),
        local_bound: params.local_skew_bound(d),
        stats,
        violation,
        violation_expected,
        recorder_window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_adversary::FaultClause;

    fn spec_with(faults: &[&str]) -> ChaosSpec {
        ChaosSpec {
            topology: "path:6".into(),
            horizon: 40.0,
            seed: 11,
            faults: faults
                .iter()
                .map(|s| FaultClause::parse(s).unwrap())
                .collect(),
            ..ChaosSpec::default()
        }
    }

    #[test]
    fn fault_free_scenario_is_clean_and_reproducible() {
        let spec = spec_with(&[]);
        let a = run_scenario(&spec, 1).unwrap();
        let b = run_scenario(&spec, 1).unwrap();
        assert_eq!(a, b);
        assert!(a.violation.is_none());
        assert!(!a.violation_expected);
        assert!(a.global_skew <= a.global_bound + 1e-9);
    }

    #[test]
    fn in_model_faults_do_not_trip_the_oracle() {
        // Drops, duplicates, and a clog within 𝒯 are all in-model: A^opt's
        // invariants must hold, and a trip here would be a real finding.
        let spec = spec_with(&[
            "drop:5..20:*:0.3",
            "dup:0..40:*:1:0.05",
            "clog:10..25:*:0.2",
        ]);
        let out = run_scenario(&spec, 1).unwrap();
        assert!(!out.violation_expected);
        assert!(
            out.violation.is_none(),
            "unexpected violation: {:?}",
            out.violation
        );
        assert!(out.stats.dropped_faults > 0);
        assert!(out.stats.duplicated > 0);
    }

    #[test]
    fn out_of_model_rate_attack_trips_and_is_expected() {
        // Rate 0.9 under ε = 0.02 is far outside the drift bounds the
        // watchdog enforces: Condition (1)/(2) must break, and the fault
        // taxonomy must classify the violation as expected.
        let spec = spec_with(&["rate:5..40:0..1:0.9"]);
        let out = run_scenario(&spec, 1).unwrap();
        assert!(out.violation_expected);
        assert!(!out.unexpected());
        let v = out.violation.expect("rate attack must trip the watchdog");
        assert!(matches!(v.kind(), "envelope" | "progress"));
    }

    #[test]
    fn violations_carry_a_recorder_window() {
        let spec = spec_with(&["rate:5..40:0..1:0.9"]);
        let out = run_scenario(&spec, 1).unwrap();
        let window = out
            .recorder_window
            .as_ref()
            .expect("a tripped scenario must attach its recorder window");
        assert!(!window.is_empty());
        // Clean scenarios attach nothing — the window is a violation artifact.
        let clean = run_scenario(&spec_with(&[]), 1).unwrap();
        assert!(clean.recorder_window.is_none());
    }

    #[test]
    fn outcome_is_thread_count_independent() {
        // `const` delay has a positive floor, so threads=4 genuinely engages
        // the windowed parallel driver; chaos clauses degrade the promise
        // rather than breaking parity.
        let spec = spec_with(&["drop:5..15:*:0.2", "clog:8..20:*:0.15"]);
        let seq = run_scenario(&spec, 1).unwrap();
        let par = run_scenario(&spec, 4).unwrap();
        assert_eq!(seq, par, "threads must not change the observable outcome");
    }

    #[test]
    fn bad_specs_error_cleanly() {
        let mut spec = spec_with(&[]);
        spec.algo = "quantum".into();
        assert!(run_scenario(&spec, 1).is_err());
        let mut spec = spec_with(&[]);
        spec.topology = "moebius:5".into();
        assert!(run_scenario(&spec, 1).is_err());
    }
}
