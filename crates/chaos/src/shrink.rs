//! Automatic execution minimization: given a scenario whose oracle trips,
//! find a locally-minimal variant that still trips the *same kind* of
//! violation, re-executing deterministically at every step.
//!
//! Three reduction passes run to a joint fixpoint:
//!
//! 1. **Clause ddmin** — classic delta debugging over the fault schedule:
//!    try ever-finer complements until no whole clause can be dropped;
//! 2. **Window reduction** — per clause, repeatedly halve the duration
//!    (pull `end` in) and bisect the window (push `start` out);
//! 3. **Horizon trimming** — halve the run horizon toward just past the
//!    violation.
//!
//! Every candidate is accepted or rejected by a full deterministic
//! re-execution, so the result is a pure function of the input spec —
//! same input → byte-identical minimal reproducer, the property the CI
//! shrinker-determinism check pins.

use gcs_adversary::FaultClause;
use gcs_analysis::WatchdogViolation;

use crate::run::run_scenario;
use crate::spec::{ChaosSpec, ExpectedViolation};

/// A finished minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// The locally-minimal reproducer, with the reproduced violation
    /// recorded in `spec.violation` for replay verification.
    pub spec: ChaosSpec,
    /// The violation the minimal spec trips.
    pub violation: WatchdogViolation,
    /// Clauses in the input schedule.
    pub original_clauses: usize,
    /// Scenario executions spent shrinking (including the initial check).
    pub executions: usize,
}

/// Shrinks `spec` to a locally-minimal reproducer of its violation.
///
/// # Errors
///
/// Returns an error if the spec does not execute, or if it does not trip
/// the watchdog at all (nothing to shrink).
pub fn shrink(spec: &ChaosSpec, threads: usize) -> Result<ShrinkOutcome, String> {
    let mut executions = 0usize;
    let first = run_scenario(spec, threads)?;
    executions += 1;
    let Some(v0) = first.violation else {
        return Err("scenario does not trip the watchdog; nothing to shrink".into());
    };
    let kind = v0.kind();
    let original_clauses = spec.faults.len();

    let mut current = spec.clone();
    current.violation = None;
    // `fails` re-executes a candidate and accepts it iff the same kind of
    // violation still occurs. Candidates that fail to *run* (e.g. a clause
    // combination the substrate rejects) are simply not accepted.
    let mut fails = |cand: &ChaosSpec, executions: &mut usize| -> bool {
        *executions += 1;
        run_scenario(cand, threads)
            .ok()
            .and_then(|o| o.violation)
            .is_some_and(|v| v.kind() == kind)
    };

    // Pass 1: ddmin over whole clauses.
    current.faults = ddmin(
        &current,
        current.faults.clone(),
        &mut fails,
        &mut executions,
    );

    // Passes 2+3 loop with pass 1's greedy tail until nothing improves.
    loop {
        let mut improved = false;

        // Greedy single-clause drop (cheap re-check after window edits).
        let mut i = 0;
        while i < current.faults.len() {
            let mut cand = current.clone();
            cand.faults.remove(i);
            if fails(&cand, &mut executions) {
                current = cand;
                improved = true;
            } else {
                i += 1;
            }
        }

        // Window reduction per clause.
        for i in 0..current.faults.len() {
            loop {
                let FaultClause { start, end, .. } = current.faults[i];
                let mid = start + (end - start) / 2.0;
                if end - start <= 1.0 / 64.0 || mid <= start || mid >= end {
                    break;
                }
                // Halve the duration: [start, mid).
                let mut cand = current.clone();
                cand.faults[i].end = mid;
                if fails(&cand, &mut executions) {
                    current = cand;
                    improved = true;
                    continue;
                }
                // Bisect the window: [mid, end).
                let mut cand = current.clone();
                cand.faults[i].start = mid;
                if fails(&cand, &mut executions) {
                    current = cand;
                    improved = true;
                    continue;
                }
                break;
            }
        }

        // Horizon trimming.
        loop {
            let half = current.horizon / 2.0;
            if half < 1.0 {
                break;
            }
            let mut cand = current.clone();
            cand.horizon = half;
            if fails(&cand, &mut executions) {
                current = cand;
                improved = true;
            } else {
                break;
            }
        }

        if !improved {
            break;
        }
    }

    // Record the reproduced violation of the *minimal* spec so the fixture
    // carries its own replay oracle.
    let fin = run_scenario(&current, threads)?;
    executions += 1;
    let violation = fin
        .violation
        .expect("minimal spec accepted by the oracle must still trip");
    current.violation = Some(ExpectedViolation {
        kind: violation.kind().to_string(),
        node: violation.node(),
        t: violation.time(),
    });

    Ok(ShrinkOutcome {
        spec: current,
        violation,
        original_clauses,
        executions,
    })
}

/// Zeller-style ddmin over the clause list: returns a subset that still
/// fails and from which no chunk at the final granularity can be removed.
fn ddmin(
    base: &ChaosSpec,
    mut clauses: Vec<FaultClause>,
    fails: &mut impl FnMut(&ChaosSpec, &mut usize) -> bool,
    executions: &mut usize,
) -> Vec<FaultClause> {
    let with = |faults: Vec<FaultClause>| -> ChaosSpec {
        let mut s = base.clone();
        s.faults = faults;
        s
    };
    let mut n = 2usize;
    while clauses.len() >= 2 {
        let chunk = clauses.len().div_ceil(n);
        let mut reduced = false;
        // Try each complement (the list minus one chunk).
        let mut start = 0;
        while start < clauses.len() {
            let end = (start + chunk).min(clauses.len());
            let mut complement = clauses.clone();
            complement.drain(start..end);
            if !complement.is_empty() && fails(&with(complement.clone()), executions) {
                clauses = complement;
                n = 2.max(n - 1);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= clauses.len() {
                break;
            }
            n = (n * 2).min(clauses.len());
        }
    }
    // A single remaining clause: check the empty schedule too (the
    // violation might come from the substrate alone, e.g. a baseline
    // algorithm that breaks invariants fault-free).
    if clauses.len() == 1 && fails(&with(Vec::new()), executions) {
        clauses.clear();
    }
    clauses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChaosSpec;
    use gcs_adversary::FaultClause;

    /// The crafted violating scenario the acceptance criterion asks for: a
    /// rate attack far outside the drift bounds buried among harmless
    /// in-model clauses.
    fn crafted() -> ChaosSpec {
        let faults = [
            "drop:2..30:*:0.1",
            "dup:0..40:*:1:0.05",
            "clog:12..22:*:0.15",
            "rate:5..40:0..2:0.9",
            "flap:20..30:*:2:0.1",
        ]
        .iter()
        .map(|s| FaultClause::parse(s).unwrap())
        .collect();
        ChaosSpec {
            topology: "path:6".into(),
            horizon: 60.0,
            seed: 13,
            faults,
            ..ChaosSpec::default()
        }
    }

    #[test]
    fn shrink_isolates_the_guilty_clause() {
        let out = shrink(&crafted(), 1).unwrap();
        assert_eq!(out.original_clauses, 5);
        // Only the out-of-model rate attack can break Condition (1)/(2);
        // every in-model clause must be shrunk away.
        assert_eq!(
            out.spec.faults.len(),
            1,
            "minimal spec: {}",
            out.spec.format()
        );
        assert!(matches!(
            out.spec.faults[0].kind,
            gcs_adversary::FaultKind::Rate { .. }
        ));
        assert!(out.spec.horizon < 60.0, "horizon should have been trimmed");
        let v = out.spec.violation.as_ref().unwrap();
        assert!(v.kind == "envelope" || v.kind == "progress");
        assert!(out.executions > 5);
    }

    #[test]
    fn shrink_is_deterministic_byte_for_byte() {
        let a = shrink(&crafted(), 1).unwrap();
        let b = shrink(&crafted(), 1).unwrap();
        assert_eq!(a.spec.format(), b.spec.format());
        assert_eq!(a.executions, b.executions);
    }

    #[test]
    fn minimal_spec_is_locally_minimal() {
        let out = shrink(&crafted(), 1).unwrap();
        // Dropping the surviving clause must lose the violation.
        let mut cand = out.spec.clone();
        cand.faults.clear();
        cand.violation = None;
        let o = run_scenario(&cand, 1).unwrap();
        assert!(o.violation.is_none());
    }

    #[test]
    fn clean_scenarios_refuse_to_shrink() {
        let spec = ChaosSpec {
            topology: "path:4".into(),
            horizon: 20.0,
            ..ChaosSpec::default()
        };
        let err = shrink(&spec, 1).unwrap_err();
        assert!(err.contains("does not trip"));
    }
}
