//! The `.chaos` scenario document: one complete, self-contained experiment
//! — topology, algorithm, parameters, delay/rate substrate, seed, and the
//! fault schedule — in a line-oriented `key = value` format.
//!
//! The format is designed for **byte-identical round-trips**: `format` is
//! canonical (fixed key order, shortest-round-trip float `Display`, one
//! `fault =` line per clause), and `parse(format(spec)) == spec` exactly.
//! That property is what lets the shrinker promise "same seed →
//! byte-identical minimal reproducer" and lets committed fixtures be
//! diffed meaningfully.

use std::fmt::Write as _;

use gcs_adversary::FaultClause;

/// An expected (recorded) watchdog violation, written into shrunk fixtures
/// so `gcs chaos replay` can verify the exact same invariant re-trips.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedViolation {
    /// Violation tag: `envelope`, `progress`, or `legal`.
    pub kind: String,
    /// The (primary) offending node.
    pub node: usize,
    /// Real time of the violating sample.
    pub t: f64,
}

impl ExpectedViolation {
    fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split_whitespace().collect();
        match parts.as_slice() {
            [kind, "node", node, "t", t] => Ok(ExpectedViolation {
                kind: (*kind).to_string(),
                node: node
                    .parse()
                    .map_err(|_| format!("bad node in violation `{s}`"))?,
                t: t.parse()
                    .map_err(|_| format!("bad time in violation `{s}`"))?,
            }),
            _ => Err(format!(
                "bad violation `{s}` (expected `<kind> node <N> t <T>`)"
            )),
        }
    }

    fn format(&self) -> String {
        format!("{} node {} t {}", self.kind, self.node, self.t)
    }
}

/// One chaos scenario. Field syntax matches the sweep mini-language
/// ([`gcs_sweep`]'s `parse_topology` / `build_delay` / `build_rates`);
/// fault clauses use [`gcs_adversary::fault`]'s grammar.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Topology spec, e.g. `path:8`.
    pub topology: String,
    /// Algorithm name (one of [`gcs_sweep::ALGOS`]).
    pub algo: String,
    /// Maximum hardware drift ε.
    pub eps: f64,
    /// Delay bound 𝒯̂ the algorithm is parameterized with.
    pub t: f64,
    /// Optional explicit base σ (defaults to the recommended choice).
    pub sigma: Option<u32>,
    /// Delay-model spec, e.g. `const` or `uniform`.
    pub delay: String,
    /// Rate-schedule spec, e.g. `nominal` or `split`.
    pub rates: String,
    /// Real-time horizon to run to (extended if the delay model needs
    /// longer, exactly as in sweep jobs).
    pub horizon: f64,
    /// Master seed: topology randomness, delay randomness, rate walks, and
    /// every fault coin-flip derive from it.
    pub seed: u64,
    /// The fault schedule.
    pub faults: Vec<FaultClause>,
    /// Recorded violation for replay verification (shrunk fixtures carry
    /// one; hand-written scenarios usually don't).
    pub violation: Option<ExpectedViolation>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            topology: "path:8".into(),
            algo: "aopt".into(),
            eps: 0.02,
            t: 0.2,
            sigma: None,
            delay: "const".into(),
            rates: "nominal".into(),
            horizon: 60.0,
            seed: 0,
            faults: Vec::new(),
            violation: None,
        }
    }
}

impl ChaosSpec {
    /// Parses a `.chaos` document. Unknown keys are errors (a typoed key
    /// silently falling back to a default would change the scenario);
    /// missing keys take the [`ChaosSpec::default`] values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = ChaosSpec::default();
        let mut faults = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: bad {what} `{value}`", lineno + 1);
            match key {
                "topology" => spec.topology = value.to_string(),
                "algo" => spec.algo = value.to_string(),
                "eps" => spec.eps = value.parse().map_err(|_| bad("eps"))?,
                "t" => spec.t = value.parse().map_err(|_| bad("t"))?,
                "sigma" => spec.sigma = Some(value.parse().map_err(|_| bad("sigma"))?),
                "delay" => spec.delay = value.to_string(),
                "rates" => spec.rates = value.to_string(),
                "horizon" => spec.horizon = value.parse().map_err(|_| bad("horizon"))?,
                "seed" => spec.seed = value.parse().map_err(|_| bad("seed"))?,
                "fault" => faults.push(
                    FaultClause::parse(value).map_err(|e| format!("line {}: {e}", lineno + 1))?,
                ),
                "violation" => {
                    spec.violation = Some(
                        ExpectedViolation::parse(value)
                            .map_err(|e| format!("line {}: {e}", lineno + 1))?,
                    )
                }
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        spec.faults = faults;
        Ok(spec)
    }

    /// Renders the canonical document form: fixed key order, every float in
    /// shortest-round-trip `Display`, trailing newline. `parse ∘ format`
    /// is the identity, and `format ∘ parse` is idempotent.
    pub fn format(&self) -> String {
        let mut out = String::from("# gcs chaos scenario (format v1)\n");
        let _ = writeln!(out, "topology = {}", self.topology);
        let _ = writeln!(out, "algo = {}", self.algo);
        let _ = writeln!(out, "eps = {}", self.eps);
        let _ = writeln!(out, "t = {}", self.t);
        if let Some(sigma) = self.sigma {
            let _ = writeln!(out, "sigma = {sigma}");
        }
        let _ = writeln!(out, "delay = {}", self.delay);
        let _ = writeln!(out, "rates = {}", self.rates);
        let _ = writeln!(out, "horizon = {}", self.horizon);
        let _ = writeln!(out, "seed = {}", self.seed);
        for clause in &self.faults {
            let _ = writeln!(out, "fault = {clause}");
        }
        if let Some(v) = &self.violation {
            let _ = writeln!(out, "violation = {}", v.format());
        }
        out
    }

    /// The one-command reproduction line for this scenario stored at
    /// `path`.
    pub fn repro_line(path: &str) -> String {
        format!("gcs chaos replay {path}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_then_parse_is_identity() {
        let spec = ChaosSpec {
            topology: "ring:9".into(),
            algo: "jump".into(),
            eps: 0.05,
            t: 0.25,
            sigma: Some(2),
            delay: "uniform".into(),
            rates: "split".into(),
            horizon: 42.5,
            seed: 987654321,
            faults: vec![
                FaultClause::parse("drop:1..9:0-1/2-3:0.25").unwrap(),
                FaultClause::parse("partition:5..20:0..4").unwrap(),
                FaultClause::parse("rate:3..7:2/5:0.9").unwrap(),
            ],
            violation: Some(ExpectedViolation {
                kind: "legal".into(),
                node: 3,
                t: 12.625,
            }),
        };
        let text = spec.format();
        let parsed = ChaosSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec);
        // Idempotent canonical form: re-formatting changes nothing.
        assert_eq!(parsed.format(), text);
    }

    #[test]
    fn missing_keys_take_defaults_and_comments_are_ignored() {
        let spec = ChaosSpec::parse("# a comment\n\nseed = 7\nfault = crash:0..5:1/2\n").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.topology, "path:8");
        assert_eq!(spec.faults.len(), 1);
        assert!(spec.violation.is_none());
    }

    #[test]
    fn bad_documents_are_rejected_with_line_numbers() {
        assert!(ChaosSpec::parse("bogus line")
            .unwrap_err()
            .contains("line 1"));
        assert!(ChaosSpec::parse("warp = 9")
            .unwrap_err()
            .contains("unknown key"));
        assert!(ChaosSpec::parse("eps = fast")
            .unwrap_err()
            .contains("bad eps"));
        assert!(ChaosSpec::parse("fault = melt:0..1:*")
            .unwrap_err()
            .contains("line 1"));
        assert!(ChaosSpec::parse("violation = legal at 3").is_err());
    }

    #[test]
    fn float_display_round_trips_exactly() {
        // The shrinker halves durations; halving produces exact binary
        // floats whose Display round-trips bit-for-bit.
        let mut spec = ChaosSpec {
            horizon: 60.0,
            ..ChaosSpec::default()
        };
        for _ in 0..20 {
            spec.horizon /= 2.0;
            let rt = ChaosSpec::parse(&spec.format()).unwrap();
            assert_eq!(rt.horizon.to_bits(), spec.horizon.to_bits());
        }
    }
}
