//! Replay every committed `.chaos` fixture and verify each reproduces its
//! recorded violation exactly — the in-tree equivalent of running
//! `gcs chaos replay` over `tests/fixtures/chaos/`, plus the CI
//! shrinker-determinism pin: re-shrinking the crafted example scenario
//! must regenerate the committed fixture byte-for-byte.

use std::path::PathBuf;

use gcs_chaos::{run_scenario, shrink, ChaosSpec};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn load(path: &std::path::Path) -> ChaosSpec {
    let text = std::fs::read_to_string(path).unwrap();
    ChaosSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn every_committed_fixture_replays_its_recorded_violation() {
    let dir = repo_root().join("tests/fixtures/chaos");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "chaos") {
            continue;
        }
        let spec = load(&path);
        let recorded = spec
            .violation
            .clone()
            .unwrap_or_else(|| panic!("{}: fixture has no recorded violation", path.display()));
        for threads in [1, 4] {
            let out = run_scenario(&spec, threads).unwrap();
            let got = out
                .violation
                .unwrap_or_else(|| panic!("{}: no violation at threads={threads}", path.display()));
            assert_eq!(got.kind(), recorded.kind, "{}", path.display());
            assert_eq!(got.node(), recorded.node, "{}", path.display());
            assert_eq!(
                got.time().to_bits(),
                recorded.t.to_bits(),
                "{}: t {} != recorded {} at threads={threads}",
                path.display(),
                got.time(),
                recorded.t
            );
        }
        checked += 1;
    }
    assert!(checked > 0, "no fixtures found under {}", dir.display());
}

#[test]
fn shrinking_the_crafted_example_regenerates_the_committed_fixture() {
    let root = repo_root();
    let example = load(&root.join("examples/chaos/rate_attack.chaos"));
    let committed =
        std::fs::read_to_string(root.join("tests/fixtures/chaos/rate_attack.min.chaos")).unwrap();
    let out = shrink(&example, 1).unwrap();
    assert_eq!(
        out.spec.format(),
        committed,
        "shrinker output drifted from the committed minimal reproducer"
    );
    // The acceptance-shape assertions: the five-clause schedule collapses
    // to the single out-of-model rate attack.
    assert_eq!(out.original_clauses, 5);
    assert_eq!(out.spec.faults.len(), 1);
}
