//! Watchdog-as-oracle coverage for partitions that heal.
//!
//! A partition is an out-of-model fault (the paper assumes every message
//! arrives within 𝒯̂), so the Definition 5.6 legal-state invariant is
//! *allowed* to break while it lasts — whether it actually does depends on
//! how long the halves drift apart. These tests pin both sides of that
//! line, deterministically, at `threads = 1` **and** `threads = 4` (the
//! chaos layer must degrade the parallel engine's lookahead promise, never
//! break replay parity).

use gcs_adversary::FaultClause;
use gcs_chaos::{run_scenario, ChaosSpec};

/// `path:8` under `const` delay (positive delay floor, so `threads = 4`
/// genuinely engages the windowed parallel driver) with `split` rates
/// (the fast half drifts at `1 + ε` against the slow half's `1 − ε`).
fn partition_spec(start: f64, end: f64, horizon: f64) -> ChaosSpec {
    ChaosSpec {
        topology: "path:8".into(),
        algo: "aopt".into(),
        eps: 0.02,
        t: 0.2,
        delay: "const".into(),
        rates: "split".into(),
        horizon,
        seed: 5,
        faults: vec![FaultClause::parse(&format!("partition:{start}..{end}:0..4")).unwrap()],
        ..ChaosSpec::default()
    }
}

#[test]
fn long_partition_trips_legal_state_then_heals() {
    // Cut the path for 75 time units: the halves drift ~2ε · 75 = 3.0
    // apart, far beyond the Def. 5.6 neighbour bound at the cut edge, and
    // A^opt cannot correct across a severed edge. The watchdog must trip —
    // and the violation must be classified as expected (out-of-model).
    let spec = partition_spec(5.0, 80.0, 100.0);
    let out = run_scenario(&spec, 1).unwrap();
    let v = out
        .violation
        .as_ref()
        .expect("a 75-unit partition must break the legal state");
    assert_eq!(v.kind(), "legal");
    assert!(out.violation_expected, "partitions are out-of-model");
    assert!(!out.unexpected());
    // The trip happens while the partition is open, not after the heal.
    assert!(
        v.time() > 5.0 && v.time() < 80.0,
        "tripped at t={}",
        v.time()
    );
}

#[test]
fn long_partition_outcome_is_identical_across_thread_counts() {
    let spec = partition_spec(5.0, 80.0, 100.0);
    let seq = run_scenario(&spec, 1).unwrap();
    let par = run_scenario(&spec, 4).unwrap();
    assert_eq!(seq, par, "partition chaos must preserve engine parity");
    // Same violation, bit-for-bit.
    let (a, b) = (seq.violation.unwrap(), par.violation.unwrap());
    assert_eq!(a.kind(), b.kind());
    assert_eq!(a.node(), b.node());
    assert_eq!(a.time().to_bits(), b.time().to_bits());
}

#[test]
fn short_partition_that_heals_early_never_trips() {
    // The same cut held only 5 time units: the halves drift at most
    // ~2ε · 5 = 0.2 apart — comfortably inside the legal-state bound —
    // and after the heal A^opt re-converges. Provably no trip, at either
    // thread count.
    let spec = partition_spec(5.0, 10.0, 100.0);
    let seq = run_scenario(&spec, 1).unwrap();
    let par = run_scenario(&spec, 4).unwrap();
    assert_eq!(seq, par);
    assert!(
        seq.violation.is_none(),
        "short heal must stay legal: {:?}",
        seq.violation
    );
    assert!(seq.global_skew <= seq.global_bound + 1e-9);
}

#[test]
fn messages_resume_after_the_heal() {
    // Drop accounting proves the partition was real and that traffic
    // resumed: the cut edge drops messages only inside the window.
    let spec = partition_spec(5.0, 80.0, 100.0);
    let out = run_scenario(&spec, 1).unwrap();
    assert!(out.stats.dropped_faults > 0, "the cut must drop messages");
    assert_eq!(out.stats.dropped_model, 0);
    let healed = partition_spec(5.0, 10.0, 100.0);
    let healed_out = run_scenario(&healed, 1).unwrap();
    assert!(
        healed_out.stats.dropped_faults < out.stats.dropped_faults,
        "a shorter cut must drop fewer messages"
    );
}
