//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Provides [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`] and
//! [`black_box`], reporting median wall-clock time per iteration on stdout.
//! No statistical analysis, plots, or baselines — just enough to keep the
//! workspace's micro-benchmarks runnable in an offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// `(median, min)` over the collected samples.
    fn stats(&self) -> Option<(Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some((sorted[sorted.len() / 2], sorted[0]))
    }
}

fn run_one(
    id: &str,
    sample_count: usize,
    f: &mut dyn FnMut(&mut Bencher),
) -> Option<(Duration, Duration)> {
    let mut bencher = Bencher::new(sample_count);
    f(&mut bencher);
    match bencher.stats() {
        Some((median, min)) => {
            println!(
                "bench {id:<40} median {median:>12.3?} min {min:>12.3?} ({sample_count} samples)"
            );
            Some((median, min))
        }
        None => {
            println!("bench {id:<40} (no samples)");
            None
        }
    }
}

/// One completed measurement (an offline extension — real criterion
/// persists results under `target/criterion` instead of exposing them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` for grouped benches).
    pub id: String,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Fastest sample — the most load-robust point estimate a shared
    /// machine can give, so the right numerator for overhead ratios.
    pub min: Duration,
    /// Samples taken.
    pub samples: usize,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_count: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Modest default so `cargo bench` stays quick without statistics.
        Criterion {
            sample_count: 15,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (by-value builder, as in
    /// real criterion — enables `Criterion::default().sample_size(n)` in
    /// `criterion_group!` config expressions).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(1);
        self
    }

    /// Drains the measurements recorded so far, in run order. Lets a bench
    /// with a hand-written `main` export machine-readable results (e.g.
    /// `BENCH_*.json`) after running its groups.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn record(&mut self, id: &str, samples: usize, stats: Option<(Duration, Duration)>) {
        if let Some((median, min)) = stats {
            self.results.push(BenchResult {
                id: id.to_string(),
                median,
                min,
                samples,
            });
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let stats = run_one(id, self.sample_count, &mut f);
        self.record(id, self.sample_count, stats);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_count: None,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(1));
        self
    }

    /// Sets a target measurement time; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, id);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let stats = run_one(&id, samples, &mut f);
        self.criterion.record(&id, samples, stats);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u64;
        c.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert_eq!(count, 3);
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "counter");
        assert_eq!(results[0].samples, 3);
        assert!(c.take_results().is_empty(), "take_results drains");
    }

    #[test]
    fn batched_separates_setup_from_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| {
                    runs += 1;
                    x
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 4);
        assert_eq!(runs, 4);
    }
}
