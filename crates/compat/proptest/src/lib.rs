//! Offline drop-in subset of `proptest`.
//!
//! Supports what this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header),
//! * numeric range strategies (`0usize..40`, `0.0f64..1.0`, `0.0..=1.0`),
//! * tuple strategies, [`collection::vec`](crate::collection::vec),
//!   [`Just`], and [`Strategy::prop_map`],
//! * [`prop_oneof!`] (unweighted) and
//!   [`sample::select`](crate::sample::select),
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! file: each case derives deterministically from the test name and case
//! index, so a failure always reproduces under `cargo test` and the
//! panic message identifies the failing case's generated inputs.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub use rand_chacha::ChaCha8Rng as TestRng;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Leaner than upstream's 256: these tests run in CI on every push.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of an associated type.
///
/// This subset drops shrinking: a strategy is just a seeded generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
    (A, B, C, D, E, F, G, H, I, J, K);
    (A, B, C, D, E, F, G, H, I, J, K, L);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `len` on each case.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose lengths fall in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Strategy drawing uniformly from a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Generates values drawn uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Strategy produced by [`prop_oneof!`]: draws a branch uniformly, then a
/// value from that branch.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Builds the union; use through [`prop_oneof!`].
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rand::Rng::gen_range(rng, 0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy for [`Union`]; used by [`prop_oneof!`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Unweighted subset of upstream's `prop_oneof!`: draws each case from one
/// of the listed strategies, chosen uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union::new(vec![ $($crate::boxed($strat)),+ ])
    };
}

/// Namespace mirror of upstream's `proptest::prelude::prop`.
pub mod strategy_ns {
    pub use crate::{collection, sample};
}

/// Runs one property over `cases` generated inputs.
///
/// Not part of the public API surface tests should use directly; the
/// [`proptest!`] macro calls it.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut body: impl FnMut(S::Value),
) {
    // Deterministic per-test seed: FNV-1a over the property name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..config.cases as u64 {
        let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(seed.wrapping_add(case));
        let value = strategy.generate(&mut rng);
        let description = format!("{value:?}");
        let guard = CaseGuard {
            name,
            case,
            description,
        };
        body(value);
        std::mem::forget(guard);
    }
}

/// Prints the failing case on unwind so failures are reproducible by eye.
struct CaseGuard<'a> {
    name: &'a str,
    case: u64,
    description: String,
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        eprintln!(
            "proptest: property `{}` failed at case #{} with input {}",
            self.name, self.case, self.description
        );
    }
}

/// The property-test entry point macro.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0u64..100, (a, b) in (0.0f64..1.0, 0.0f64..1.0)) {
///         prop_assert!(x < 100);
///         prop_assert_eq!(a.min(b), b.min(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ( $($strat,)+ );
            $crate::run_property(
                stringify!($name),
                &config,
                &strategy,
                |( $($pat,)+ )| { $body },
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Mirror of upstream's `prop` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..1.0, 1.0f64..2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in pair()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < b);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0i64..5, 2..6).prop_map(|v| v.len())) {
            prop_assert!((2..6).contains(&v));
        }

        #[test]
        fn just_yields_its_value(x in Just(41)) {
            prop_assert_eq!(x + 1, 42);
        }

        #[test]
        fn oneof_and_select(x in prop_oneof![
            0.0f64..1.0,
            prop::sample::select(vec![5.0, 7.0]),
        ]) {
            prop_assert!((0.0..1.0).contains(&x) || x == 5.0 || x == 7.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_property("det", &ProptestConfig::with_cases(10), &(0u64..1000), |v| {
            first.push(v)
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_property("det", &ProptestConfig::with_cases(10), &(0u64..1000), |v| {
            second.push(v)
        });
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != first[0]));
    }
}
