//! Offline drop-in subset of the `rand 0.8` API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *small* slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_range` / `gen_bool` over primitive integer and float ranges.
//!
//! The implementation is deliberately simple and fully deterministic; it is
//! **not** a cryptographic library and must never be used as one. Uniform
//! sampling follows the same widely used recipes as upstream `rand`
//! (rejection sampling for integers, 53-bit mantissa scaling for floats),
//! though the concrete streams differ from upstream — everything in this
//! repository only relies on determinism, not on upstream-exact values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; this subset only supports [`seed_from_u64`]
/// (the one constructor the workspace uses).
///
/// [`seed_from_u64`]: SeedableRng::seed_from_u64
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64
    /// exactly like upstream `rand`'s default `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
        // Compare against a uniform f64 in [0, 1); p = 1.0 always passes
        // because the draw is strictly below 1.
        uniform_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` below `bound` by rejection sampling (unbiased).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = uniform_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Scale a 53-bit draw over [0, 1]; the endpoint is reachable.
                let u = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            let v = splitmix64(&mut s);
            self.0 = s;
            v
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Fixed(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Fixed(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = Fixed(1);
        assert_eq!(rng.gen_range(4u64..=4), 4);
    }
}
