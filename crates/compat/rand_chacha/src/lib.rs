//! Offline drop-in subset of `rand_chacha`: [`ChaCha8Rng`].
//!
//! Implements the genuine ChaCha stream cipher core with 8 rounds as the
//! word generator. Only determinism matters to this workspace — the concrete
//! stream is *not* guaranteed to match upstream `rand_chacha` (which applies
//! a different seed expansion), and this crate makes no security claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A deterministic RNG driven by the ChaCha block function with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher state: constants, 8 key words, block counter, 3 nonce words.
    state: [u32; 16],
    /// Buffered output of the current block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Creates a generator from a 32-byte key.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // state[12] is the block counter, state[13..16] the nonce (zero).
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Two rounds per iteration: one column round, one diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter across words 12 and 13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand with SplitMix64, the same recipe upstream `rand` documents
        // for its default `seed_from_u64`.
        let mut s = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniformish_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
