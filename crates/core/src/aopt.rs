//! The `A^opt` algorithm (paper Section 4, Algorithms 1–4).
//!
//! Every node maintains:
//!
//! * its logical clock `L_v`, run at `ρ_v · h_v` with `ρ_v ∈ {1, 1 + μ}`,
//! * `L_v^max` — its estimate of the largest clock value in the system,
//!   advanced at the hardware rate between updates (represented here as a
//!   constant offset from `H_v`),
//! * per heard-from neighbour `w`: the estimate `L_v^w` (also advanced at
//!   the hardware rate; a constant offset from `H_v`) and `ℓ_v^w`, the
//!   largest raw clock value received from `w` (static between messages).
//!
//! Events:
//!
//! * **Algorithm 1** — when `L_v^max` reaches an integer multiple of `H₀`,
//!   broadcast `⟨L_v, L_v^max⟩` (timer slot [`AOpt::SEND_TIMER`]).
//! * **Algorithm 2** — on receiving `⟨L_w, L_w^max⟩`: adopt and immediately
//!   forward a strictly larger `L_w^max`; adopt a larger `L_w` into
//!   `L_v^w`/`ℓ_v^w`; recompute `Λ↑`, `Λ↓`; call `setClockRate`.
//! * **Algorithm 3** — `setClockRate` (see [`crate::rate_rule`]) decides the
//!   multiplier and, if `R_v > 0`, the hardware value `H_v^R = H_v + R_v/μ`
//!   at which to fall back to the nominal rate.
//! * **Algorithm 4** — when `H_v` reaches `H_v^R`, reset `ρ_v := 1` (timer
//!   slot [`AOpt::RATE_TIMER`]).
//!
//! Initialization follows the paper's scheme: a node waking spontaneously
//! sends `⟨0, 0⟩`; a node initialized by its first received message starts
//! its clocks at 0 and processes that message (forwarding a larger estimate
//! immediately). Until a first message from a neighbour arrives, the node is
//! oblivious to that neighbour.

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::Params;

/// Sentinel for "no tracked entry" in the incremental Λ fold caches.
const NO_ENTRY: u32 = u32::MAX;

/// The synchronization message `⟨L_v, L_v^max⟩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AOptMsg {
    /// The sender's logical clock value at send time.
    pub logical: f64,
    /// The sender's maximum-clock estimate at send time (an integer multiple
    /// of `H₀`).
    pub lmax: f64,
}

/// Per-neighbour bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
struct NeighborEstimate {
    /// `L_v^w − H_v`: the estimate advances at the hardware rate, so its
    /// offset from the hardware clock is constant between messages.
    offset: f64,
    /// `ℓ_v^w`: largest raw clock value received from `w` (monotone guard —
    /// only more recent, larger values update the estimate).
    ell: f64,
}

/// The `A^opt` protocol state of one node.
///
/// # Example
///
/// ```
/// use gcs_core::{AOpt, Params};
/// use gcs_graph::topology;
/// use gcs_sim::{ConstantDelay, Engine};
///
/// let params = Params::recommended(1e-3, 0.1)?;
/// let graph = topology::path(4);
/// let mut engine = Engine::builder(graph)
///     .protocols(vec![AOpt::new(params); 4])
///     .delay_model(ConstantDelay::new(0.05))
///     .build();
/// engine.wake(gcs_graph::NodeId(0), 0.0);
/// engine.run_until(50.0);
/// let clocks = engine.logical_values();
/// let spread = clocks.iter().cloned().fold(f64::MIN, f64::max)
///     - clocks.iter().cloned().fold(f64::MAX, f64::min);
/// assert!(spread <= params.global_skew_bound(3));
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AOpt {
    params: Params,
    logical: LogicalClock,
    /// `L_v^max − H_v` (constant between updates); `None` before start.
    lmax_offset: Option<f64>,
    /// Index of the next `H₀` multiple at which to send (Algorithm 1).
    next_multiple: u64,
    /// Per-neighbour estimates, keyed by a linear scan: node degrees are
    /// small, so this beats hashing on the engine's per-message hot path
    /// (and the skew folds over it are order-insensitive `max`es).
    estimates: Vec<(NodeId, NeighborEstimate)>,
    /// Index into `estimates` of the entry with the **largest** fold key
    /// (see [`AOpt::fold_key`]) — the argmax behind `Λ↑`. Incrementally
    /// maintained: entries only mutate in `on_message`, and between
    /// messages every estimate advances by the same hardware offset, so
    /// the cached argmax stays the argmax and yields a `Λ↑` bit-identical
    /// to the linear fold. [`NO_ENTRY`] until a neighbour is heard from.
    arg_hi: u32,
    /// Argmin twin of `arg_hi` (the entry behind `Λ↓`).
    arg_lo: u32,
    /// `H_v^R` while the fast mode is armed (diagnostics only; the timer is
    /// authoritative).
    h_r: Option<f64>,
    /// Count of messages this node broadcast (diagnostics).
    sends: u64,
    /// When set, apply positive `R_v` as an instantaneous jump instead of a
    /// bounded-rate boost (the `β = ∞` regime discussed after Theorem 5.10);
    /// used by [`crate::AOptJump`].
    pub(crate) jump_mode: bool,
    /// Ablation switch: when set, neighbour estimates are *not* advanced at
    /// the hardware rate between messages (they stay at the raw received
    /// value `ℓ_v^w`). See [`AOpt::with_frozen_estimates`].
    freeze_estimates: bool,
}

impl AOpt {
    /// Timer slot for the Algorithm 1 send trigger.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);

    /// Creates a node with the given parameters.
    pub fn new(params: Params) -> Self {
        AOpt {
            params,
            logical: LogicalClock::new(),
            lmax_offset: None,
            next_multiple: 1,
            estimates: Vec::new(),
            arg_hi: NO_ENTRY,
            arg_lo: NO_ENTRY,
            h_r: None,
            sends: 0,
            jump_mode: false,
            freeze_estimates: false,
        }
    }

    /// Ablated variant for the `a2_estimate_ablation` experiment: neighbour
    /// estimates are frozen at the raw received values instead of advancing
    /// at the hardware rate (Algorithm 2's bookkeeping). The paper's κ
    /// (Eq. 4) assumes advancing estimates; freezing them inflates the
    /// staleness from `𝒪(𝒯 + H̄₀)` to `𝒪(𝒯 + H₀)` and the skew with it.
    /// Never use this to *run* a deployment.
    pub fn with_frozen_estimates(params: Params) -> Self {
        AOpt {
            freeze_estimates: true,
            ..Self::new(params)
        }
    }

    /// The parameters this node runs with.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The maximum-clock estimate `L_v^max` when the hardware clock reads
    /// `hw` (0 before initialization).
    pub fn lmax_value(&self, hw: f64) -> f64 {
        match self.lmax_offset {
            Some(offset) => hw + offset,
            None => 0.0,
        }
    }

    /// The estimate `L_v^w` of neighbour `w`'s clock at hardware reading
    /// `hw`, if a message from `w` has been received.
    pub fn neighbor_estimate(&self, w: NodeId, hw: f64) -> Option<f64> {
        self.estimates
            .iter()
            .find(|&&(v, _)| v == w)
            .map(|(_, e)| hw + e.offset)
    }

    /// The current rate multiplier `ρ_v`.
    pub fn multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }

    /// Number of broadcasts this node performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The estimate value for one neighbour entry (honours the ablation
    /// switch: frozen estimates stay at the raw `ℓ_v^w`).
    fn estimate_value(&self, e: &NeighborEstimate, hw: f64) -> f64 {
        if self.freeze_estimates {
            e.ell
        } else {
            hw + e.offset
        }
    }

    /// The key the incremental Λ trackers order entries by: `offset`, or
    /// the raw `ℓ_v^w` under [`AOpt::with_frozen_estimates`]. At any
    /// hardware reading the estimate value is `hw + offset` (resp. `ell`
    /// itself) — a weakly monotone function of this key — so the entry
    /// with the largest (smallest) key realizes the maximal (minimal)
    /// estimate, and `Λ↑`/`Λ↓` computed from the winners are **bit-for-bit**
    /// the linear fold's values: the winning entry's contribution is the
    /// exact expression the fold would have evaluated for it.
    fn fold_key(&self, e: &NeighborEstimate) -> f64 {
        if self.freeze_estimates {
            e.ell
        } else {
            e.offset
        }
    }

    /// Re-points the Λ tracker caches after `estimates[i]` moved away from
    /// `old_key`. O(1) except when the updated entry owned a cache and
    /// moved *against* it (its decrease-path), which rescans the neighbour
    /// table — rare in steady state, making a wake O(1) amortized instead
    /// of the old per-wake O(deg) fold.
    fn note_estimate_update(&mut self, i: usize, old_key: f64) {
        let new_key = self.fold_key(&self.estimates[i].1);
        let i = i as u32;
        if self.arg_hi == NO_ENTRY {
            self.arg_hi = i;
            self.arg_lo = i;
            return;
        }
        if i == self.arg_hi {
            if new_key < old_key {
                self.rescan_trackers();
                return;
            }
        } else if new_key > self.fold_key(&self.estimates[self.arg_hi as usize].1) {
            self.arg_hi = i;
        }
        if i == self.arg_lo {
            if new_key > old_key {
                self.rescan_trackers();
            }
        } else if new_key < self.fold_key(&self.estimates[self.arg_lo as usize].1) {
            self.arg_lo = i;
        }
    }

    /// Full O(deg) rescan of both trackers (the owning entry's
    /// decrease-path fallback).
    fn rescan_trackers(&mut self) {
        let (mut hi, mut lo) = (0u32, 0u32);
        let (mut hi_key, mut lo_key) = (f64::NEG_INFINITY, f64::INFINITY);
        for (idx, (_, e)) in self.estimates.iter().enumerate() {
            let k = self.fold_key(e);
            if k > hi_key {
                hi_key = k;
                hi = idx as u32;
            }
            if k < lo_key {
                lo_key = k;
                lo = idx as u32;
            }
        }
        self.arg_hi = hi;
        self.arg_lo = lo;
    }

    /// `Λ↑ = max_w (L_v^w − L_v)` over heard-from neighbours; `None` if none.
    pub fn lambda_up(&self, hw: f64) -> Option<f64> {
        let l = self.logical.value_at_hw(hw);
        self.estimates
            .iter()
            .map(|(_, e)| self.estimate_value(e, hw) - l)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// `Λ↓ = max_w (L_v − L_v^w)` over heard-from neighbours; `None` if none.
    pub fn lambda_down(&self, hw: f64) -> Option<f64> {
        let l = self.logical.value_at_hw(hw);
        self.estimates
            .iter()
            .map(|(_, e)| l - self.estimate_value(e, hw))
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// `(Λ↑, Λ↓)` in O(1) from the incremental trackers — the hot-path
    /// counterpart of [`AOpt::lambda_up`]/[`AOpt::lambda_down`], which
    /// retain the linear scan and serve as the oracle the trackers are
    /// property-tested against. `None` before any neighbour is heard from.
    pub fn lambda_pair(&self, hw: f64) -> Option<(f64, f64)> {
        if self.estimates.is_empty() {
            return None;
        }
        let l = self.logical.value_at_hw(hw);
        let hi = self.estimates[self.arg_hi as usize].1;
        let lo = self.estimates[self.arg_lo as usize].1;
        Some((
            self.estimate_value(&hi, hw) - l,
            l - self.estimate_value(&lo, hw),
        ))
    }

    /// Algorithm 2, lines 5–7: adopt a larger (hence more recent) clock
    /// value of `from` received when this node's hardware clock read `hw`,
    /// and re-point the incremental Λ trackers. Factored out of
    /// [`Protocol::on_message`] so tracker property tests can drive
    /// randomized estimate-update/wake sequences without an engine.
    pub fn record_estimate(&mut self, from: NodeId, logical: f64, hw: f64) {
        let idx = match self.estimates.iter().position(|&(v, _)| v == from) {
            Some(i) => i,
            None => {
                self.estimates.push((
                    from,
                    NeighborEstimate {
                        offset: f64::NEG_INFINITY,
                        ell: f64::NEG_INFINITY,
                    },
                ));
                self.estimates.len() - 1
            }
        };
        let old_key = self.fold_key(&self.estimates[idx].1);
        let entry = &mut self.estimates[idx].1;
        if logical > entry.ell {
            entry.ell = logical;
            entry.offset = logical - hw;
            self.note_estimate_update(idx, old_key);
        }
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, AOptMsg>, lmax: f64) {
        let logical = self.logical.value_at_hw(ctx.hw());
        self.sends += 1;
        ctx.send_all(AOptMsg { logical, lmax });
    }

    /// Re-arms the Algorithm 1 send trigger for the next multiple of `H₀`
    /// not yet reached by `L_v^max`.
    fn schedule_send(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let h0 = self.params.h0();
        let lmax = self.lmax_value(ctx.hw());
        // Next strictly-future multiple (tolerating FP error at an exact hit).
        let k = (lmax / h0 + 1e-9).floor() as u64 + 1;
        self.next_multiple = k;
        let offset = self.lmax_offset.expect("scheduled only after start");
        // L_v^max = H_v + offset reaches k·H₀ when H_v = k·H₀ − offset.
        ctx.set_timer(Self::SEND_TIMER, k as f64 * h0 - offset);
    }

    /// Algorithm 3: `setClockRate`.
    fn set_clock_rate(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        // Λ↑ and Λ↓ from the incrementally tracked arg-extremes instead of
        // a per-wake O(deg) fold (this runs on every delivery). The
        // arithmetic on the winning entries is exactly `lambda_up` /
        // `lambda_down`'s — see `fold_key` for why the values are
        // bit-identical; the linear folds stay as the oracle. No neighbour
        // heard from yet means no skew information: stay nominal (but the
        // κ-tolerance toward L_v^max still applies below via Λ↓ = 0,
        // Λ↑ = 0 — the paper's line 2 uses max{κ − Λ↓, ·}).
        let (lambda_up, lambda_down) = match self.lambda_pair(hw) {
            Some((up, down)) => {
                debug_assert_eq!(Some(up), self.lambda_up(hw));
                debug_assert_eq!(Some(down), self.lambda_down(hw));
                (up, down)
            }
            None => (0.0, 0.0),
        };
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(lambda_up, lambda_down, self.params.kappa(), headroom);
        if self.jump_mode {
            if r > 0.0 {
                self.logical.jump(hw, r);
            }
            return;
        }
        if r > 0.0 {
            self.logical.set_multiplier(hw, 1.0 + self.params.mu());
            let h_r = hw + r / self.params.mu();
            self.h_r = Some(h_r);
            ctx.set_timer(Self::RATE_TIMER, h_r);
        } else {
            self.logical.set_multiplier(hw, 1.0);
            self.h_r = None;
            ctx.cancel_timer(Self::RATE_TIMER);
        }
    }
}

impl Protocol for AOpt {
    type Msg = AOptMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        debug_assert_eq!(hw, 0.0, "hardware clocks start at zero");
        self.logical.start(hw);
        self.lmax_offset = Some(0.0 - hw);
        // A node waking up by itself sends ⟨0, 0⟩ (L_v^max = 0 is the 0-th
        // multiple of H₀); a message-initialized node sends the same before
        // processing the initialization message, which subsumes the paper's
        // "trigger a sending event".
        self.broadcast(ctx, 0.0);
        self.schedule_send(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AOptMsg>, from: NodeId, msg: AOptMsg) {
        let hw = ctx.hw();
        // Algorithm 2, lines 1–4: adopt and forward a strictly larger
        // maximum-clock estimate. "Strictly larger" carries a 1e-9 slack so
        // that equal estimates reconstructed through different floating-point
        // routes are not treated as increases (which would duplicate sends).
        if msg.lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax_offset = Some(msg.lmax - hw);
            self.broadcast(ctx, msg.lmax);
            self.schedule_send(ctx);
        }
        // Lines 5–7: adopt a larger (hence more recent) clock value of `w`.
        self.record_estimate(from, msg.logical, hw);
        // Lines 8–10: recompute skews and adjust the clock rate.
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AOptMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                // Algorithm 1: L_v^max reached the multiple; broadcast the
                // exact multiple to keep sent estimates on the H₀ grid.
                let lmax = self.next_multiple as f64 * self.params.h0();
                self.broadcast(ctx, lmax);
                self.schedule_send(ctx);
            }
            Self::RATE_TIMER => {
                // Algorithm 4: H_v reached H_v^R.
                self.logical.set_multiplier(ctx.hw(), 1.0);
                self.h_r = None;
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        self.multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, DirectionalDelay, Engine, UniformDelay};

    fn params() -> Params {
        Params::recommended(0.01, 0.1).unwrap()
    }

    fn spread(values: &[f64]) -> f64 {
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }

    #[test]
    fn single_node_tracks_hardware_clock() {
        let p = params();
        let g = topology::path(1);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p)])
            .delay_model(ConstantDelay::new(0.0))
            .build();
        engine.wake(NodeId(0), 0.0);
        engine.run_until(10.0);
        assert!((engine.logical_value(NodeId(0)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn initialization_floods_through_path() {
        let p = params();
        let g = topology::path(5);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 5])
            .delay_model(ConstantDelay::new(0.05))
            .build();
        engine.wake(NodeId(0), 0.0);
        engine.run_until(0.3);
        for v in 0..5 {
            assert!(engine.is_started(NodeId(v)), "node {v} not initialized");
        }
        // Node 4 started 4 hops later.
        assert!(engine.logical_value(NodeId(0)) > engine.logical_value(NodeId(4)));
    }

    #[test]
    fn synchronizes_under_benign_conditions() {
        let p = params();
        let g = topology::path(6);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 6])
            .delay_model(ConstantDelay::new(0.02))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(100.0);
        let clocks = engine.logical_values();
        assert!(spread(&clocks) <= p.global_skew_bound(5) + 1e-9);
        // With zero drift, clocks should in fact be very tight.
        assert!(spread(&clocks) <= 2.0 * p.kappa());
    }

    #[test]
    fn respects_global_skew_bound_under_adversity() {
        let p = params();
        let g = topology::path(8);
        let schedules =
            gcs_sim::rates::split(8, gcs_time::DriftBounds::new(0.01).unwrap(), |v| v < 4);
        let delay = DirectionalDelay::new(&g, NodeId(0), 0.1, 0.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 8])
            .delay_model(delay)
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let bound = p.global_skew_bound(7);
        let mut worst: f64 = 0.0;
        engine.run_until_observed(200.0, |e| {
            let clocks = e.logical_values();
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            worst = worst.max(max - min);
        });
        assert!(
            worst <= bound + 1e-9,
            "global skew {worst} exceeded bound {bound}"
        );
        assert!(worst > 0.0);
    }

    #[test]
    fn respects_envelope_condition() {
        // Condition (1): (1 − ε)(t − t_v) ≤ L_v(t) ≤ (1 + ε)t.
        let p = params();
        let g = topology::binary_tree(7);
        let drift = gcs_time::DriftBounds::new(0.01).unwrap();
        let schedules = gcs_sim::rates::random_walk(7, drift, 5.0, 100.0, 3);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 7])
            .delay_model(UniformDelay::new(0.1, 8))
            .rate_schedules(schedules)
            .build();
        engine.wake(NodeId(0), 0.0);
        let mut checkers: Vec<Option<gcs_time::EnvelopeChecker>> = vec![None; 7];
        engine.run_until_observed(100.0, |e| {
            for (v, slot) in checkers.iter_mut().enumerate() {
                if e.is_started(NodeId(v)) {
                    let checker = slot.get_or_insert_with(|| {
                        gcs_time::EnvelopeChecker::new(drift, e.now(), 1e-9)
                    });
                    assert!(
                        checker.observe(e.now(), e.logical_value(NodeId(v))),
                        "envelope violated at node {v}, t = {}",
                        e.now()
                    );
                }
            }
        });
    }

    #[test]
    fn respects_progress_condition() {
        // Condition (2): α(t'−t) ≤ L(t') − L(t) ≤ β(t'−t) with
        // α = 1 − ε, β = (1 + ε)(1 + μ) (Corollary 5.3).
        let p = params();
        let drift = gcs_time::DriftBounds::new(0.01).unwrap();
        let g = topology::cycle(5);
        let schedules = gcs_sim::rates::alternating(5, drift, 7.0, 80.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 5])
            .delay_model(UniformDelay::new(0.1, 21))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let (alpha, beta) = p.rate_envelope();
        let env = gcs_time::RateEnvelope::new(alpha, beta);
        let mut checkers = vec![gcs_time::ProgressChecker::new(env, 1e-9); 5];
        engine.run_until_observed(80.0, |e| {
            for (v, checker) in checkers.iter_mut().enumerate() {
                assert!(
                    checker.observe(e.now(), e.logical_value(NodeId(v))),
                    "progress envelope violated at node {v}, t = {}",
                    e.now()
                );
            }
        });
    }

    #[test]
    fn logical_clock_never_exceeds_lmax() {
        // Corollary 5.2 (i): L_v ≤ L_v^max at all times.
        let p = params();
        let g = topology::path(5);
        let drift = gcs_time::DriftBounds::new(0.01).unwrap();
        let schedules = gcs_sim::rates::split(5, drift, |v| v % 2 == 0);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 5])
            .delay_model(UniformDelay::new(0.1, 4))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(60.0, |e| {
            for v in 0..5 {
                let hw = e.hardware_value(NodeId(v));
                let node = e.protocol(NodeId(v));
                assert!(
                    node.logical_value(hw) <= node.lmax_value(hw) + 1e-9,
                    "L exceeded L^max at node {v}"
                );
            }
        });
    }

    #[test]
    fn sent_lmax_values_stay_on_h0_grid() {
        let p = params();
        let g = topology::path(3);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 3])
            .delay_model(ConstantDelay::new(0.03))
            .build();
        engine.wake(NodeId(0), 0.0);
        engine.run_until(50.0);
        // All nodes' estimates are multiples of H₀ plus hardware progress;
        // spot-check the next_multiple bookkeeping via lmax at a send event:
        for v in 0..3 {
            let node = engine.protocol(NodeId(v));
            assert!(node.sends() > 10, "node {v} sent too rarely");
        }
    }

    #[test]
    fn amortized_message_frequency_matches_h0() {
        // Section 6.1: amortized frequency Θ(1/H₀) per node.
        let p = params();
        let g = topology::path(4);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 4])
            .delay_model(ConstantDelay::new(0.05))
            .build();
        engine.wake_all_at(0.0);
        let horizon = 200.0;
        engine.run_until(horizon);
        let expected = horizon / p.h0();
        for v in 0..4 {
            let sends = engine.protocol(NodeId(v)).sends() as f64;
            assert!(
                sends <= 3.0 * expected + 5.0,
                "node {v} sent {sends} times, expected Θ({expected})"
            );
            assert!(sends >= expected / 3.0 - 5.0);
        }
    }

    #[test]
    fn fast_mode_engages_on_skew() {
        let p = params();
        let g = topology::path(2);
        // Node 1 drastically slower; node 0 pulls ahead, node 1 must boost.
        let schedules = vec![
            gcs_time::RateSchedule::constant(1.01).unwrap(),
            gcs_time::RateSchedule::constant(0.99).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); 2])
            .delay_model(ConstantDelay::new(0.05))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut boosted = false;
        engine.run_until_observed(100.0, |e| {
            if e.protocol(NodeId(1)).multiplier() > 1.0 {
                boosted = true;
            }
        });
        assert!(boosted, "slow node never engaged fast mode");
        // And the final skew is small despite the drift.
        let skew = (engine.logical_value(NodeId(0)) - engine.logical_value(NodeId(1))).abs();
        assert!(skew <= p.local_skew_bound(1) + 1e-9);
    }
}
