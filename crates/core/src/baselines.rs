//! Baseline algorithms `A^opt` is compared against.
//!
//! * [`MaxAlgorithm`] — maximum forwarding in the style of Srikanth & Toueg
//!   (1987): jump to every larger clock value received and forward it.
//!   Asymptotically optimal *global* skew and within the real-time envelope,
//!   but no gradient property: under adversarial delay patterns neighbouring
//!   nodes can differ by `Θ(D·𝒯)` (the paper's Section 1 credits it with a
//!   `Θ(D)` worst-case local skew).
//! * [`MidpointAlgorithm`] — the "obvious" bounded-rate strategy the paper
//!   warns about in Section 4.2: steer toward the midpoint of the fastest
//!   and slowest neighbour estimate. Fails to achieve a sublinear local
//!   skew.
//! * [`NoSync`] — hardware passthrough; the control group.

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

/// Message of [`MaxAlgorithm`]: the sender's logical clock value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxMsg {
    /// Sender's logical clock at send time.
    pub logical: f64,
}

/// Maximum-forwarding clock synchronization (Srikanth–Toueg style).
///
/// `L_v = max(own hardware progress, largest value ever received)`; strictly
/// larger received values are adopted by an instantaneous jump and forwarded
/// at once; additionally every node broadcasts its clock every `h0` units of
/// hardware time. Logical clock rates are unbounded above (`β = ∞`).
#[derive(Debug, Clone)]
pub struct MaxAlgorithm {
    h0: f64,
    logical: LogicalClock,
    sends: u64,
}

impl MaxAlgorithm {
    /// Timer slot for the periodic broadcast.
    pub const SEND_TIMER: TimerId = TimerId(0);

    /// Creates a node broadcasting every `h0` hardware-time units.
    ///
    /// # Panics
    ///
    /// Panics if `h0 <= 0`.
    pub fn new(h0: f64) -> Self {
        assert!(h0 > 0.0 && h0.is_finite(), "invalid send period {h0}");
        MaxAlgorithm {
            h0,
            logical: LogicalClock::new(),
            sends: 0,
        }
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, MaxMsg>) {
        let logical = self.logical.value_at_hw(ctx.hw());
        self.sends += 1;
        ctx.send_all(MaxMsg { logical });
    }
}

impl Protocol for MaxAlgorithm {
    type Msg = MaxMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, MaxMsg>) {
        self.logical.start(ctx.hw());
        self.broadcast(ctx);
        ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.h0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, MaxMsg>, _from: NodeId, msg: MaxMsg) {
        let hw = ctx.hw();
        let mine = self.logical.value_at_hw(hw);
        // 1e-9 slack so equal values reconstructed through different
        // floating-point routes are not treated as increases.
        if msg.logical > mine + 1e-9 {
            self.logical.jump(hw, msg.logical - mine);
            self.broadcast(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, MaxMsg>, timer: TimerId) {
        debug_assert_eq!(timer, Self::SEND_TIMER);
        self.broadcast(ctx);
        ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.h0);
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }
}

/// Message of [`MidpointAlgorithm`]: the sender's logical clock value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MidpointMsg {
    /// Sender's logical clock at send time.
    pub logical: f64,
}

/// Bounded-rate midpoint averaging — the strategy the paper's Section 4.2
/// shows is *not* enough for a sublinear local skew.
///
/// Nodes keep `A^opt`-style estimates of their neighbours' clocks (advanced
/// at the hardware rate between messages, monotone-guarded). Whenever
/// `Λ↑ > Λ↓` the node runs at `(1 + μ)·h_v` until it has gained
/// `(Λ↑ − Λ↓)/2` — steering toward the midpoint of the extremal neighbour
/// estimates — and at `h_v` otherwise.
#[derive(Debug, Clone)]
pub struct MidpointAlgorithm {
    h0: f64,
    mu: f64,
    logical: LogicalClock,
    estimates: HashMap<NodeId, (f64, f64)>, // (offset from H, ell guard)
    sends: u64,
}

impl MidpointAlgorithm {
    /// Timer slot for the periodic broadcast.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the fast-mode reset.
    pub const RATE_TIMER: TimerId = TimerId(1);

    /// Creates a node broadcasting every `h0` hardware-time units with fast
    /// mode boost `mu`.
    ///
    /// # Panics
    ///
    /// Panics if `h0 <= 0` or `mu <= 0`.
    pub fn new(h0: f64, mu: f64) -> Self {
        assert!(h0 > 0.0 && h0.is_finite(), "invalid send period {h0}");
        assert!(mu > 0.0 && mu.is_finite(), "invalid boost {mu}");
        MidpointAlgorithm {
            h0,
            mu,
            logical: LogicalClock::new(),
            estimates: HashMap::new(),
            sends: 0,
        }
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, MidpointMsg>) {
        let logical = self.logical.value_at_hw(ctx.hw());
        self.sends += 1;
        ctx.send_all(MidpointMsg { logical });
    }

    fn adjust_rate(&mut self, ctx: &mut Context<'_, MidpointMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for (offset, _) in self.estimates.values() {
            let est = hw + offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            return; // no neighbour known yet
        }
        let r = (up - down) / 2.0;
        if r > 0.0 {
            self.logical.set_multiplier(hw, 1.0 + self.mu);
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.mu);
        } else {
            self.logical.set_multiplier(hw, 1.0);
            ctx.cancel_timer(Self::RATE_TIMER);
        }
    }
}

impl Protocol for MidpointAlgorithm {
    type Msg = MidpointMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, MidpointMsg>) {
        self.logical.start(ctx.hw());
        self.broadcast(ctx);
        ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.h0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, MidpointMsg>, from: NodeId, msg: MidpointMsg) {
        let hw = ctx.hw();
        let entry = self
            .estimates
            .entry(from)
            .or_insert((f64::NEG_INFINITY, f64::NEG_INFINITY));
        if msg.logical > entry.1 {
            entry.1 = msg.logical;
            entry.0 = msg.logical - hw;
        }
        self.adjust_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, MidpointMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                self.broadcast(ctx);
                ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.h0);
            }
            Self::RATE_TIMER => {
                self.logical.set_multiplier(ctx.hw(), 1.0);
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

/// The do-nothing control: `L_v = H_v`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoSync;

impl Protocol for NoSync {
    type Msg = ();

    fn on_start(&mut self, _ctx: &mut Context<'_, ()>) {}
    fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _timer: TimerId) {}

    fn logical_value(&self, hw: f64) -> f64 {
        hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, DirectionalDelay, Engine};
    use gcs_time::{DriftBounds, RateSchedule};

    #[test]
    fn max_algorithm_adopts_and_forwards_maxima() {
        let g = topology::path(4);
        // Node 0 runs fast; all others must ride its clock.
        let mut schedules = vec![RateSchedule::constant(1.05).unwrap()];
        schedules.extend(vec![RateSchedule::constant(0.95).unwrap(); 3]);
        let mut engine = Engine::builder(g)
            .protocols(vec![MaxAlgorithm::new(1.0); 4])
            .delay_model(ConstantDelay::new(0.01))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(50.0);
        let l0 = engine.logical_value(NodeId(0));
        let l3 = engine.logical_value(NodeId(3));
        // Node 3 trails node 0 by at most the propagation lag, not by drift.
        assert!(l0 - l3 < 0.5, "l0 = {l0}, l3 = {l3}");
        assert!(l0 - l3 >= 0.0);
    }

    #[test]
    fn max_algorithm_never_runs_backwards_or_above_max() {
        let g = topology::cycle(5);
        let drift = DriftBounds::new(0.05).unwrap();
        let schedules = gcs_sim::rates::random_walk(5, drift, 3.0, 60.0, 5);
        let mut engine = Engine::builder(g)
            .protocols(vec![MaxAlgorithm::new(1.0); 5])
            .delay_model(gcs_sim::UniformDelay::new(0.2, 6))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut last = [0.0f64; 5];
        engine.run_until_observed(60.0, |e| {
            for (v, prev) in last.iter_mut().enumerate() {
                let l = e.logical_value(NodeId(v));
                assert!(l >= *prev - 1e-12, "clock ran backwards at {v}");
                // Envelope: never above (1 + ε)t.
                assert!(l <= 1.05 * e.now() + 1e-9);
                *prev = l;
            }
        });
    }

    #[test]
    fn max_algorithm_builds_large_local_skew_at_wavefront() {
        // Delay flip: messages toward the tail crawl at full 𝒯 while node 0
        // runs fast. When the wave of node 0's value sweeps down the path,
        // the node at the front is far ahead of its sleepy neighbour.
        let t_max = 0.5;
        let n = 16;
        let g = topology::path(n);
        let mut schedules = vec![RateSchedule::constant(1.05).unwrap()];
        schedules.extend(vec![RateSchedule::constant(0.95).unwrap(); n - 1]);
        let delay = DirectionalDelay::new(&g, NodeId(n - 1), t_max, t_max);
        let mut engine = Engine::builder(g)
            .protocols(vec![MaxAlgorithm::new(1.0); n])
            .delay_model(delay)
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut worst_local: f64 = 0.0;
        engine.run_until_observed(60.0, |e| {
            for v in 0..n - 1 {
                let skew = (e.logical_value(NodeId(v)) - e.logical_value(NodeId(v + 1))).abs();
                worst_local = worst_local.max(skew);
            }
        });
        // The wavefront jump is at least the per-hop staleness (1+ε)·𝒯 — and
        // grows along the path; require clearly super-𝒯 skew.
        assert!(
            worst_local > 1.01 * t_max,
            "expected wavefront skew, got {worst_local}"
        );
    }

    #[test]
    fn midpoint_converges_on_a_pair() {
        let g = topology::path(2);
        let schedules = vec![
            RateSchedule::constant(1.02).unwrap(),
            RateSchedule::constant(0.98).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![MidpointAlgorithm::new(0.5, 0.2); 2])
            .delay_model(ConstantDelay::new(0.05))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(100.0);
        let skew = (engine.logical_value(NodeId(0)) - engine.logical_value(NodeId(1))).abs();
        // The slow node chases the fast one; skew stays bounded by O(drift·𝒯 + H₀ terms).
        assert!(skew < 1.0, "midpoint failed to track: skew = {skew}");
    }

    #[test]
    fn no_sync_is_hardware_passthrough() {
        let g = topology::path(2);
        let schedules = vec![
            RateSchedule::constant(1.05).unwrap(),
            RateSchedule::constant(0.95).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![NoSync, NoSync])
            .delay_model(ConstantDelay::new(0.0))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(10.0);
        assert!((engine.logical_value(NodeId(0)) - 10.5).abs() < 1e-9);
        assert!((engine.logical_value(NodeId(1)) - 9.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid send period")]
    fn max_algorithm_rejects_bad_period() {
        let _ = MaxAlgorithm::new(0.0);
    }
}
