//! The `A^opt` gradient clock-synchronization algorithm of Lenzen, Locher &
//! Wattenhofer, *Tight Bounds for Clock Synchronization* (PODC 2009 /
//! J. ACM 2010), together with its model variants and baseline algorithms.
//!
//! # The algorithm
//!
//! [`AOpt`] implements the paper's Algorithms 1–4 exactly: nodes broadcast
//! `⟨L_v, L_v^max⟩` whenever their maximum-clock estimate reaches a multiple
//! of `H₀`, immediately forward larger estimates, and switch their logical
//! clock between the hardware rate and `(1 + μ)` times the hardware rate
//! according to the integer-multiple-of-`κ` balancing rule of `setClockRate`
//! ([`rate_rule`]). [`Params`] validates the constraints (Eqs. 4–6) and
//! computes the proven bounds: global skew `𝒢 = (1+ε̂)D𝒯̂ + 2ε̂/(1+ε̂)H₀`
//! (Theorem 5.5) and local skew `κ(⌈log_σ(2𝒢/κ)⌉ + ½)` (Theorem 5.10).
//!
//! # Variants (paper Section 8 and remarks)
//!
//! * [`AOptJump`] — unbounded logical rates (`β = ∞`): the computed increase
//!   `R_v` is applied instantly (remark after Theorem 5.10).
//! * [`ExternalAOpt`] — external synchronization against a real-time source
//!   node (Section 8.5).
//! * [`OffsetAOpt`] — delays bounded away from zero, `[𝒯₁, 𝒯₂]`
//!   (Section 8.3).
//! * [`EnvelopeAOpt`] — the sharpened hardware-envelope condition
//!   `min_w H_w ≤ L_v ≤ max_w H_w` (Section 8.6).
//! * [`MinGapAOpt`] — a hard minimum gap of `H₀` between sends, bounding
//!   the instantaneous (not just amortized) message frequency
//!   (Section 6.1).
//! * [`DiscreteAOpt`] — discretized message encoding with `O(log 1/μ̂)` bit
//!   complexity (Section 6.2).
//! * [`rtt`] — round-trip-time estimation of an unknown `𝒯` (Section 8.1).
//!
//! # Baselines
//!
//! * [`MaxAlgorithm`] — Srikanth–Toueg-style maximum forwarding: optimal
//!   global skew, but `Θ(D)`-ish local skew under adversarial delays.
//! * [`MidpointAlgorithm`] — the "obvious" bounded-rate averaging strategy
//!   the paper warns about (Section 4.2): no sublinear gradient property.
//! * [`NoSync`] — hardware passthrough (control).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aopt;
mod baselines;
mod params;
pub mod rate_rule;
pub mod rtt;
mod variants;

pub use aopt::{AOpt, AOptMsg};
pub use baselines::{MaxAlgorithm, MaxMsg, MidpointAlgorithm, MidpointMsg, NoSync};
pub use params::{ParamError, Params};
pub use variants::{
    AOptJump, AdaptiveAOpt, AdaptiveMsg, DiscreteAOpt, DiscreteMsg, EnvelopeAOpt, ExternalAOpt,
    ExternalMsg, MinGapAOpt, MsgKind, OffsetAOpt, PiggybackAOpt, PiggybackMsg,
};
