//! Algorithm parameters and the paper's skew bounds.
//!
//! `A^opt` is parameterized by (paper Sections 4–5):
//!
//! * `ε̂` — the known upper bound on the hardware drift `ε` (`ε̂ < 1`),
//! * `𝒯̂` — the known upper bound on the delay uncertainty `𝒯`,
//! * `H₀` — the send period in hardware-clock units (Algorithm 1),
//! * `μ`  — the fast-mode rate boost (Algorithm 3),
//! * `κ`  — the skew-balancing quantum (Algorithm 3, line 1).
//!
//! Correctness of the skew bounds requires (paper Eqs. 4–6):
//!
//! * `H̄₀ = (2ε̂ + μ)·H₀`                       (Eq. 5)
//! * `κ ≥ 2((1 + ε̂)(1 + μ)·𝒯̂ + H̄₀)`          (Eq. 4)
//! * `σ ≥ 2` where `σ = ⌊μ(1 − ε̂)/(7ε̂)⌋` is the largest integer with
//!   `μ ≥ 7σε̂/(1 − ε̂)`                        (Eq. 6)
//!
//! and yields (Theorems 5.5 and 5.10):
//!
//! * global skew ≤ `𝒢 = (1 + ε̂)·D·𝒯̂ + 2ε̂/(1 + ε̂)·H₀`
//! * local skew ≤ `κ(⌈log_σ(2𝒢/κ)⌉ + ½)`

use std::error::Error;
use std::fmt;

/// Error returned for parameter combinations that violate the paper's
/// constraints.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// `ε̂` must satisfy `0 < ε̂ < 1`.
    EpsilonOutOfRange {
        /// Offending value.
        epsilon: f64,
    },
    /// `𝒯̂` must be non-negative and finite.
    DelayOutOfRange {
        /// Offending value.
        t_hat: f64,
    },
    /// `H₀` must be positive and finite.
    H0OutOfRange {
        /// Offending value.
        h0: f64,
    },
    /// `μ` violates Eq. (6): `μ ≥ 14ε̂/(1 − ε̂)` is required for `σ ≥ 2`.
    MuTooSmall {
        /// Offending value.
        mu: f64,
        /// Smallest admissible value.
        required: f64,
    },
    /// `κ` violates Eq. (4).
    KappaTooSmall {
        /// Offending value.
        kappa: f64,
        /// Smallest admissible value.
        required: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::EpsilonOutOfRange { epsilon } => {
                write!(f, "drift bound ε̂ = {epsilon} outside (0, 1)")
            }
            ParamError::DelayOutOfRange { t_hat } => {
                write!(f, "delay bound 𝒯̂ = {t_hat} must be non-negative and finite")
            }
            ParamError::H0OutOfRange { h0 } => {
                write!(f, "send period H₀ = {h0} must be positive and finite")
            }
            ParamError::MuTooSmall { mu, required } => {
                write!(f, "μ = {mu} violates Eq. (6); need μ ≥ {required}")
            }
            ParamError::KappaTooSmall { kappa, required } => {
                write!(f, "κ = {kappa} violates Eq. (4); need κ ≥ {required}")
            }
        }
    }
}

impl Error for ParamError {}

/// Validated parameters of `A^opt` together with the paper's bound formulas.
///
/// # Example
///
/// ```
/// let p = gcs_core::Params::recommended(1e-4, 1.0)?;
/// assert!(p.sigma() >= 2);
/// // Thm 5.5: 𝒢 grows linearly with the diameter.
/// assert!(p.global_skew_bound(64) > p.global_skew_bound(32));
/// // Thm 5.10: the local skew bound grows logarithmically — a 64× larger
/// // diameter costs far less than a 3× larger bound.
/// assert!(p.local_skew_bound(4096) < 3.0 * p.local_skew_bound(64));
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    epsilon_hat: f64,
    t_hat: f64,
    h0: f64,
    mu: f64,
    kappa: f64,
}

impl Params {
    /// Creates and validates an explicit parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if any constraint of Eqs. (4)–(6) is
    /// violated (see the module documentation).
    pub fn new(
        epsilon_hat: f64,
        t_hat: f64,
        h0: f64,
        mu: f64,
        kappa: f64,
    ) -> Result<Self, ParamError> {
        if !(epsilon_hat.is_finite() && epsilon_hat > 0.0 && epsilon_hat < 1.0) {
            return Err(ParamError::EpsilonOutOfRange {
                epsilon: epsilon_hat,
            });
        }
        if !(t_hat.is_finite() && t_hat >= 0.0) {
            return Err(ParamError::DelayOutOfRange { t_hat });
        }
        if !(h0.is_finite() && h0 > 0.0) {
            return Err(ParamError::H0OutOfRange { h0 });
        }
        let mu_required = 14.0 * epsilon_hat / (1.0 - epsilon_hat);
        if !(mu.is_finite() && mu >= mu_required * (1.0 - 1e-12)) {
            return Err(ParamError::MuTooSmall {
                mu,
                required: mu_required,
            });
        }
        let params = Params {
            epsilon_hat,
            t_hat,
            h0,
            mu,
            kappa,
        };
        let kappa_required = params.min_kappa();
        if !(kappa.is_finite() && kappa >= kappa_required * (1.0 - 1e-12)) {
            return Err(ParamError::KappaTooSmall {
                kappa,
                required: kappa_required,
            });
        }
        Ok(params)
    }

    /// The paper's recommended instantiation: `μ = 14ε̂/(1 − ε̂)` (the
    /// smallest value giving `σ = 2`), `H₀ = 𝒯̂/μ` (so message overhead is
    /// amortized to `Θ(ε̂/𝒯̂)`, Section 6.1), and the smallest admissible
    /// `κ` from Eq. (4).
    ///
    /// # Errors
    ///
    /// Propagates validation errors for out-of-range `ε̂`/`𝒯̂` (`𝒯̂` must be
    /// strictly positive here because `H₀` is derived from it).
    pub fn recommended(epsilon_hat: f64, t_hat: f64) -> Result<Self, ParamError> {
        if !(t_hat.is_finite() && t_hat > 0.0) {
            return Err(ParamError::DelayOutOfRange { t_hat });
        }
        if !(epsilon_hat.is_finite() && epsilon_hat > 0.0 && epsilon_hat < 1.0) {
            return Err(ParamError::EpsilonOutOfRange {
                epsilon: epsilon_hat,
            });
        }
        let mu = 14.0 * epsilon_hat / (1.0 - epsilon_hat);
        let h0 = t_hat / mu;
        Self::with_h0_mu(epsilon_hat, t_hat, h0, mu)
    }

    /// Like [`Params::recommended`] but with explicit `H₀` and `μ`; `κ` is
    /// set to its Eq. (4) minimum (`κ` enters the local-skew bound linearly,
    /// so the minimum is always the right choice).
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn with_h0_mu(epsilon_hat: f64, t_hat: f64, h0: f64, mu: f64) -> Result<Self, ParamError> {
        let tentative = Params {
            epsilon_hat,
            t_hat,
            h0,
            mu,
            kappa: f64::NAN,
        };
        let kappa = tentative.min_kappa();
        Self::new(epsilon_hat, t_hat, h0, mu, kappa)
    }

    /// An instantiation targeting a logarithm base `σ`: sets
    /// `μ = 7σε̂/(1 − ε̂)` and `H₀ = 𝒯̂/μ`.
    ///
    /// Larger `σ` trades a larger fast-mode boost `μ` (hence a looser rate
    /// envelope `β`) for a smaller local skew — the trade-off quantified by
    /// Corollary 7.8.
    ///
    /// # Errors
    ///
    /// Returns an error unless `σ ≥ 2` and the remaining parameters are in
    /// range.
    pub fn with_sigma(epsilon_hat: f64, t_hat: f64, sigma: u32) -> Result<Self, ParamError> {
        if !(epsilon_hat.is_finite() && epsilon_hat > 0.0 && epsilon_hat < 1.0) {
            return Err(ParamError::EpsilonOutOfRange {
                epsilon: epsilon_hat,
            });
        }
        let mu = 7.0 * sigma.max(1) as f64 * epsilon_hat / (1.0 - epsilon_hat);
        if sigma < 2 {
            return Err(ParamError::MuTooSmall {
                mu,
                required: 14.0 * epsilon_hat / (1.0 - epsilon_hat),
            });
        }
        if !(t_hat.is_finite() && t_hat > 0.0) {
            return Err(ParamError::DelayOutOfRange { t_hat });
        }
        let h0 = t_hat / mu;
        Self::with_h0_mu(epsilon_hat, t_hat, h0, mu)
    }

    /// The drift bound `ε̂` known to the algorithm.
    pub fn epsilon_hat(&self) -> f64 {
        self.epsilon_hat
    }

    /// The delay-uncertainty bound `𝒯̂` known to the algorithm.
    pub fn t_hat(&self) -> f64 {
        self.t_hat
    }

    /// The send period `H₀` (hardware-clock units).
    pub fn h0(&self) -> f64 {
        self.h0
    }

    /// The fast-mode boost `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The balancing quantum `κ`.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// `H̄₀ = (2ε̂ + μ)·H₀` (Eq. 5) — the estimate staleness contributed by
    /// periodic (rather than continuous) sending.
    pub fn h0_bar(&self) -> f64 {
        (2.0 * self.epsilon_hat + self.mu) * self.h0
    }

    /// The smallest `κ` admitted by Eq. (4).
    pub fn min_kappa(&self) -> f64 {
        2.0 * ((1.0 + self.epsilon_hat) * (1.0 + self.mu) * self.t_hat + self.h0_bar())
    }

    /// The base `σ` of the local-skew logarithm: the largest integer with
    /// `μ ≥ 7σε̂/(1 − ε̂)` (Eq. 6); always ≥ 2 for validated parameters.
    pub fn sigma(&self) -> u32 {
        (self.mu * (1.0 - self.epsilon_hat) / (7.0 * self.epsilon_hat) + 1e-9).floor() as u32
    }

    /// Theorem 5.5: the global-skew bound
    /// `𝒢 = (1 + ε̂)·D·𝒯̂ + 2ε̂/(1 + ε̂)·H₀`.
    pub fn global_skew_bound(&self, diameter: u32) -> f64 {
        (1.0 + self.epsilon_hat) * diameter as f64 * self.t_hat
            + 2.0 * self.epsilon_hat / (1.0 + self.epsilon_hat) * self.h0
    }

    /// Theorem 5.10: the local-skew bound `κ(⌈log_σ(2𝒢/κ)⌉ + ½)`.
    pub fn local_skew_bound(&self, diameter: u32) -> f64 {
        let g = self.global_skew_bound(diameter);
        let levels = (2.0 * g / self.kappa)
            .log(self.sigma() as f64)
            .ceil()
            .max(0.0);
        self.kappa * (levels + 0.5)
    }

    /// The legal-state distance threshold `C_s = (2𝒢/κ)·σ^{−s}`
    /// (Definition 5.6).
    pub fn legal_state_threshold(&self, diameter: u32, s: u32) -> f64 {
        2.0 * self.global_skew_bound(diameter) / self.kappa
            * (self.sigma() as f64).powi(-(s as i32))
    }

    /// Returns a copy with `κ` scaled by `factor`, **bypassing the Eq. (4)
    /// validation**.
    ///
    /// Exists solely for the κ-ablation experiment (`a1_kappa_ablation`),
    /// which demonstrates empirically that Eq. (4) is load-bearing: with an
    /// undersized κ the skew guarantees of Theorems 5.5/5.10 no longer
    /// hold. Never use this to *run* a deployment.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn with_kappa_factor_unchecked(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid factor {factor}"
        );
        self.kappa *= factor;
        self
    }

    /// The rate envelope `[α, β] = [1 − ε̂, (1 + ε̂)(1 + μ)]` guaranteed by
    /// `A^opt` (Corollary 5.3).
    pub fn rate_envelope(&self) -> (f64, f64) {
        (
            1.0 - self.epsilon_hat,
            (1.0 + self.epsilon_hat) * (1.0 + self.mu),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_is_valid_and_sigma_two() {
        let p = Params::recommended(1e-3, 0.5).unwrap();
        assert_eq!(p.sigma(), 2);
        assert!(p.kappa() >= p.min_kappa() * (1.0 - 1e-12));
        assert!((p.h0() - 0.5 / p.mu()).abs() < 1e-12);
    }

    #[test]
    fn with_sigma_scales_mu_linearly() {
        let p2 = Params::with_sigma(1e-3, 1.0, 2).unwrap();
        let p8 = Params::with_sigma(1e-3, 1.0, 8).unwrap();
        assert!((p8.mu() / p2.mu() - 4.0).abs() < 1e-9);
        assert_eq!(p2.sigma(), 2);
        assert_eq!(p8.sigma(), 8);
    }

    #[test]
    fn with_sigma_rejects_sigma_below_two() {
        assert!(matches!(
            Params::with_sigma(1e-3, 1.0, 1),
            Err(ParamError::MuTooSmall { .. })
        ));
    }

    #[test]
    fn rejects_bad_epsilon() {
        for eps in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(matches!(
                Params::recommended(eps, 1.0),
                Err(ParamError::EpsilonOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn rejects_bad_delay() {
        assert!(matches!(
            Params::recommended(0.01, 0.0),
            Err(ParamError::DelayOutOfRange { .. })
        ));
        assert!(matches!(
            Params::recommended(0.01, f64::INFINITY),
            Err(ParamError::DelayOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_small_mu() {
        let eps = 0.01;
        let err = Params::new(eps, 1.0, 100.0, 0.01, 1000.0).unwrap_err();
        match err {
            ParamError::MuTooSmall { required, .. } => {
                assert!((required - 14.0 * eps / (1.0 - eps)).abs() < 1e-12);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_small_kappa() {
        let p = Params::recommended(0.01, 1.0).unwrap();
        let err = Params::new(0.01, 1.0, p.h0(), p.mu(), p.min_kappa() * 0.9).unwrap_err();
        assert!(matches!(err, ParamError::KappaTooSmall { .. }));
    }

    #[test]
    fn eq4_matches_hand_computation() {
        // ε̂ = 0.1, μ = 14·0.1/0.9, H₀ = 2, 𝒯̂ = 1.
        let eps: f64 = 0.1;
        let mu = 14.0 * eps / (1.0 - eps);
        let p = Params::with_h0_mu(eps, 1.0, 2.0, mu).unwrap();
        let h0_bar = (2.0 * eps + mu) * 2.0;
        let kappa = 2.0 * (1.1 * (1.0 + mu) + h0_bar);
        assert!((p.kappa() - kappa).abs() < 1e-12);
        assert!((p.h0_bar() - h0_bar).abs() < 1e-12);
    }

    #[test]
    fn global_bound_linear_in_diameter() {
        let p = Params::recommended(1e-3, 1.0).unwrap();
        let g1 = p.global_skew_bound(10);
        let g2 = p.global_skew_bound(20);
        // Subtracting the H₀ offset, the 𝒯-part doubles.
        let offset = 2.0 * 1e-3 / (1.0 + 1e-3) * p.h0();
        assert!(((g2 - offset) / (g1 - offset) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn local_bound_is_logarithmic() {
        let p = Params::recommended(1e-3, 1.0).unwrap();
        let deltas: Vec<f64> = [16u32, 64, 256, 1024]
            .iter()
            .map(|&d| p.local_skew_bound(d))
            .collect();
        // Quadrupling D adds the same increment each time (log behaviour):
        let inc1 = deltas[1] - deltas[0];
        let inc2 = deltas[2] - deltas[1];
        let inc3 = deltas[3] - deltas[2];
        assert!((inc1 - inc2).abs() <= p.kappa() + 1e-9);
        assert!((inc2 - inc3).abs() <= p.kappa() + 1e-9);
        assert!(inc2 > 0.0);
    }

    #[test]
    fn legal_state_thresholds_shrink_geometrically() {
        let p = Params::with_sigma(1e-3, 1.0, 4).unwrap();
        let c0 = p.legal_state_threshold(128, 0);
        let c1 = p.legal_state_threshold(128, 1);
        let c2 = p.legal_state_threshold(128, 2);
        assert!((c0 / c1 - 4.0).abs() < 1e-9);
        assert!((c1 / c2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rate_envelope_matches_corollary_5_3() {
        let p = Params::recommended(0.01, 1.0).unwrap();
        let (alpha, beta) = p.rate_envelope();
        assert!((alpha - 0.99).abs() < 1e-12);
        assert!((beta - 1.01 * (1.0 + p.mu())).abs() < 1e-12);
    }

    #[test]
    fn display_of_errors_is_informative() {
        let err = Params::recommended(2.0, 1.0).unwrap_err();
        assert!(format!("{err}").contains("ε̂"));
    }
}
