//! The `setClockRate` decision rule (paper Algorithm 3).
//!
//! Line 1 computes
//!
//! ```text
//! R_v := sup { R ∈ ℝ : ⌊(Λ↑ − R)/κ⌋ ≥ ⌊(Λ↓ + R)/κ⌋ }
//! ```
//!
//! the largest instantaneous increase of `L_v` under which the skew to the
//! furthest-ahead neighbour estimate (`Λ↑`) still weakly dominates, in units
//! of `κ`, the skew to the furthest-behind one (`Λ↓`). Line 2 clamps:
//!
//! ```text
//! R_v := min { max { κ − Λ↓, R_v }, L_v^max − L_v }
//! ```
//!
//! — a skew of `κ` is always tolerated (first term), and the clock may never
//! overtake the maximum-clock estimate (second term).
//!
//! This module exposes the rule as pure functions so it can be tested
//! exhaustively, independent of the event machinery.

/// Closed form of Algorithm 3, line 1.
///
/// For each integer `s`, the constraint `⌊(Λ↑ − R)/κ⌋ ≥ s ≥ ⌊(Λ↓ + R)/κ⌋`
/// holds exactly for `R ≤ Λ↑ − sκ` and `R < (s + 1)κ − Λ↓`; the supremum for
/// that `s` is `min(Λ↑ − sκ, (s + 1)κ − Λ↓)`. The first term decreases and
/// the second increases in `s`, so the overall supremum is attained at the
/// crossing `s* = (Λ↑ + Λ↓)/(2κ) − ½`, at one of the two integers around it.
///
/// # Panics
///
/// Panics if `kappa <= 0` or the skews are non-finite.
pub fn raw_increase(lambda_up: f64, lambda_down: f64, kappa: f64) -> f64 {
    assert!(kappa > 0.0, "κ must be positive");
    assert!(
        lambda_up.is_finite() && lambda_down.is_finite(),
        "skews must be finite"
    );
    let crossing = (lambda_up + lambda_down) / (2.0 * kappa) - 0.5;
    let mut best = f64::NEG_INFINITY;
    // The objective is concave piecewise-linear in s; checking the integers
    // around the real-valued optimum (with one extra on each side as a
    // floating-point guard) finds the maximum.
    let base = crossing.floor();
    for ds in -1..=2 {
        let s = base + ds as f64;
        let candidate = (lambda_up - s * kappa).min((s + 1.0) * kappa - lambda_down);
        best = best.max(candidate);
    }
    best
}

/// Full Algorithm 3 (lines 1–2): the clamped increase `R_v`.
///
/// `headroom` is `L_v^max − L_v`, the distance to the maximum-clock
/// estimate.
///
/// # Panics
///
/// Panics if `kappa <= 0` or any argument is non-finite.
pub fn clamped_increase(lambda_up: f64, lambda_down: f64, kappa: f64, headroom: f64) -> f64 {
    assert!(headroom.is_finite(), "headroom must be finite");
    let r = raw_increase(lambda_up, lambda_down, kappa);
    r.max(kappa - lambda_down).min(headroom)
}

/// Verifies the line-1 defining property for a candidate `R` (used by the
/// property tests): whether `⌊(Λ↑ − R)/κ⌋ ≥ ⌊(Λ↓ + R)/κ⌋`.
pub fn line1_condition(lambda_up: f64, lambda_down: f64, kappa: f64, r: f64) -> bool {
    ((lambda_up - r) / kappa).floor() >= ((lambda_down + r) / kappa).floor()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KAPPA: f64 = 4.0;

    #[test]
    fn balanced_at_half_quantum_gives_half_kappa() {
        // Paper's worked example: Λ↑ = Λ↓ = (s + ½)κ ⇒ R_v = κ/2.
        for s in 0..4 {
            let lam = (s as f64 + 0.5) * KAPPA;
            let r = raw_increase(lam, lam, KAPPA);
            assert!((r - KAPPA / 2.0).abs() < 1e-12, "s = {s}, got {r}");
        }
    }

    #[test]
    fn already_balanced_at_multiple_gives_zero() {
        // Λ↑ ≤ sκ and Λ↓ ≥ sκ ⇒ R_v ≤ 0 (paper's description of line 1).
        let r = raw_increase(2.0 * KAPPA, 2.0 * KAPPA, KAPPA);
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn ahead_neighbour_only_pulls_up() {
        // Λ↑ = 3κ, Λ↓ = 0: can raise until Λ↑ − R and Λ↓ + R balance at a
        // common multiple: s* = 3/2 − 1/2 = 1 ⇒ min(3κ − κ, 2κ) = 2κ.
        let r = raw_increase(3.0 * KAPPA, 0.0, KAPPA);
        assert!((r - 2.0 * KAPPA).abs() < 1e-12);
    }

    #[test]
    fn behind_neighbour_only_blocks() {
        // Λ↑ = 0, Λ↓ = 3κ: raising would unbalance; R ≤ 0. s* = 1:
        // min(0 − κ, 2κ − 3κ) = −κ; s = 0: min(0, κ − 3κ) = −2κ; best −κ.
        let r = raw_increase(0.0, 3.0 * KAPPA, KAPPA);
        assert!(r <= 0.0);
        assert!((r + KAPPA).abs() < 1e-12);
    }

    #[test]
    fn raw_increase_is_sup_of_line1_condition() {
        // Just below R* the condition holds; just above it fails.
        let cases = [
            (1.7, 0.3),
            (9.2, 3.4),
            (-2.0, 5.0),
            (0.0, 0.0),
            (6.0, 6.0),
            (13.5, -1.25),
        ];
        for &(lu, ld) in &cases {
            let r = raw_increase(lu, ld, KAPPA);
            assert!(
                line1_condition(lu, ld, KAPPA, r - 1e-9),
                "condition must hold below the sup for ({lu}, {ld}), r = {r}"
            );
            assert!(
                !line1_condition(lu, ld, KAPPA, r + 1e-9),
                "condition must fail above the sup for ({lu}, {ld}), r = {r}"
            );
        }
    }

    #[test]
    fn tolerated_kappa_floor_applies() {
        // Λ↓ = 0 (no one behind), Λ↑ = 0: raw rule gives 0…κ-ish, but a skew
        // of κ is always tolerated: R = min(max(κ − 0, R*), headroom).
        let r = clamped_increase(0.0, 0.0, KAPPA, 100.0);
        assert!((r - KAPPA).abs() < 1e-12);
    }

    #[test]
    fn headroom_caps_the_increase() {
        let r = clamped_increase(10.0 * KAPPA, 0.0, KAPPA, 1.5);
        assert!((r - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_headroom_forbids_raising() {
        // L_v = L_v^max ⇒ R_v ≤ 0 regardless of neighbour skews
        // (Corollary 5.2 relies on exactly this).
        let r = clamped_increase(50.0, 0.0, KAPPA, 0.0);
        assert!(r <= 0.0);
    }

    #[test]
    fn negative_lambda_up_is_handled() {
        // All known neighbours behind: Λ↑ < 0, Λ↓ = −Λ↑ > 0.
        let r = raw_increase(-6.0, 6.0, KAPPA);
        assert!(r <= 0.0);
    }

    #[test]
    fn increase_shift_invariance() {
        // Shifting both Λ↑ down and Λ↓ up by x (the effect of increasing
        // L_v by x) reduces R* by exactly x — the key algebraic fact behind
        // Lemma 5.1 (idempotence between messages).
        let (lu, ld) = (7.3, 1.1);
        let r0 = raw_increase(lu, ld, KAPPA);
        for &x in &[0.1, 0.5, 1.9, 3.0] {
            let rx = raw_increase(lu - x, ld + x, KAPPA);
            assert!((rx - (r0 - x)).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "κ must be positive")]
    fn zero_kappa_panics() {
        let _ = raw_increase(1.0, 1.0, 0.0);
    }
}
