//! Round-trip estimation of an unknown delay bound `𝒯` (paper Section 8.1).
//!
//! The paper argues that assuming `𝒯` completely unknown is no restriction:
//! nodes acknowledge messages, measure round-trip times on their hardware
//! clocks, divide by `1 − ε̂` to over-approximate elapsed real time, and
//! flood the largest estimate through the system. This module implements
//! that probing protocol. The resulting [`RttProbe::t_hat_estimate`] is a
//! valid `𝒯̂` for [`crate::Params`]: it upper-bounds every message delay
//! witnessed so far, and it is `O(𝒯)` because a round trip takes at most
//! `2𝒯` real time.

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};

/// Probe messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeMsg {
    /// A ping carrying the prober's sequence number and its current
    /// round-trip estimate (hardware units) for gossiping the maximum.
    Ping {
        /// Sequence number echoed by the pong.
        seq: u64,
        /// Sender's current largest round-trip measurement.
        gossip: f64,
    },
    /// The immediate reply to a ping.
    Pong {
        /// Echoed sequence number.
        seq: u64,
        /// Replier's current largest round-trip measurement.
        gossip: f64,
    },
}

/// A node of the round-trip probing protocol.
///
/// Pings all neighbours every `period` hardware-time units; neighbours
/// reply immediately; the largest round trip observed anywhere is gossiped
/// on every probe.
///
/// # Example
///
/// ```
/// use gcs_core::rtt::RttProbe;
/// use gcs_graph::topology;
/// use gcs_sim::{Engine, UniformDelay};
///
/// let t_true = 0.25;
/// let mut engine = Engine::builder(topology::path(3))
///     .protocols(vec![RttProbe::new(1.0, 0.01); 3])
///     .delay_model(UniformDelay::new(t_true, 42))
///     .build();
/// engine.wake_all_at(0.0);
/// engine.run_until(50.0);
/// let est = engine.protocol(gcs_graph::NodeId(0)).t_hat_estimate();
/// assert!(est <= 2.0 * t_true / 0.99 + 1e-9); // O(𝒯)
/// ```
#[derive(Debug, Clone)]
pub struct RttProbe {
    period: f64,
    epsilon_hat: f64,
    seq: u64,
    /// Outstanding pings: (seq, hardware send time).
    outstanding: Vec<(u64, f64)>,
    /// Largest round trip seen or heard of (hardware units).
    max_rtt_hw: f64,
}

impl RttProbe {
    /// Timer slot for the probing cadence.
    pub const PROBE_TIMER: TimerId = TimerId(0);

    /// Creates a probe with the given hardware-time period and known drift
    /// bound `ε̂`.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0` or `epsilon_hat` is not in `(0, 1)`.
    pub fn new(period: f64, epsilon_hat: f64) -> Self {
        assert!(period > 0.0 && period.is_finite(), "invalid period");
        assert!(
            epsilon_hat > 0.0 && epsilon_hat < 1.0,
            "invalid drift bound {epsilon_hat}"
        );
        RttProbe {
            period,
            epsilon_hat,
            seq: 0,
            outstanding: Vec::new(),
            max_rtt_hw: 0.0,
        }
    }

    /// The current delay-bound estimate `𝒯̂`: the largest round trip known,
    /// converted from hardware to an upper bound on real time.
    ///
    /// Every individual message delay witnessed so far is at most this value
    /// (a one-way delay is at most the round trip that contained it, and the
    /// hardware clock under-measures real time by at most `1 − ε̂`).
    pub fn t_hat_estimate(&self) -> f64 {
        self.max_rtt_hw / (1.0 - self.epsilon_hat)
    }

    fn probe(&mut self, ctx: &mut Context<'_, ProbeMsg>) {
        let seq = self.seq;
        self.seq += 1;
        self.outstanding.push((seq, ctx.hw()));
        ctx.send_all(ProbeMsg::Ping {
            seq,
            gossip: self.max_rtt_hw,
        });
        ctx.set_timer(Self::PROBE_TIMER, ctx.hw() + self.period);
    }
}

impl Protocol for RttProbe {
    type Msg = ProbeMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ProbeMsg>) {
        self.probe(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProbeMsg>, from: NodeId, msg: ProbeMsg) {
        match msg {
            ProbeMsg::Ping { seq, gossip } => {
                self.max_rtt_hw = self.max_rtt_hw.max(gossip);
                ctx.send(
                    from,
                    ProbeMsg::Pong {
                        seq,
                        gossip: self.max_rtt_hw,
                    },
                );
            }
            ProbeMsg::Pong { seq, gossip } => {
                self.max_rtt_hw = self.max_rtt_hw.max(gossip);
                if let Some(pos) = self.outstanding.iter().position(|&(s, _)| s == seq) {
                    let (_, sent_hw) = self.outstanding.swap_remove(pos);
                    self.max_rtt_hw = self.max_rtt_hw.max(ctx.hw() - sent_hw);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProbeMsg>, timer: TimerId) {
        debug_assert_eq!(timer, Self::PROBE_TIMER);
        self.probe(ctx);
    }

    fn logical_value(&self, hw: f64) -> f64 {
        hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, Engine, UniformDelay};

    #[test]
    fn estimate_upper_bounds_constant_delay() {
        let d = 0.3;
        let mut engine = Engine::builder(topology::path(2))
            .protocols(vec![RttProbe::new(1.0, 0.05); 2])
            .delay_model(ConstantDelay::new(d))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(30.0);
        for v in 0..2 {
            let est = engine.protocol(NodeId(v)).t_hat_estimate();
            assert!(est >= d, "estimate {est} below true delay {d}");
            assert!(est <= 2.0 * d / 0.95 + 1e-9, "estimate {est} not O(𝒯)");
        }
    }

    #[test]
    fn estimate_is_gossiped_across_the_network() {
        // Only the 3-4 link is slow; distant node 0 must still learn a
        // large estimate through gossip.
        use gcs_sim::{DelayCtx, Delivery, FnDelay};
        let delay = FnDelay::new(
            |c: &DelayCtx<'_>| {
                let slow = (c.src.index() >= 3) != (c.dst.index() >= 3) // never true on a path…
                    || (c.src.index().min(c.dst.index()) == 3);
                Delivery::After(if slow { 0.5 } else { 0.01 })
            },
            Some(0.5),
        );
        let mut engine = Engine::builder(topology::path(5))
            .protocols(vec![RttProbe::new(1.0, 0.05); 5])
            .delay_model(delay)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(60.0);
        let est0 = engine.protocol(NodeId(0)).t_hat_estimate();
        assert!(est0 >= 0.5, "gossip failed: node 0 estimate {est0}");
    }

    #[test]
    fn estimate_grows_with_observed_delays() {
        let mut engine = Engine::builder(topology::path(2))
            .protocols(vec![RttProbe::new(0.5, 0.01); 2])
            .delay_model(UniformDelay::new(0.2, 3))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(5.0);
        let early = engine.protocol(NodeId(0)).t_hat_estimate();
        engine.run_until(100.0);
        let late = engine.protocol(NodeId(0)).t_hat_estimate();
        assert!(late >= early);
        assert!(late > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid period")]
    fn rejects_bad_period() {
        let _ = RttProbe::new(0.0, 0.01);
    }
}
