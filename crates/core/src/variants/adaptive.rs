//! Unknown delay bound: adaptive `𝒯̂` (paper Section 8.1).
//!
//! The paper argues that assuming `𝒯` completely unknown is no restriction:
//! nodes acknowledge messages, measure round-trip times on their hardware
//! clocks, convert them to an upper bound on real time by dividing by
//! `1 − ε̂`, and **flood the largest estimate through the system, adjusting
//! `κ` (and `H₀`) whenever it grows**. To keep the number of adjustments
//! logarithmic, estimates grow by doubling.
//!
//! This variant implements the full pipeline inside the synchronization
//! protocol itself: periodic broadcasts double as probes, receivers
//! acknowledge them immediately (the ack carries sync fields too, so it is
//! not wasted), and closed round trips update the estimate; the current
//! `𝒯̂` travels in every message — flooded values are adopted verbatim,
//! measured ones with doubling, keeping the network in lockstep while the
//! number of parameter changes stays logarithmic. Parameter changes (`κ`,
//! `H₀`) take effect immediately and monotonically
//! — underestimation is safe, as the paper notes, because "until the time
//! when larger delays actually occur, the skew bounds hold with respect to
//! the smaller delays and thus the smaller κ".

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::Params;

/// The role of an adaptive message in the round-trip measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// A periodic broadcast requesting an immediate acknowledgement.
    Probe {
        /// Per-link sequence number of this probe.
        seq: u64,
    },
    /// The immediate reply to a probe (closes the round trip; never
    /// answered itself).
    Ack {
        /// The probe sequence number being acknowledged.
        of: u64,
    },
    /// Any other sync message (e.g. an estimate forward); not probed.
    Plain,
}

/// A sync message with the adaptive machinery attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveMsg {
    /// Sender's logical clock at send time.
    pub logical: f64,
    /// Sender's maximum-clock estimate at send time.
    pub lmax: f64,
    /// Sender's current delay-bound estimate `𝒯̂` (the flooded maximum).
    pub t_hat: f64,
    /// Probe/ack role of this message.
    pub kind: MsgKind,
}

#[derive(Debug, Clone, Default)]
struct LinkState {
    /// Next probe sequence number to use toward this neighbour.
    next_seq: u64,
    /// `(seq, hw at send)` of recent unacknowledged probes.
    in_flight: Vec<(u64, f64)>,
    /// Estimate offset `L_v^w − H_v` and the monotone guard `ℓ_v^w`.
    offset: f64,
    ell: f64,
    heard: bool,
}

/// `A^opt` with a fully adaptive delay bound (Section 8.1).
///
/// # Example
///
/// ```
/// use gcs_core::AdaptiveAOpt;
///
/// // Start with a wild underestimate of the delay bound.
/// let node = AdaptiveAOpt::new(1e-2, 0.001);
/// assert_eq!(node.t_hat(), 0.001);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveAOpt {
    epsilon_hat: f64,
    params: Params,
    logical: LogicalClock,
    lmax_offset: Option<f64>,
    links: HashMap<NodeId, LinkState>,
    sends: u64,
    /// Number of times the parameters were re-derived.
    adaptations: u64,
}

impl AdaptiveAOpt {
    /// Timer slot for the periodic broadcast.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);

    /// Creates a node with drift bound `epsilon_hat` and an *initial* delay
    /// estimate `t_hat_initial` (any positive value; it will grow to fit).
    ///
    /// # Panics
    ///
    /// Panics if the initial parameters are invalid.
    pub fn new(epsilon_hat: f64, t_hat_initial: f64) -> Self {
        let params =
            Params::recommended(epsilon_hat, t_hat_initial).expect("invalid initial parameters");
        AdaptiveAOpt {
            epsilon_hat,
            params,
            logical: LogicalClock::new(),
            lmax_offset: None,
            links: HashMap::new(),
            sends: 0,
            adaptations: 0,
        }
    }

    /// The current delay-bound estimate `𝒯̂`.
    pub fn t_hat(&self) -> f64 {
        self.params.t_hat()
    }

    /// The current (adaptively derived) parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// How many times this node re-derived its parameters.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The maximum-clock estimate at hardware reading `hw`.
    pub fn lmax_value(&self, hw: f64) -> f64 {
        self.lmax_offset.map_or(0.0, |o| hw + o)
    }

    /// Adopts a *flooded* estimate verbatim: another node already holds
    /// this value, so matching it exactly converges the network.
    fn adopt_flooded(&mut self, candidate: f64) {
        if candidate > self.params.t_hat() {
            self.rederive(candidate);
        }
    }

    /// Adopts a *measured* round trip, growing at least by doubling so the
    /// number of parameter changes stays logarithmic in `𝒯/𝒯̂₀`.
    fn adopt_measured(&mut self, rtt_upper: f64) {
        if rtt_upper > self.params.t_hat() {
            self.rederive(rtt_upper.max(2.0 * self.params.t_hat()));
        }
    }

    fn rederive(&mut self, new_t: f64) {
        self.params =
            Params::recommended(self.epsilon_hat, new_t).expect("adapted parameters remain valid");
        self.adaptations += 1;
    }

    /// Sends per-neighbour probe messages (each carries that link's seq).
    fn broadcast_probes(&mut self, ctx: &mut Context<'_, AdaptiveMsg>) {
        let hw = ctx.hw();
        let logical = self.logical.value_at_hw(hw);
        let lmax = self.lmax_value(hw);
        let t_hat = self.params.t_hat();
        self.sends += 1;
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        for w in neighbors {
            let link = self.links.entry(w).or_default();
            link.next_seq += 1;
            let seq = link.next_seq;
            link.in_flight.push((seq, hw));
            // Keep the in-flight window small; dropping stale unanswered
            // probes is safe (closing them could only grow the estimate,
            // and later probes will measure the same links again).
            if link.in_flight.len() > 32 {
                link.in_flight.remove(0);
            }
            ctx.send(
                w,
                AdaptiveMsg {
                    logical,
                    lmax,
                    t_hat,
                    kind: MsgKind::Probe { seq },
                },
            );
        }
    }

    /// Broadcasts a plain (unprobed) sync message — used for estimate
    /// forwards, which must not trigger ack storms.
    fn broadcast_plain(&mut self, ctx: &mut Context<'_, AdaptiveMsg>) {
        let hw = ctx.hw();
        self.sends += 1;
        ctx.send_all(AdaptiveMsg {
            logical: self.logical.value_at_hw(hw),
            lmax: self.lmax_value(hw),
            t_hat: self.params.t_hat(),
            kind: MsgKind::Plain,
        });
    }

    fn schedule_send(&mut self, ctx: &mut Context<'_, AdaptiveMsg>) {
        ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.params.h0());
    }

    fn set_clock_rate(&mut self, ctx: &mut Context<'_, AdaptiveMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for link in self.links.values() {
            if !link.heard {
                continue;
            }
            let est = hw + link.offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            up = 0.0;
            down = 0.0;
        }
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(up, down, self.params.kappa(), headroom);
        if r > 0.0 {
            self.logical.set_multiplier(hw, 1.0 + self.params.mu());
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.params.mu());
        } else {
            self.logical.set_multiplier(hw, 1.0);
            ctx.cancel_timer(Self::RATE_TIMER);
        }
    }
}

impl Protocol for AdaptiveAOpt {
    type Msg = AdaptiveMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AdaptiveMsg>) {
        let hw = ctx.hw();
        self.logical.start(hw);
        self.lmax_offset = Some(0.0 - hw);
        self.broadcast_probes(ctx);
        self.schedule_send(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AdaptiveMsg>, from: NodeId, msg: AdaptiveMsg) {
        let hw = ctx.hw();
        // --- Adaptive machinery: flooded estimate + round-trip closure. ---
        self.adopt_flooded(msg.t_hat);
        match msg.kind {
            MsgKind::Probe { seq } => {
                // Acknowledge immediately; the ack carries our sync fields
                // too (they are nearly free) but is never answered itself.
                ctx.send(
                    from,
                    AdaptiveMsg {
                        logical: self.logical.value_at_hw(hw),
                        lmax: self.lmax_value(hw),
                        t_hat: self.params.t_hat(),
                        kind: MsgKind::Ack { of: seq },
                    },
                );
            }
            MsgKind::Ack { of } => {
                let link = self.links.entry(from).or_default();
                if let Some(pos) = link.in_flight.iter().position(|&(s, _)| s == of) {
                    let (_, sent_hw) = link.in_flight[pos];
                    link.in_flight.drain(..=pos);
                    let rtt_real_upper = (hw - sent_hw) / (1.0 - self.epsilon_hat);
                    // A single delay is at most the round trip containing it.
                    self.adopt_measured(rtt_real_upper);
                }
            }
            MsgKind::Plain => {}
        }
        // --- Plain A^opt from here on. ---
        if msg.lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax_offset = Some(msg.lmax - hw);
            self.broadcast_plain(ctx);
            self.schedule_send(ctx);
        }
        let link = self.links.entry(from).or_default();
        if msg.logical > link.ell || !link.heard {
            link.ell = msg.logical;
            link.offset = msg.logical - hw;
            link.heard = true;
        }
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AdaptiveMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                self.broadcast_probes(ctx);
                self.schedule_send(ctx);
            }
            Self::RATE_TIMER => {
                self.logical.set_multiplier(ctx.hw(), 1.0);
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{rates, Engine, UniformDelay};
    use gcs_time::DriftBounds;

    #[test]
    fn t_hat_converges_to_an_o_t_upper_bound() {
        let eps = 0.02;
        let t_true = 0.4;
        let n = 5;
        let g = topology::path(n);
        let mut engine = Engine::builder(g)
            .protocols(vec![AdaptiveAOpt::new(eps, 0.001); n])
            .delay_model(UniformDelay::new(t_true, 9))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(120.0);
        for v in 0..n {
            let t_hat = engine.protocol(NodeId(v)).t_hat();
            // Upper bound on 2𝒯 after hardware-rate conversion, possibly
            // doubled once more by the doubling rule.
            assert!(
                t_hat <= 4.2 * t_true / (1.0 - eps),
                "node {v}: 𝒯̂ = {t_hat} overshoots O(𝒯)"
            );
            // Large enough to have seen real round trips.
            assert!(t_hat >= 0.05, "node {v}: 𝒯̂ = {t_hat} still tiny");
        }
    }

    #[test]
    fn adaptation_count_is_logarithmic() {
        // Doubling: from 0.001 to ~1.6, at most ~12 adaptations.
        let eps = 0.02;
        let n = 4;
        let g = topology::cycle(n);
        let mut engine = Engine::builder(g)
            .protocols(vec![AdaptiveAOpt::new(eps, 0.001); n])
            .delay_model(UniformDelay::new(0.4, 4))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(150.0);
        for v in 0..n {
            let a = engine.protocol(NodeId(v)).adaptations();
            assert!(a >= 1, "node {v} never adapted");
            assert!(a <= 14, "node {v} adapted {a} times — not logarithmic");
        }
    }

    #[test]
    fn estimates_converge_across_the_network() {
        // The flooded maximum makes all nodes agree (within one doubling).
        let eps = 0.02;
        let n = 6;
        let g = topology::path(n);
        let mut engine = Engine::builder(g)
            .protocols(vec![AdaptiveAOpt::new(eps, 0.01); n])
            .delay_model(UniformDelay::new(0.3, 5))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(200.0);
        let t_hats: Vec<f64> = (0..n).map(|v| engine.protocol(NodeId(v)).t_hat()).collect();
        let max = t_hats.iter().cloned().fold(f64::MIN, f64::max);
        let min = t_hats.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min <= 2.0 + 1e-9, "estimates diverged: {t_hats:?}");
    }

    #[test]
    fn synchronizes_after_convergence() {
        let eps = 0.02;
        let t_true = 0.25;
        let n = 6;
        let g = topology::path(n);
        let drift = DriftBounds::new(eps).unwrap();
        let schedules = rates::split(n, drift, |v| v < n / 2);
        let mut engine = Engine::builder(g)
            .protocols(vec![AdaptiveAOpt::new(eps, 0.001); n])
            .delay_model(UniformDelay::new(t_true, 6))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        // Let the estimate converge, then measure skews against the bounds
        // of the *converged* parameters.
        engine.run_until(150.0);
        let converged = *engine.protocol(NodeId(0)).params();
        let mut worst: f64 = 0.0;
        engine.run_until_observed(400.0, |e| {
            let clocks = e.logical_values();
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            worst = worst.max(max - min);
        });
        assert!(
            worst <= converged.global_skew_bound((n - 1) as u32) + 1e-9,
            "worst {worst} beyond converged bound"
        );
    }
}
