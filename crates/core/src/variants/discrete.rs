//! Discretized message encoding with `O(log 1/μ̂)` bit complexity
//! (paper Section 6.2).
//!
//! Instead of unbounded real clock values, nodes transmit per broadcast:
//!
//! * `dl` — the progress of their logical clock since the previous
//!   broadcast, rounded *down* to multiples of the quantum `q = μ·H₀` and
//!   capped at `⌈(1 + μ)/μ⌉` steps (the most the clock can gain in one `H₀`
//!   period), needing `O(log 1/μ)` bits;
//! * `dmax` — how many whole `H₀` units their announced maximum-clock
//!   estimate advanced, capped at `⌈(1 + ε̂)(1 + μ)/(1 − ε̂)⌉` units per
//!   broadcast, needing `O(1)` bits. A larger backlog is carried over to
//!   subsequent broadcasts — the paper's argument is that `L^max` itself
//!   grows at most at rate `1 + ε`, so a capped-but-persistent update stream
//!   never falls behind in the executions that matter for Theorem 5.5.
//!
//! Receivers reconstruct cumulative values (all clocks start at 0, and
//! links are reliable), so rounding errors never accumulate: the receiver's
//! estimate is the sender's true value rounded down by less than one
//! quantum. The quantization is absorbed by enlarging `κ` by two quanta.
//!
//! **FIFO requirement.** Differential encoding requires per-link in-order
//! delivery (in a real deployment the link layer provides this; sequence
//! numbers travel for free). Use FIFO-preserving delay models (e.g.
//! [`gcs_sim::ConstantDelay`]); out-of-order delivery panics.

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::Params;

/// The quantized differential message of [`DiscreteAOpt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscreteMsg {
    /// Logical-clock progress since the previous broadcast, in quanta
    /// `q = μ·H₀`.
    pub dl: u32,
    /// Announced maximum-estimate progress, in `H₀` units.
    pub dmax: u32,
    /// Broadcast sequence number (free in a FIFO link layer; not counted
    /// toward the bit complexity).
    pub seq: u64,
}

/// Per-neighbour reconstruction state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Reconstruction {
    /// Reconstructed cumulative logical value of the sender.
    cum_logical: f64,
    /// Reconstructed cumulative announced `H₀` units.
    cum_units: u64,
    /// Next expected sequence number.
    next_seq: u64,
    /// `L_v^w − H_v` estimate offset (as in `A^opt`).
    offset: f64,
    /// Whether at least one message has been integrated.
    heard: bool,
}

/// `A^opt` with the paper's low-bit-complexity message encoding.
///
/// # Example
///
/// ```
/// use gcs_core::{DiscreteAOpt, Params};
///
/// let p = Params::recommended(1e-3, 1.0)?;
/// // ~ log2(1/μ) + O(1) bits per message:
/// assert!(DiscreteAOpt::bits_per_message(&p) <= 10);
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DiscreteAOpt {
    params: Params,
    /// Effective κ: the configured κ plus two quanta of rounding slack.
    kappa_eff: f64,
    logical: LogicalClock,
    lmax_offset: Option<f64>,
    /// `H₀` units already announced to neighbours.
    announced_units: u64,
    /// Cumulative logical value already conveyed to neighbours.
    sent_logical: f64,
    seq: u64,
    neighbors: HashMap<NodeId, Reconstruction>,
    sends: u64,
}

impl DiscreteAOpt {
    /// Timer slot for the periodic broadcast.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);

    /// Creates a node. `κ` is internally enlarged by `2q = 2μH₀` to absorb
    /// the quantization, per the paper's remark.
    pub fn new(params: Params) -> Self {
        DiscreteAOpt {
            params,
            kappa_eff: params.kappa() + 2.0 * params.mu() * params.h0(),
            logical: LogicalClock::new(),
            lmax_offset: None,
            announced_units: 0,
            sent_logical: 0.0,
            seq: 0,
            neighbors: HashMap::new(),
            sends: 0,
        }
    }

    /// The logical quantum `q = μ·H₀`.
    pub fn quantum(&self) -> f64 {
        self.params.mu() * self.params.h0()
    }

    /// Maximum `dl` steps per broadcast: `⌈(1 + μ)/μ⌉`.
    pub fn dl_cap(params: &Params) -> u32 {
        ((1.0 + params.mu()) / params.mu()).ceil() as u32
    }

    /// Maximum `dmax` units per broadcast:
    /// `⌈(1 + ε̂)(1 + μ)/(1 − ε̂)⌉`.
    pub fn dmax_cap(params: &Params) -> u32 {
        ((1.0 + params.epsilon_hat()) * (1.0 + params.mu()) / (1.0 - params.epsilon_hat())).ceil()
            as u32
    }

    /// Bits needed per message: `⌈log₂(dl_cap + 1)⌉ + ⌈log₂(dmax_cap + 1)⌉`.
    pub fn bits_per_message(params: &Params) -> u32 {
        let bits = |cap: u32| 32 - (cap + 1).leading_zeros();
        bits(Self::dl_cap(params)) + bits(Self::dmax_cap(params))
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The maximum-clock estimate at hardware reading `hw`.
    pub fn lmax_value(&self, hw: f64) -> f64 {
        self.lmax_offset.map_or(0.0, |o| hw + o)
    }

    /// Re-arms the Algorithm 1 send trigger for the next multiple of `H₀`
    /// not yet reached by `L_v^max` (same trigger as base `A^opt`).
    fn schedule_send(&mut self, ctx: &mut Context<'_, DiscreteMsg>) {
        let h0 = self.params.h0();
        let lmax = self.lmax_value(ctx.hw());
        let k = (lmax / h0 + 1e-9).floor() + 1.0;
        let offset = self.lmax_offset.expect("scheduled only after start");
        ctx.set_timer(Self::SEND_TIMER, k * h0 - offset);
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, DiscreteMsg>) {
        let hw = ctx.hw();
        let q = self.quantum();
        let logical = self.logical.value_at_hw(hw);
        let dl_raw = ((logical - self.sent_logical) / q).floor().max(0.0) as u32;
        let dl = dl_raw.min(Self::dl_cap(&self.params));
        self.sent_logical += dl as f64 * q;

        let h0 = self.params.h0();
        let available_units = (self.lmax_value(hw) / h0 + 1e-9).floor().max(0.0) as u64;
        let backlog = available_units.saturating_sub(self.announced_units);
        let dmax = backlog.min(Self::dmax_cap(&self.params) as u64) as u32;
        self.announced_units += dmax as u64;

        let seq = self.seq;
        self.seq += 1;
        self.sends += 1;
        ctx.send_all(DiscreteMsg { dl, dmax, seq });
    }

    fn set_clock_rate(&mut self, ctx: &mut Context<'_, DiscreteMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for rec in self.neighbors.values() {
            if !rec.heard {
                continue;
            }
            let est = hw + rec.offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            up = 0.0;
            down = 0.0;
        }
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(up, down, self.kappa_eff, headroom);
        if r > 0.0 {
            self.logical.set_multiplier(hw, 1.0 + self.params.mu());
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.params.mu());
        } else {
            self.logical.set_multiplier(hw, 1.0);
            ctx.cancel_timer(Self::RATE_TIMER);
        }
    }
}

impl Protocol for DiscreteAOpt {
    type Msg = DiscreteMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, DiscreteMsg>) {
        let hw = ctx.hw();
        self.logical.start(hw);
        self.lmax_offset = Some(0.0 - hw);
        self.broadcast(ctx);
        self.schedule_send(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DiscreteMsg>, from: NodeId, msg: DiscreteMsg) {
        let hw = ctx.hw();
        let q = self.quantum();
        let h0 = self.params.h0();
        let rec = self.neighbors.entry(from).or_insert(Reconstruction {
            cum_logical: 0.0,
            cum_units: 0,
            next_seq: 0,
            offset: f64::NEG_INFINITY,
            heard: false,
        });
        assert_eq!(
            msg.seq, rec.next_seq,
            "DiscreteAOpt requires FIFO links (got seq {} from {from}, expected {})",
            msg.seq, rec.next_seq
        );
        rec.next_seq += 1;
        rec.cum_logical += msg.dl as f64 * q;
        rec.cum_units += msg.dmax as u64;
        // The reconstructed value is monotone, so it always refreshes the
        // estimate (it plays the role of both L_w and the ℓ_v^w guard).
        rec.offset = rec.cum_logical - hw;
        rec.heard = true;
        let candidate_lmax = rec.cum_units as f64 * h0;
        if candidate_lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax_offset = Some(candidate_lmax - hw);
            // Forward immediately, as in base A^opt — but the *encoded*
            // increment per message stays capped; any excess is carried to
            // subsequent broadcasts (paper Section 6.2).
            self.broadcast(ctx);
            self.schedule_send(ctx);
        }
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DiscreteMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                self.broadcast(ctx);
                self.schedule_send(ctx);
            }
            Self::RATE_TIMER => {
                self.logical.set_multiplier(ctx.hw(), 1.0);
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, Engine};
    use gcs_time::RateSchedule;

    fn params() -> Params {
        Params::recommended(0.01, 0.1).unwrap()
    }

    #[test]
    fn bit_complexity_is_logarithmic_in_one_over_mu() {
        // μ ≈ 14ε̂: halving ε̂ adds about one bit to the dl field.
        let coarse = Params::recommended(0.01, 1.0).unwrap();
        let fine = Params::recommended(0.0001, 1.0).unwrap();
        let b_coarse = DiscreteAOpt::bits_per_message(&coarse);
        let b_fine = DiscreteAOpt::bits_per_message(&fine);
        assert!(b_fine > b_coarse);
        assert!(b_fine <= b_coarse + 9, "growth must be logarithmic");
        assert!(b_coarse <= 8);
    }

    #[test]
    fn caps_match_formulas() {
        let p = params();
        assert_eq!(
            DiscreteAOpt::dl_cap(&p),
            ((1.0 + p.mu()) / p.mu()).ceil() as u32
        );
        assert!(DiscreteAOpt::dmax_cap(&p) >= 1);
    }

    #[test]
    fn synchronizes_with_quantized_messages() {
        let p = params();
        let n = 5;
        let g = topology::path(n);
        let schedules = vec![
            RateSchedule::constant(1.01).unwrap(),
            RateSchedule::constant(0.99).unwrap(),
            RateSchedule::constant(1.01).unwrap(),
            RateSchedule::constant(0.99).unwrap(),
            RateSchedule::constant(1.01).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![DiscreteAOpt::new(p); n])
            .delay_model(ConstantDelay::new(0.05))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(300.0);
        let clocks = engine.logical_values();
        let spread = clocks.iter().cloned().fold(f64::MIN, f64::max)
            - clocks.iter().cloned().fold(f64::MAX, f64::min);
        // Periodic-only propagation costs O(εDH₀) extra global skew.
        let slack = 2.0 * 0.01 * (n as f64) * p.h0();
        assert!(
            spread <= p.global_skew_bound((n - 1) as u32) + slack + 1e-9,
            "spread {spread} too large"
        );
        assert!(spread < 1.0);
    }

    #[test]
    fn reconstruction_tracks_true_clock_within_quantum_plus_staleness() {
        let p = params();
        let g = topology::path(2);
        let mut engine = Engine::builder(g)
            .protocols(vec![DiscreteAOpt::new(p); 2])
            .delay_model(ConstantDelay::new(0.02))
            .build();
        engine.wake_all_at(0.0);
        let q = p.mu() * p.h0();
        engine.run_until_observed(100.0, |e| {
            let hw0 = e.hardware_value(NodeId(0));
            let node0 = e.protocol(NodeId(0));
            if let Some(rec) = node0.neighbors.get(&NodeId(1)) {
                if rec.heard {
                    let est = hw0 + rec.offset;
                    let actual = e.logical_value(NodeId(1));
                    // Conservative: estimate never overtakes the truth…
                    assert!(est <= actual + 1e-9);
                    // …and is fresh to within delay + send period + quanta.
                    let staleness_allowance =
                        (1.0 + p.mu()) * (0.02 + p.h0() / 0.99) + 2.0 * q + 0.1;
                    assert!(actual - est <= staleness_allowance);
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "FIFO")]
    fn out_of_order_delivery_is_rejected() {
        // A delay model that reverses the order of the first two messages.
        use gcs_sim::{DelayCtx, Delivery, FnDelay};
        let mut count = 0;
        let delay = FnDelay::new(
            move |_: &DelayCtx<'_>| {
                count += 1;
                // First transmission slow, second fast: guaranteed reorder.
                if count == 1 {
                    Delivery::After(1.0)
                } else {
                    Delivery::After(0.0)
                }
            },
            Some(1.0),
        );
        let p = params();
        let g = topology::path(2);
        let mut engine = Engine::builder(g)
            .protocols(vec![DiscreteAOpt::new(p); 2])
            .delay_model(delay)
            .build();
        engine.wake(NodeId(0), 0.0);
        engine.run_until(5.0);
    }
}
