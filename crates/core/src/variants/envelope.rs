//! The hardware-envelope condition (paper Section 8.6).
//!
//! Condition (1) bounds logical clocks by an *affine* envelope of real
//! time. Section 8.6 sharpens it: every logical clock must stay between the
//! smallest and the largest **hardware** clock value in the system,
//!
//! ```text
//! min_w H_w(t) ≤ L_v(t) ≤ max_w H_w(t).
//! ```
//!
//! The adaptation: whenever a node's maximum-clock estimate `L_v^max`
//! exceeds its own hardware clock, the estimate is advanced at the damped
//! rate `(1 − ε̂)h_v/(1 + ε̂) ≤ 1 − ε̂` — at most the growth rate of
//! `max_w H_w` — and `L_v` is still never raised past `L_v^max`. When the
//! estimate rides `H_v` itself (the node *is* the maximum), it advances at
//! the full hardware rate. The lower side is automatic: the logical rate
//! multiplier never drops below 1 except while riding the (larger)
//! estimate, so `L_v ≥ H_v ≥ min_w H_w`.

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::{AOptMsg, Params};

/// `A^opt` under the sharpened hardware-envelope condition of Section 8.6.
///
/// # Example
///
/// ```
/// use gcs_core::{EnvelopeAOpt, Params};
/// use gcs_graph::topology;
/// use gcs_sim::{ConstantDelay, Engine};
///
/// let p = Params::recommended(1e-2, 0.1)?;
/// let mut engine = Engine::builder(topology::path(3))
///     .protocols(vec![EnvelopeAOpt::new(p); 3])
///     .delay_model(ConstantDelay::new(0.05))
///     .build();
/// engine.wake_all_at(0.0);
/// engine.run_until(20.0);
/// // All clocks between the extreme hardware values (here all rates are 1,
/// // so everything sits at 20).
/// for v in 0..3 {
///     let l = engine.logical_value(gcs_graph::NodeId(v));
///     assert!((l - 20.0).abs() < 1e-9);
/// }
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EnvelopeAOpt {
    params: Params,
    logical: LogicalClock,
    /// `L_v^max` anchored on the hardware clock with a time-varying scale.
    lmax: Option<Scaled>,
    estimates: HashMap<NodeId, (f64, f64)>, // (offset from H, ell guard)
    sends: u64,
}

/// A value `anchor + (hw − anchor_hw)·scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scaled {
    anchor: f64,
    anchor_hw: f64,
    scale: f64,
}

impl Scaled {
    fn value(&self, hw: f64) -> f64 {
        self.anchor + (hw - self.anchor_hw) * self.scale
    }

    fn rebase(&mut self, hw: f64, value: f64, scale: f64) {
        self.anchor = value;
        self.anchor_hw = hw;
        self.scale = scale;
    }
}

impl EnvelopeAOpt {
    /// Timer slot for the periodic broadcast.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);
    /// Timer slot for the `L_v = L_v^max` crossing.
    pub const CROSS_TIMER: TimerId = TimerId(2);
    /// Timer slot for the `L_v^max = H_v` crossing (switch the estimate
    /// back to the full hardware rate).
    pub const MAX_CROSS_TIMER: TimerId = TimerId(3);

    /// Creates a node.
    pub fn new(params: Params) -> Self {
        EnvelopeAOpt {
            params,
            logical: LogicalClock::new(),
            lmax: None,
            estimates: HashMap::new(),
            sends: 0,
        }
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The damped estimate scale `(1 − ε̂)/(1 + ε̂)`.
    fn damped(&self) -> f64 {
        (1.0 - self.params.epsilon_hat()) / (1.0 + self.params.epsilon_hat())
    }

    /// The maximum-clock estimate at hardware reading `hw`.
    pub fn lmax_value(&self, hw: f64) -> f64 {
        self.lmax.map_or(0.0, |s| s.value(hw))
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        self.sends += 1;
        ctx.send_all(AOptMsg {
            logical: self.logical.value_at_hw(hw),
            lmax: self.lmax_value(hw),
        });
    }

    /// Chooses the estimate's growth scale for its current position
    /// relative to `H_v`, re-anchoring it and arming the `L^max = H`
    /// crossing timer when the damped estimate will be caught by the
    /// hardware clock.
    fn retune_lmax(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        let value = self.lmax_value(hw).max(hw); // L^max ≥ H_v invariant
        let above = value > hw + 1e-12;
        let scale = if above { self.damped() } else { 1.0 };
        self.lmax
            .as_mut()
            .expect("initialized at start")
            .rebase(hw, value, scale);
        if above {
            // H grows at rate 1·h, the estimate at scale·h < h: they meet at
            // hw* with value + (hw* − hw)·scale = hw*.
            let cross = (value - hw * scale) / (1.0 - scale);
            ctx.set_timer(Self::MAX_CROSS_TIMER, cross);
        } else {
            ctx.cancel_timer(Self::MAX_CROSS_TIMER);
        }
    }

    /// Sets the logical multiplier, never letting `L_v` overtake `L_v^max`
    /// (same device as the external variant).
    fn apply_multiplier(&mut self, ctx: &mut Context<'_, AOptMsg>, desired: f64) {
        let hw = ctx.hw();
        let scale = self.lmax.expect("initialized at start").scale;
        let headroom = self.lmax_value(hw) - self.logical.value_at_hw(hw);
        if desired > scale && headroom <= 1e-12 {
            self.logical.set_multiplier(hw, scale);
            ctx.cancel_timer(Self::CROSS_TIMER);
            ctx.cancel_timer(Self::RATE_TIMER);
        } else {
            self.logical.set_multiplier(hw, desired);
            if desired > scale {
                ctx.set_timer(Self::CROSS_TIMER, hw + headroom / (desired - scale));
            } else {
                ctx.cancel_timer(Self::CROSS_TIMER);
            }
        }
    }

    fn set_clock_rate(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for (offset, _) in self.estimates.values() {
            let est = hw + offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            up = 0.0;
            down = 0.0;
        }
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(up, down, self.params.kappa(), headroom);
        if r > 0.0 {
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.params.mu());
            self.apply_multiplier(ctx, 1.0 + self.params.mu());
        } else {
            ctx.cancel_timer(Self::RATE_TIMER);
            self.apply_multiplier(ctx, 1.0);
        }
    }
}

impl Protocol for EnvelopeAOpt {
    type Msg = AOptMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        self.logical.start(hw);
        self.lmax = Some(Scaled {
            anchor: 0.0,
            anchor_hw: hw,
            scale: 1.0,
        });
        self.broadcast(ctx);
        ctx.set_timer(Self::SEND_TIMER, hw + self.params.h0());
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AOptMsg>, from: NodeId, msg: AOptMsg) {
        let hw = ctx.hw();
        // 1e-9 slack: see the same guard in `AOpt::on_message`.
        if msg.lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax
                .as_mut()
                .expect("initialized at start")
                .rebase(hw, msg.lmax, 1.0);
            self.retune_lmax(ctx);
            self.broadcast(ctx);
        }
        let entry = self
            .estimates
            .entry(from)
            .or_insert((f64::NEG_INFINITY, f64::NEG_INFINITY));
        if msg.logical > entry.1 {
            entry.1 = msg.logical;
            entry.0 = msg.logical - hw;
        }
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AOptMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                self.broadcast(ctx);
                ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.params.h0());
            }
            Self::RATE_TIMER => {
                self.apply_multiplier(ctx, 1.0);
            }
            Self::CROSS_TIMER => {
                // L caught L^max: ride it at the estimate's own scale.
                let scale = self.lmax.expect("initialized at start").scale;
                self.logical.set_multiplier(ctx.hw(), scale);
                ctx.cancel_timer(Self::RATE_TIMER);
            }
            Self::MAX_CROSS_TIMER => {
                // H_v caught the damped estimate: L^max rides H_v again.
                self.retune_lmax(ctx);
                // If L was riding L^max, it must pick up the new scale.
                let hw = ctx.hw();
                let headroom = self.lmax_value(hw) - self.logical.value_at_hw(hw);
                if headroom <= 1e-12 {
                    self.logical
                        .set_multiplier(hw, self.lmax.expect("initialized").scale);
                }
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{Engine, UniformDelay};
    use gcs_time::DriftBounds;

    /// Checks the §8.6 invariant min_w H_w ≤ L_v ≤ max_w H_w over a run.
    fn check_envelope(n: usize, seed: u64, horizon: f64) {
        let eps = 0.02;
        let params = Params::recommended(eps, 0.1).unwrap();
        let drift = DriftBounds::new(eps).unwrap();
        let g = topology::path(n);
        let schedules = gcs_sim::rates::random_walk(n, drift, 4.0, horizon, seed);
        let mut engine = Engine::builder(g)
            .protocols(vec![EnvelopeAOpt::new(params); n])
            .delay_model(UniformDelay::new(0.1, seed))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(horizon, |e| {
            let hws: Vec<f64> = (0..n).map(|v| e.hardware_value(NodeId(v))).collect();
            let h_min = hws.iter().cloned().fold(f64::MAX, f64::min);
            let h_max = hws.iter().cloned().fold(f64::MIN, f64::max);
            for v in 0..n {
                let l = e.logical_value(NodeId(v));
                assert!(
                    l >= h_min - 1e-9,
                    "node {v}: L = {l} below min H = {h_min} at t = {}",
                    e.now()
                );
                assert!(
                    l <= h_max + 1e-9,
                    "node {v}: L = {l} above max H = {h_max} at t = {}",
                    e.now()
                );
            }
        });
    }

    #[test]
    fn clocks_stay_within_hardware_envelope() {
        check_envelope(5, 3, 120.0);
        check_envelope(4, 11, 120.0);
    }

    #[test]
    fn still_synchronizes() {
        let eps = 0.02;
        let params = Params::recommended(eps, 0.1).unwrap();
        let drift = DriftBounds::new(eps).unwrap();
        let n = 6;
        let g = topology::path(n);
        let schedules = gcs_sim::rates::split(n, drift, |v| v < n / 2);
        let mut engine = Engine::builder(g)
            .protocols(vec![EnvelopeAOpt::new(params); n])
            .delay_model(UniformDelay::new(0.1, 5))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut worst: f64 = 0.0;
        engine.run_until_observed(200.0, |e| {
            let clocks = e.logical_values();
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            worst = worst.max(max - min);
        });
        // Rate changes are damped by only 1 − 𝒪(ε̂), so the usual bounds
        // hold up to a constant; check against the standard 𝒢 plus slack.
        let slack = 2.0 * eps * 200.0 * 0.1;
        assert!(
            worst <= params.global_skew_bound((n - 1) as u32) + slack,
            "worst skew {worst}"
        );
        assert!(worst > 0.0);
    }

    #[test]
    fn lmax_never_below_own_hardware_clock() {
        let params = Params::recommended(0.02, 0.1).unwrap();
        let n = 4;
        let g = topology::path(n);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::alternating(n, drift, 7.0, 100.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![EnvelopeAOpt::new(params); n])
            .delay_model(UniformDelay::new(0.1, 9))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(100.0, |e| {
            for v in 0..n {
                let hw = e.hardware_value(NodeId(v));
                let lmax = e.protocol(NodeId(v)).lmax_value(hw);
                assert!(lmax >= hw - 1e-9, "L^max {lmax} fell below H {hw}");
            }
        });
    }
}
