//! External synchronization (paper Section 8.5).
//!
//! One distinguished node — the *reference* — has access to real time
//! (`L = H = t`); every other node must track it while never overtaking real
//! time: the paper replaces Condition (1) by
//! `t − d(v, v₀)·𝒯 − τ ≤ L_v(t) ≤ t`.
//!
//! The adaptation prescribed by the paper: non-reference nodes behave like
//! `A^opt`, except that they increase `L_v^max` at the *damped* rate
//! `h_v/(1 + ε̂)` (which is at most the real-time rate, so the estimate can
//! never overtake real time on its own), and they also damp `L_v` to that
//! rate whenever `L_v = L_v^max`. Larger received estimates are still
//! adopted and flooded, so nodes catch up quickly.

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::Params;

/// The synchronization message `⟨L_v, L_v^max⟩` of the external variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExternalMsg {
    /// Sender's logical clock at send time.
    pub logical: f64,
    /// Sender's maximum-clock (here: real-time) estimate at send time.
    pub lmax: f64,
}

/// A value advancing at `scale · h_v` — represented by an anchor so it can
/// be evaluated lazily against the hardware clock.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScaledValue {
    anchor: f64,
    anchor_hw: f64,
    scale: f64,
}

impl ScaledValue {
    fn value(&self, hw: f64) -> f64 {
        self.anchor + (hw - self.anchor_hw) * self.scale
    }

    fn set(&mut self, hw: f64, value: f64) {
        self.anchor = value;
        self.anchor_hw = hw;
    }
}

/// `A^opt` adapted for external synchronization against a reference node.
///
/// Construct the reference with [`ExternalAOpt::reference`] (its hardware
/// clock should be driven at rate 1 — it *is* real time) and every other
/// node with [`ExternalAOpt::new`].
///
/// # Example
///
/// ```
/// use gcs_core::{ExternalAOpt, Params};
/// use gcs_graph::topology;
/// use gcs_sim::{ConstantDelay, Engine};
///
/// let p = Params::recommended(1e-2, 0.1)?;
/// let mut nodes = vec![ExternalAOpt::reference(p)];
/// nodes.extend(vec![ExternalAOpt::new(p); 3]);
/// let mut engine = Engine::builder(topology::path(4))
///     .protocols(nodes)
///     .delay_model(ConstantDelay::new(0.05))
///     .build();
/// engine.wake_all_at(0.0);
/// engine.run_until(20.0);
/// // No logical clock exceeds real time.
/// for v in 0..4 {
///     assert!(engine.logical_value(gcs_graph::NodeId(v)) <= 20.0 + 1e-9);
/// }
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExternalAOpt {
    params: Params,
    is_reference: bool,
    logical: LogicalClock,
    lmax: Option<ScaledValue>,
    estimates: HashMap<NodeId, (f64, f64)>, // (offset from H, ell guard)
    sends: u64,
}

impl ExternalAOpt {
    /// Timer slot for the periodic broadcast.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);
    /// Timer slot for the `L_v = L_v^max` crossing (fall back to the damped
    /// rate so the estimate is never overtaken).
    pub const CROSS_TIMER: TimerId = TimerId(2);

    /// Creates a non-reference node.
    pub fn new(params: Params) -> Self {
        ExternalAOpt {
            params,
            is_reference: false,
            logical: LogicalClock::new(),
            lmax: None,
            estimates: HashMap::new(),
            sends: 0,
        }
    }

    /// Creates the reference node (run its hardware clock at rate 1).
    pub fn reference(params: Params) -> Self {
        ExternalAOpt {
            is_reference: true,
            ..Self::new(params)
        }
    }

    /// Whether this node is the real-time reference.
    pub fn is_reference(&self) -> bool {
        self.is_reference
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The damped estimate-growth scale `1/(1 + ε̂)`.
    fn scale(&self) -> f64 {
        1.0 / (1.0 + self.params.epsilon_hat())
    }

    /// The real-time estimate `L_v^max` at hardware reading `hw`.
    pub fn lmax_value(&self, hw: f64) -> f64 {
        self.lmax.map_or(0.0, |s| s.value(hw))
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, ExternalMsg>) {
        let hw = ctx.hw();
        let logical = self.logical.value_at_hw(hw);
        let lmax = if self.is_reference {
            logical
        } else {
            self.lmax_value(hw)
        };
        self.sends += 1;
        ctx.send_all(ExternalMsg { logical, lmax });
    }

    fn schedule_send(&mut self, ctx: &mut Context<'_, ExternalMsg>) {
        ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.params.h0());
    }

    /// Sets the logical multiplier, damping to the estimate's own rate when
    /// `L_v` has (within floating-point slack) caught `L_v^max`, and arming
    /// the crossing timer otherwise. This is the single place the invariant
    /// `L_v ≤ L_v^max` is enforced between events.
    fn apply_multiplier(&mut self, ctx: &mut Context<'_, ExternalMsg>, desired: f64) {
        let hw = ctx.hw();
        let scale = self.scale();
        let headroom = self.lmax_value(hw) - self.logical.value_at_hw(hw);
        if desired > scale && headroom <= 1e-12 {
            // Riding the estimate: any faster rate would overtake it.
            self.logical.set_multiplier(hw, scale);
            ctx.cancel_timer(Self::CROSS_TIMER);
            ctx.cancel_timer(Self::RATE_TIMER);
        } else {
            self.logical.set_multiplier(hw, desired);
            if desired > scale {
                ctx.set_timer(Self::CROSS_TIMER, hw + headroom / (desired - scale));
            } else {
                ctx.cancel_timer(Self::CROSS_TIMER);
            }
        }
    }

    fn set_clock_rate(&mut self, ctx: &mut Context<'_, ExternalMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for (offset, _) in self.estimates.values() {
            let est = hw + offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            up = 0.0;
            down = 0.0;
        }
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(up, down, self.params.kappa(), headroom);
        if r > 0.0 {
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.params.mu());
            self.apply_multiplier(ctx, 1.0 + self.params.mu());
        } else {
            ctx.cancel_timer(Self::RATE_TIMER);
            self.apply_multiplier(ctx, 1.0);
        }
    }
}

impl Protocol for ExternalAOpt {
    type Msg = ExternalMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ExternalMsg>) {
        let hw = ctx.hw();
        self.logical.start(hw);
        if !self.is_reference {
            self.lmax = Some(ScaledValue {
                anchor: 0.0,
                anchor_hw: hw,
                scale: self.scale(),
            });
            // Start damped: L = L^max = 0 and the estimate must lead.
            self.logical.set_multiplier(hw, self.scale());
        }
        self.broadcast(ctx);
        self.schedule_send(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ExternalMsg>, from: NodeId, msg: ExternalMsg) {
        if self.is_reference {
            return; // the reference never adjusts
        }
        let hw = ctx.hw();
        // 1e-9 slack: see the same guard in `AOpt::on_message`.
        if msg.lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax
                .as_mut()
                .expect("initialized at start")
                .set(hw, msg.lmax);
            self.broadcast(ctx);
        }
        let entry = self
            .estimates
            .entry(from)
            .or_insert((f64::NEG_INFINITY, f64::NEG_INFINITY));
        if msg.logical > entry.1 {
            entry.1 = msg.logical;
            entry.0 = msg.logical - hw;
        }
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ExternalMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                self.broadcast(ctx);
                self.schedule_send(ctx);
            }
            Self::RATE_TIMER => {
                self.apply_multiplier(ctx, 1.0);
            }
            Self::CROSS_TIMER => {
                // L reached L^max: ride it at the damped rate.
                self.logical.set_multiplier(ctx.hw(), self.scale());
                ctx.cancel_timer(Self::RATE_TIMER);
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, Engine, UniformDelay};
    use gcs_time::{DriftBounds, RateSchedule};

    fn network(n: usize, t_max: f64, seed: u64) -> Engine<ExternalAOpt, UniformDelay> {
        let p = Params::recommended(0.01, t_max).unwrap();
        let g = topology::path(n);
        let drift = DriftBounds::new(0.01).unwrap();
        let mut schedules = vec![RateSchedule::constant(1.0).unwrap()];
        schedules.extend(gcs_sim::rates::random_walk(n - 1, drift, 5.0, 300.0, seed));
        let mut nodes = vec![ExternalAOpt::reference(p)];
        nodes.extend(vec![ExternalAOpt::new(p); n - 1]);
        let mut engine = Engine::builder(g)
            .protocols(nodes)
            .delay_model(UniformDelay::new(t_max, seed))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine
    }

    #[test]
    fn logical_clocks_never_exceed_real_time() {
        let mut engine = network(5, 0.1, 7);
        engine.run_until_observed(200.0, |e| {
            for v in 0..5 {
                let l = e.logical_value(NodeId(v));
                assert!(
                    l <= e.now() + 1e-9,
                    "node {v} overtook real time: {l} > {}",
                    e.now()
                );
            }
        });
    }

    #[test]
    fn reference_tracks_real_time_exactly() {
        let mut engine = network(4, 0.1, 3);
        engine.run_until(100.0);
        assert!((engine.logical_value(NodeId(0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn followers_stay_close_to_reference() {
        let mut engine = network(5, 0.1, 11);
        engine.run_until(300.0);
        let reference = engine.logical_value(NodeId(0));
        for v in 1..5 {
            let lag = reference - engine.logical_value(NodeId(v));
            assert!(lag >= -1e-9, "node {v} ahead of the reference");
            // Linear-in-distance accuracy (paper: t − d·𝒯 − τ ≤ L_v).
            let allowance = v as f64 * 0.1 + 3.0 * 0.01 * 300.0_f64.min(60.0) + 5.0;
            assert!(lag <= allowance, "node {v} lag {lag} too large");
        }
    }

    #[test]
    fn follower_clocks_are_monotone() {
        let mut engine = network(4, 0.05, 9);
        let mut last = [0.0f64; 4];
        engine.run_until_observed(150.0, |e| {
            for (v, prev) in last.iter_mut().enumerate() {
                let l = e.logical_value(NodeId(v));
                assert!(l >= *prev - 1e-12, "clock ran backwards at node {v}");
                *prev = l;
            }
        });
    }

    #[test]
    fn constant_delay_converges_tightly() {
        let p = Params::recommended(0.01, 0.1).unwrap();
        let g = topology::path(3);
        let mut nodes = vec![ExternalAOpt::reference(p)];
        nodes.extend(vec![ExternalAOpt::new(p); 2]);
        let mut engine = Engine::builder(g)
            .protocols(nodes)
            .delay_model(ConstantDelay::new(0.05))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(100.0);
        let lag = engine.logical_value(NodeId(0)) - engine.logical_value(NodeId(2));
        assert!(lag >= 0.0);
        assert!(lag < 1.0, "lag {lag} too large under benign conditions");
    }
}
