//! The unbounded-rate (`β = ∞`) variant.

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};

use crate::{AOpt, AOptMsg, Params};

/// `A^opt` with instantaneous clock jumps.
///
/// The paper remarks after Theorem 5.10 that Theorems 5.5 and 5.10 continue
/// to hold when the increase `R_v` computed by `setClockRate` is applied at
/// once instead of via a bounded rate boost — the more aggressive strategy
/// permitted when Condition (2)'s upper bound `β` is dropped. Theorem 7.12
/// then shows this buys *nothing asymptotically*: even unbounded rates
/// cannot beat `Ω(α𝒯 log_{1/ε} D)` local skew. This variant exists to
/// demonstrate both facts empirically (experiment F8).
///
/// # Example
///
/// ```
/// use gcs_core::{AOptJump, Params};
///
/// let p = Params::recommended(1e-3, 1.0)?;
/// let node = AOptJump::new(p);
/// assert_eq!(node.inner().params().sigma(), 2);
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AOptJump {
    inner: AOpt,
}

impl AOptJump {
    /// Creates a node with the given parameters.
    pub fn new(params: Params) -> Self {
        let mut inner = AOpt::new(params);
        inner.jump_mode = true;
        AOptJump { inner }
    }

    /// Access to the shared `A^opt` state (estimates, counters, parameters).
    pub fn inner(&self) -> &AOpt {
        &self.inner
    }
}

impl Protocol for AOptJump {
    type Msg = AOptMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AOptMsg>, from: NodeId, msg: AOptMsg) {
        self.inner.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AOptMsg>, timer: TimerId) {
        self.inner.on_timer(ctx, timer);
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.inner.logical_value(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        self.inner.rate_multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, Engine};
    use gcs_time::RateSchedule;

    #[test]
    fn jump_variant_still_respects_global_bound() {
        let p = Params::recommended(0.01, 0.1).unwrap();
        let g = topology::path(6);
        let schedules = vec![
            RateSchedule::constant(1.01).unwrap(),
            RateSchedule::constant(0.99).unwrap(),
            RateSchedule::constant(1.01).unwrap(),
            RateSchedule::constant(0.99).unwrap(),
            RateSchedule::constant(1.01).unwrap(),
            RateSchedule::constant(0.99).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![AOptJump::new(p); 6])
            .delay_model(ConstantDelay::new(0.05))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let bound = p.global_skew_bound(5);
        let mut worst: f64 = 0.0;
        engine.run_until_observed(120.0, |e| {
            let clocks = e.logical_values();
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            worst = worst.max(max - min);
        });
        assert!(worst <= bound + 1e-9, "skew {worst} > bound {bound}");
    }

    #[test]
    fn jump_variant_jumps_instead_of_boosting() {
        let p = Params::recommended(0.01, 0.1).unwrap();
        let g = topology::path(2);
        let schedules = vec![
            RateSchedule::constant(1.01).unwrap(),
            RateSchedule::constant(0.99).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![AOptJump::new(p); 2])
            .delay_model(ConstantDelay::new(0.05))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut multiplier_always_one = true;
        engine.run_until_observed(60.0, |e| {
            for v in 0..2 {
                if e.protocol(NodeId(v)).inner().multiplier() != 1.0 {
                    multiplier_always_one = false;
                }
            }
        });
        assert!(multiplier_always_one, "jump variant must never boost rates");
        // Yet it still synchronizes.
        let skew = (engine.logical_value(NodeId(0)) - engine.logical_value(NodeId(1))).abs();
        assert!(skew <= p.local_skew_bound(1) + 1e-9);
    }
}
