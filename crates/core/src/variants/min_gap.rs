//! Bounded minimum message frequency (paper Section 6.1).
//!
//! Plain `A^opt` guarantees a bounded *amortized* frequency, but a burst of
//! ever-larger `L^max` estimates can trigger up to `Θ(𝒢/H₀)` forwards in a
//! short window. The paper's fix: force at least `H₀` of local hardware
//! time between consecutive sends, and let estimates ride locally in the
//! meantime. The price is that information now travels up to `𝒪(D·H₀)`
//! slower, adding `Θ(ε·D·H₀)` to the global skew — a trade-off the paper
//! calls optimal up to constants (a pair at distance `D` deprived of
//! updates for `Θ(D·H₀)` time can always be driven `Θ(ε·D·H₀)` apart).

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::{AOptMsg, Params};

/// `A^opt` with a hard minimum gap of `H₀` local time between sends.
///
/// # Example
///
/// ```
/// use gcs_core::{MinGapAOpt, Params};
///
/// let p = Params::recommended(1e-2, 0.1)?;
/// let node = MinGapAOpt::new(p);
/// assert_eq!(node.sends(), 0);
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MinGapAOpt {
    params: Params,
    logical: LogicalClock,
    lmax_offset: Option<f64>,
    estimates: HashMap<NodeId, (f64, f64)>, // (offset from H, ell guard)
    last_send_hw: f64,
    sends: u64,
}

impl MinGapAOpt {
    /// Timer slot for the (gap-respecting) send trigger.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);

    /// Creates a node.
    pub fn new(params: Params) -> Self {
        MinGapAOpt {
            params,
            logical: LogicalClock::new(),
            lmax_offset: None,
            estimates: HashMap::new(),
            last_send_hw: f64::NEG_INFINITY,
            sends: 0,
        }
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The maximum-clock estimate at hardware reading `hw`.
    pub fn lmax_value(&self, hw: f64) -> f64 {
        self.lmax_offset.map_or(0.0, |o| hw + o)
    }

    /// Sends immediately if the gap permits; otherwise leaves the armed
    /// SEND timer (always pointing at `last_send + H₀`) to do it. The
    /// message content is computed at actual send time, so deferred sends
    /// carry the freshest values automatically.
    fn request_send(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        if hw - self.last_send_hw >= self.params.h0() - 1e-12 {
            self.send_now(ctx);
        } else {
            ctx.set_timer(Self::SEND_TIMER, self.last_send_hw + self.params.h0());
        }
    }

    fn send_now(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        self.last_send_hw = hw;
        self.sends += 1;
        ctx.send_all(AOptMsg {
            logical: self.logical.value_at_hw(hw),
            lmax: self.lmax_value(hw),
        });
        // Keep the heartbeat: at most H₀ of silence.
        ctx.set_timer(Self::SEND_TIMER, hw + self.params.h0());
    }

    fn set_clock_rate(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for (offset, _) in self.estimates.values() {
            let est = hw + offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            up = 0.0;
            down = 0.0;
        }
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(up, down, self.params.kappa(), headroom);
        if r > 0.0 {
            self.logical.set_multiplier(hw, 1.0 + self.params.mu());
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.params.mu());
        } else {
            self.logical.set_multiplier(hw, 1.0);
            ctx.cancel_timer(Self::RATE_TIMER);
        }
    }
}

impl Protocol for MinGapAOpt {
    type Msg = AOptMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        self.logical.start(hw);
        self.lmax_offset = Some(0.0 - hw);
        self.send_now(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AOptMsg>, from: NodeId, msg: AOptMsg) {
        let hw = ctx.hw();
        // 1e-9 slack: see the same guard in `AOpt::on_message`.
        if msg.lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax_offset = Some(msg.lmax - hw);
            self.request_send(ctx);
        }
        let entry = self
            .estimates
            .entry(from)
            .or_insert((f64::NEG_INFINITY, f64::NEG_INFINITY));
        if msg.logical > entry.1 {
            entry.1 = msg.logical;
            entry.0 = msg.logical - hw;
        }
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AOptMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => self.send_now(ctx),
            Self::RATE_TIMER => {
                self.logical.set_multiplier(ctx.hw(), 1.0);
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, DelayCtx, Delivery, Engine, FnDelay};
    use gcs_time::DriftBounds;

    fn params() -> Params {
        Params::recommended(0.02, 0.1).unwrap()
    }

    #[test]
    fn never_sends_faster_than_one_per_h0() {
        // Even under an estimate storm (zero delays, fast neighbour), the
        // per-node send count is hard-capped by elapsed-hw / H₀ (+1).
        let p = params();
        let n = 6;
        let g = topology::path(n);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::split(n, drift, |v| v == 0);
        let delay = FnDelay::new(|_: &DelayCtx<'_>| Delivery::After(0.0), Some(0.0));
        let mut engine = Engine::builder(g)
            .protocols(vec![MinGapAOpt::new(p); n])
            .delay_model(delay)
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let horizon = 100.0;
        engine.run_until(horizon);
        for v in 0..n {
            let hw = engine.hardware_value(NodeId(v));
            let cap = (hw / p.h0()).floor() as u64 + 2;
            let sends = engine.protocol(NodeId(v)).sends();
            assert!(sends <= cap, "node {v} sent {sends} times, hard cap {cap}");
        }
    }

    #[test]
    fn still_synchronizes_with_the_documented_penalty() {
        let p = params();
        let n = 8;
        let g = topology::path(n);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::split(n, drift, |v| v < n / 2);
        let mut engine = Engine::builder(g)
            .protocols(vec![MinGapAOpt::new(p); n])
            .delay_model(ConstantDelay::new(0.05))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut worst: f64 = 0.0;
        engine.run_until_observed(200.0, |e| {
            let clocks = e.logical_values();
            let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
            let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
            worst = worst.max(max - min);
        });
        let penalty = 2.0 * 0.02 * (n as f64) * p.h0();
        assert!(
            worst <= p.global_skew_bound((n - 1) as u32) + penalty + 1e-9,
            "worst {worst} beyond bound + εDH₀ penalty"
        );
    }

    #[test]
    fn deferred_forward_eventually_happens() {
        // Node 1 receives a large estimate right after sending; it must
        // forward it within H₀ local time.
        let p = params();
        let g = topology::path(3);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::split(3, drift, |v| v == 0);
        let mut engine = Engine::builder(g)
            .protocols(vec![MinGapAOpt::new(p); 3])
            .delay_model(ConstantDelay::new(0.01))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(50.0);
        // Node 2 only learns about node 0's fast clock through node 1's
        // (possibly deferred) forwards; its estimate must stay fresh.
        let hw2 = engine.hardware_value(NodeId(2));
        let lmax2 = engine.protocol(NodeId(2)).lmax_value(hw2);
        let l0 = engine.logical_value(NodeId(0));
        assert!(
            l0 - lmax2 <= 3.0 * p.h0() + 1.0,
            "estimate stale: l0 = {l0}, node 2 lmax = {lmax2}"
        );
    }
}
