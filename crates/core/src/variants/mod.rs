//! Model variants of `A^opt` (paper Section 8 and remarks).

mod adaptive;
mod discrete;
mod envelope;
mod external;
mod jump;
mod min_gap;
mod offset;
mod piggyback;

pub use adaptive::{AdaptiveAOpt, AdaptiveMsg, MsgKind};
pub use discrete::{DiscreteAOpt, DiscreteMsg};
pub use envelope::EnvelopeAOpt;
pub use external::{ExternalAOpt, ExternalMsg};
pub use jump::AOptJump;
pub use min_gap::MinGapAOpt;
pub use offset::OffsetAOpt;
pub use piggyback::{PiggybackAOpt, PiggybackMsg};
