//! Lower-bounded delays `[𝒯₁, 𝒯₂]` (paper Section 8.3).
//!
//! When every delay is known to be at least `𝒯₁`, a received clock value is
//! at least `(1 − ε)·𝒯₁` stale, so the receiver may add `(1 − ε̂)·𝒯₁` to
//! everything it receives and only the *uncertainty* `𝒯₂ − 𝒯₁` remains in
//! the skew bounds. Because adjusted estimates no longer sit on the `H₀`
//! grid, this variant sends purely periodically (every `H₀` of hardware
//! time), as the paper suggests; strictly larger maximum estimates are still
//! flooded immediately.

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::{AOptMsg, Params};

/// `A^opt` adapted for delays in `[𝒯₁, 𝒯₂]`.
///
/// Construct `params` with `𝒯̂ ≥ 𝒯₂ − 𝒯₁`: only the uncertainty enters
/// Eq. (4); the common part `𝒯₁` is compensated by the receive-side offset.
///
/// # Example
///
/// ```
/// use gcs_core::{OffsetAOpt, Params};
///
/// // Link delay 1.0 ± 0.05: uncertainty 0.1, known floor 0.9.
/// let p = Params::recommended(1e-3, 0.1)?;
/// let node = OffsetAOpt::new(p, 0.9);
/// assert_eq!(node.t1(), 0.9);
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OffsetAOpt {
    params: Params,
    t1: f64,
    logical: LogicalClock,
    lmax_offset: Option<f64>,
    estimates: HashMap<NodeId, (f64, f64)>, // (offset from H, ell guard)
    sends: u64,
}

impl OffsetAOpt {
    /// Timer slot for the periodic broadcast.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);

    /// Creates a node that assumes every delay is at least `t1`.
    ///
    /// # Panics
    ///
    /// Panics if `t1` is negative or non-finite.
    pub fn new(params: Params, t1: f64) -> Self {
        assert!(t1.is_finite() && t1 >= 0.0, "invalid delay floor {t1}");
        OffsetAOpt {
            params,
            t1,
            logical: LogicalClock::new(),
            lmax_offset: None,
            estimates: HashMap::new(),
            sends: 0,
        }
    }

    /// The known delay floor `𝒯₁`.
    pub fn t1(&self) -> f64 {
        self.t1
    }

    /// Number of broadcasts performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The receive-side compensation `(1 − ε̂)·𝒯₁` added to received values.
    fn compensation(&self) -> f64 {
        (1.0 - self.params.epsilon_hat()) * self.t1
    }

    /// The maximum-clock estimate at hardware reading `hw`.
    pub fn lmax_value(&self, hw: f64) -> f64 {
        self.lmax_offset.map_or(0.0, |o| hw + o)
    }

    fn broadcast(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        self.sends += 1;
        ctx.send_all(AOptMsg {
            logical: self.logical.value_at_hw(hw),
            lmax: self.lmax_value(hw),
        });
    }

    fn set_clock_rate(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for (offset, _) in self.estimates.values() {
            let est = hw + offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            up = 0.0;
            down = 0.0;
        }
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(up, down, self.params.kappa(), headroom);
        if r > 0.0 {
            self.logical.set_multiplier(hw, 1.0 + self.params.mu());
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.params.mu());
        } else {
            self.logical.set_multiplier(hw, 1.0);
            ctx.cancel_timer(Self::RATE_TIMER);
        }
    }
}

impl Protocol for OffsetAOpt {
    type Msg = AOptMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, AOptMsg>) {
        let hw = ctx.hw();
        self.logical.start(hw);
        self.lmax_offset = Some(0.0 - hw);
        self.broadcast(ctx);
        ctx.set_timer(Self::SEND_TIMER, hw + self.params.h0());
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AOptMsg>, from: NodeId, msg: AOptMsg) {
        let hw = ctx.hw();
        let adjusted_logical = msg.logical + self.compensation();
        let adjusted_lmax = msg.lmax + self.compensation();
        // 1e-9 slack: see the same guard in `AOpt::on_message`.
        if adjusted_lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax_offset = Some(adjusted_lmax - hw);
            self.broadcast(ctx);
        }
        let entry = self
            .estimates
            .entry(from)
            .or_insert((f64::NEG_INFINITY, f64::NEG_INFINITY));
        if adjusted_logical > entry.1 {
            entry.1 = adjusted_logical;
            entry.0 = adjusted_logical - hw;
        }
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AOptMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                self.broadcast(ctx);
                ctx.set_timer(Self::SEND_TIMER, ctx.hw() + self.params.h0());
            }
            Self::RATE_TIMER => {
                self.logical.set_multiplier(ctx.hw(), 1.0);
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{DelayCtx, Delivery, Engine, FnDelay};
    use gcs_time::RateSchedule;
    use rand::{Rng, SeedableRng};

    /// Delays uniform in [t1, t2].
    fn banded_delay(
        t1: f64,
        t2: f64,
        seed: u64,
    ) -> FnDelay<impl FnMut(&DelayCtx<'_>) -> Delivery + Clone> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        FnDelay::new(
            move |_: &DelayCtx<'_>| Delivery::After(rng.gen_range(t1..=t2)),
            Some(t2),
        )
    }

    #[test]
    fn compensation_removes_the_floor() {
        // Delays in [1.0, 1.1]: uncertainty only 0.1. The offset variant
        // must synchronize about as tightly as plain A^opt would with
        // 𝒯 = 0.1, far tighter than D·𝒯₂.
        let t1 = 1.0;
        let p = Params::recommended(0.001, 0.1).unwrap();
        let n = 5;
        let g = topology::path(n);
        let schedules = vec![
            RateSchedule::constant(1.001).unwrap(),
            RateSchedule::constant(0.999).unwrap(),
            RateSchedule::constant(1.001).unwrap(),
            RateSchedule::constant(0.999).unwrap(),
            RateSchedule::constant(1.001).unwrap(),
        ];
        let mut engine = Engine::builder(g)
            .protocols(vec![OffsetAOpt::new(p, t1); n])
            .delay_model(banded_delay(t1, 1.1, 5))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(400.0);
        let clocks = engine.logical_values();
        let spread = clocks.iter().cloned().fold(f64::MIN, f64::max)
            - clocks.iter().cloned().fold(f64::MAX, f64::min);
        // Without compensation the estimates would lag by ≥ (n−1)·𝒯₁ ≈ 4;
        // with it the spread reflects only the 0.1 uncertainty (plus H₀
        // staleness terms).
        assert!(spread < 1.0, "spread {spread} suggests 𝒯₁ not compensated");
    }

    #[test]
    fn estimates_remain_conservative() {
        // The adjusted estimate must never exceed the neighbour's true
        // clock: L_v^w ≤ L_w(t) (the paper's safety direction).
        let t1 = 0.5;
        let p = Params::recommended(0.01, 0.2).unwrap();
        let g = topology::path(2);
        let mut engine = Engine::builder(g)
            .protocols(vec![OffsetAOpt::new(p, t1); 2])
            .delay_model(banded_delay(t1, 0.7, 8))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(100.0, |e| {
            for (v, w) in [(0usize, 1usize), (1, 0)] {
                let hw = e.hardware_value(NodeId(v));
                let node = e.protocol(NodeId(v));
                if let Some((offset, _)) = node.estimates.get(&NodeId(w)) {
                    let est = hw + offset;
                    let actual = e.logical_value(NodeId(w));
                    assert!(
                        est <= actual + 1e-9,
                        "estimate {est} overtook actual {actual}"
                    );
                }
            }
        });
    }

    #[test]
    fn zero_floor_degenerates_to_periodic_a_opt() {
        let p = Params::recommended(0.01, 0.1).unwrap();
        let g = topology::path(3);
        let mut engine = Engine::builder(g)
            .protocols(vec![OffsetAOpt::new(p, 0.0); 3])
            .delay_model(gcs_sim::ConstantDelay::new(0.05))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(100.0);
        let clocks = engine.logical_values();
        let spread = clocks.iter().cloned().fold(f64::MIN, f64::max)
            - clocks.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= p.global_skew_bound(2) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid delay floor")]
    fn rejects_negative_floor() {
        let p = Params::recommended(0.01, 0.1).unwrap();
        let _ = OffsetAOpt::new(p, -1.0);
    }
}
