//! Piggybacking sync information on application traffic (paper Section 1).
//!
//! The paper motivates its low bit complexity with piggybacking: the few
//! bits of `⟨L_v, L_v^max⟩` "can be included in (or appended to) any message
//! sent by another application". This variant simulates exactly that: the
//! node's application emits messages on its own schedule, every one of them
//! carries the sync fields for free, and a *dedicated* sync message is sent
//! only when Algorithm 1's trigger fires without recent application cover.
//!
//! The sync guarantees are unaffected — neighbours receive `⟨L, L^max⟩` at
//! least as often as under plain `A^opt` — while the dedicated-message rate
//! falls toward zero once the application chatter is denser than `1/H₀`
//! (experiment T3).

use std::collections::HashMap;

use gcs_graph::NodeId;
use gcs_sim::{Context, Protocol, TimerId};
use gcs_time::LogicalClock;

use crate::rate_rule::clamped_increase;
use crate::Params;

/// A message of the piggybacking variant: the application payload slot plus
/// the free-riding sync fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiggybackMsg {
    /// Sender's logical clock at send time.
    pub logical: f64,
    /// Sender's maximum-clock estimate at send time.
    pub lmax: f64,
    /// Whether this message existed for the application's sake (the sync
    /// fields rode along for free) or was a dedicated sync message.
    pub is_app: bool,
}

/// `A^opt` with its messages piggybacked on application traffic.
///
/// # Example
///
/// ```
/// use gcs_core::{Params, PiggybackAOpt};
///
/// let p = Params::recommended(1e-2, 0.1)?;
/// // Application chatter every ~0.5 hardware units on average.
/// let node = PiggybackAOpt::new(p, 0.5, 7);
/// assert_eq!(node.dedicated_sends(), 0);
/// # Ok::<(), gcs_core::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PiggybackAOpt {
    params: Params,
    logical: LogicalClock,
    lmax_offset: Option<f64>,
    next_multiple: u64,
    estimates: HashMap<NodeId, (f64, f64)>, // (offset from H, ell guard)
    /// Mean application inter-send gap in hardware units.
    app_mean_gap: f64,
    /// xorshift64 state for the application jitter (deterministic per seed).
    rng: u64,
    last_outgoing_hw: f64,
    /// Hardware reading at which the next application message departs.
    next_app_hw: f64,
    dedicated: u64,
    piggybacked: u64,
}

impl PiggybackAOpt {
    /// Timer slot for the Algorithm 1 send trigger.
    pub const SEND_TIMER: TimerId = TimerId(0);
    /// Timer slot for the Algorithm 4 rate reset.
    pub const RATE_TIMER: TimerId = TimerId(1);
    /// Timer slot for the application's own traffic.
    pub const APP_TIMER: TimerId = TimerId(2);

    /// Creates a node whose application sends roughly every `app_mean_gap`
    /// hardware units (jittered ±50%, deterministically from `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `app_mean_gap` is not positive and finite.
    pub fn new(params: Params, app_mean_gap: f64, seed: u64) -> Self {
        assert!(
            app_mean_gap.is_finite() && app_mean_gap > 0.0,
            "invalid application gap {app_mean_gap}"
        );
        PiggybackAOpt {
            params,
            logical: LogicalClock::new(),
            lmax_offset: None,
            next_multiple: 1,
            estimates: HashMap::new(),
            app_mean_gap,
            rng: seed | 1,
            last_outgoing_hw: f64::NEG_INFINITY,
            next_app_hw: f64::INFINITY,
            dedicated: 0,
            piggybacked: 0,
        }
    }

    /// Dedicated (sync-only) broadcasts so far.
    pub fn dedicated_sends(&self) -> u64 {
        self.dedicated
    }

    /// Application broadcasts that carried the sync fields for free.
    pub fn piggybacked_sends(&self) -> u64 {
        self.piggybacked
    }

    /// The maximum-clock estimate at hardware reading `hw`.
    pub fn lmax_value(&self, hw: f64) -> f64 {
        self.lmax_offset.map_or(0.0, |o| hw + o)
    }

    fn next_app_gap(&mut self) -> f64 {
        // xorshift64: cheap, deterministic, good enough for jitter.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let frac = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        self.app_mean_gap * (0.5 + frac)
    }

    fn send(&mut self, ctx: &mut Context<'_, PiggybackMsg>, is_app: bool, lmax: f64) {
        let hw = ctx.hw();
        self.last_outgoing_hw = hw;
        if is_app {
            self.piggybacked += 1;
        } else {
            self.dedicated += 1;
        }
        ctx.send_all(PiggybackMsg {
            logical: self.logical.value_at_hw(hw),
            lmax,
            is_app,
        });
    }

    fn schedule_send(&mut self, ctx: &mut Context<'_, PiggybackMsg>) {
        let h0 = self.params.h0();
        let lmax = self.lmax_value(ctx.hw());
        let k = (lmax / h0 + 1e-9).floor() as u64 + 1;
        self.next_multiple = k;
        let offset = self.lmax_offset.expect("scheduled only after start");
        ctx.set_timer(Self::SEND_TIMER, k as f64 * h0 - offset);
    }

    fn set_clock_rate(&mut self, ctx: &mut Context<'_, PiggybackMsg>) {
        let hw = ctx.hw();
        let l = self.logical.value_at_hw(hw);
        let mut up = f64::NEG_INFINITY;
        let mut down = f64::NEG_INFINITY;
        for (offset, _) in self.estimates.values() {
            let est = hw + offset;
            up = up.max(est - l);
            down = down.max(l - est);
        }
        if up == f64::NEG_INFINITY {
            up = 0.0;
            down = 0.0;
        }
        let headroom = self.lmax_value(hw) - l;
        let r = clamped_increase(up, down, self.params.kappa(), headroom);
        if r > 0.0 {
            self.logical.set_multiplier(hw, 1.0 + self.params.mu());
            ctx.set_timer(Self::RATE_TIMER, hw + r / self.params.mu());
        } else {
            self.logical.set_multiplier(hw, 1.0);
            ctx.cancel_timer(Self::RATE_TIMER);
        }
    }
}

impl Protocol for PiggybackAOpt {
    type Msg = PiggybackMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, PiggybackMsg>) {
        let hw = ctx.hw();
        self.logical.start(hw);
        self.lmax_offset = Some(0.0 - hw);
        self.send(ctx, false, 0.0);
        self.schedule_send(ctx);
        let gap = self.next_app_gap();
        self.next_app_hw = hw + gap;
        ctx.set_timer(Self::APP_TIMER, hw + gap);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, PiggybackMsg>, from: NodeId, msg: PiggybackMsg) {
        let hw = ctx.hw();
        // 1e-9 slack: see the same guard in `AOpt::on_message`.
        if msg.lmax > self.lmax_value(hw) + 1e-9 {
            self.lmax_offset = Some(msg.lmax - hw);
            // Unlike plain A^opt, incoming estimates are not confined to the
            // H₀ grid (application messages carry continuous values), so
            // forwarding every adoption would storm. Forward dedicated only
            // when the adoption crosses a new H₀ multiple — plain A^opt's
            // effective forwarding rate — and skip even that when an
            // application message departs within the next H₀ anyway (the
            // deferral costs 𝒪(H₀) of propagation latency per hop, the same
            // trade-off as the Section 6.1 minimum-gap variant).
            let k_new = (msg.lmax / self.params.h0() + 1e-9).floor() as u64;
            let app_cover = self.next_app_hw - hw <= self.params.h0();
            if k_new >= self.next_multiple && !app_cover {
                self.send(ctx, false, msg.lmax);
            }
            self.schedule_send(ctx);
        }
        let entry = self
            .estimates
            .entry(from)
            .or_insert((f64::NEG_INFINITY, f64::NEG_INFINITY));
        if msg.logical > entry.1 {
            entry.1 = msg.logical;
            entry.0 = msg.logical - hw;
        }
        self.set_clock_rate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PiggybackMsg>, timer: TimerId) {
        match timer {
            Self::SEND_TIMER => {
                let hw = ctx.hw();
                let lmax = self.next_multiple as f64 * self.params.h0();
                // Skip the dedicated send if an application message carried
                // the sync fields recently or will do so shortly.
                let covered = hw - self.last_outgoing_hw < self.params.h0()
                    || self.next_app_hw - hw <= self.params.h0();
                if !covered {
                    self.send(ctx, false, lmax);
                }
                self.schedule_send(ctx);
            }
            Self::RATE_TIMER => {
                self.logical.set_multiplier(ctx.hw(), 1.0);
            }
            Self::APP_TIMER => {
                let hw = ctx.hw();
                let lmax = self.lmax_value(hw);
                self.send(ctx, true, lmax);
                let gap = self.next_app_gap();
                self.next_app_hw = hw + gap;
                ctx.set_timer(Self::APP_TIMER, hw + gap);
            }
            other => unreachable!("unknown timer slot {other:?}"),
        }
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.logical.value_at_hw(hw)
    }

    fn rate_multiplier(&self) -> f64 {
        if self.logical.is_started() {
            self.logical.multiplier()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;
    use gcs_sim::{ConstantDelay, Engine};
    use gcs_time::DriftBounds;

    fn params() -> Params {
        Params::recommended(0.02, 0.1).unwrap()
    }

    fn run(app_gap: f64) -> Engine<PiggybackAOpt, ConstantDelay> {
        let p = params();
        let n = 6;
        let g = topology::path(n);
        let drift = DriftBounds::new(0.02).unwrap();
        let schedules = gcs_sim::rates::split(n, drift, |v| v < n / 2);
        let nodes: Vec<PiggybackAOpt> = (0..n)
            .map(|v| PiggybackAOpt::new(p, app_gap, v as u64 + 1))
            .collect();
        let mut engine = Engine::builder(g)
            .protocols(nodes)
            .delay_model(ConstantDelay::new(0.05))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(150.0);
        engine
    }

    #[test]
    fn dense_app_traffic_suppresses_dedicated_sends() {
        let p = params();
        let engine = run(p.h0() / 4.0); // app 4× denser than 1/H₀
        for v in 0..6 {
            let node = engine.protocol(NodeId(v));
            assert!(
                node.dedicated_sends() * 4 < node.piggybacked_sends(),
                "node {v}: {} dedicated vs {} piggybacked",
                node.dedicated_sends(),
                node.piggybacked_sends()
            );
        }
    }

    #[test]
    fn sparse_app_traffic_keeps_the_sync_heartbeat() {
        let p = params();
        let engine = run(p.h0() * 20.0); // app far sparser than 1/H₀
        for v in 0..6 {
            let node = engine.protocol(NodeId(v));
            // The dedicated heartbeat must carry the protocol.
            assert!(node.dedicated_sends() > node.piggybacked_sends());
        }
    }

    #[test]
    fn synchronization_quality_is_unchanged() {
        let p = params();
        for app_gap in [p.h0() / 4.0, p.h0() * 4.0] {
            let engine = run(app_gap);
            let clocks = engine.logical_values();
            let spread = clocks.iter().cloned().fold(f64::MIN, f64::max)
                - clocks.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                spread <= p.global_skew_bound(5) + 1e-9,
                "spread {spread} beyond 𝒢 with app gap {app_gap}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid application gap")]
    fn rejects_bad_gap() {
        let _ = PiggybackAOpt::new(params(), 0.0, 1);
    }
}
