//! Property tests of the incremental Λ↑/Λ↓ trackers against the retained
//! linear-scan fold.
//!
//! `AOpt` no longer folds over its whole neighbour table on every wake:
//! `lambda_pair` reads two incrementally maintained arg-extremes instead.
//! The claim is not "approximately equal" but **bit-identical** — the
//! tracked entry's contribution is computed by the exact expression the
//! fold would have evaluated for it, and the fold key is a weakly monotone
//! image of the estimate value at every hardware reading. These tests
//! drive randomized estimate-update/wake sequences (including the
//! owner-decrease rescans: a neighbour's offset shrinks whenever the
//! hardware clock outruns its reported logical value) through
//! `record_estimate` and check the equality at every step.

use gcs_core::{AOpt, Params};
use gcs_graph::NodeId;
use proptest::prelude::*;

/// A randomized estimate-update schedule: per step, which neighbour
/// reports, the raw logical value it reports, and how far the local
/// hardware clock advanced since the previous step.
fn update_schedule() -> impl Strategy<Value = Vec<(usize, f64, f64)>> {
    prop::collection::vec((0usize..6, 0.0f64..100.0, 0.0f64..3.0), 1..120)
}

fn oracle(node: &AOpt, hw: f64) -> Option<(u64, u64)> {
    match (node.lambda_up(hw), node.lambda_down(hw)) {
        (Some(up), Some(down)) => Some((up.to_bits(), down.to_bits())),
        _ => None,
    }
}

fn tracked(node: &AOpt, hw: f64) -> Option<(u64, u64)> {
    node.lambda_pair(hw)
        .map(|(up, down)| (up.to_bits(), down.to_bits()))
}

proptest! {
    #[test]
    fn tracker_matches_fold_bit_for_bit(ops in update_schedule()) {
        let params = Params::recommended(0.01, 0.1).unwrap();
        let mut node = AOpt::new(params);
        let mut hw = 0.0;
        for (w, logical, dhw) in ops {
            hw += dhw;
            node.record_estimate(NodeId(w), logical, hw);
            prop_assert_eq!(tracked(&node, hw), oracle(&node, hw));
        }
        // Wakes strictly between messages see the same equality: offsets
        // are static, so the argmax is hardware-reading-independent.
        prop_assert_eq!(tracked(&node, hw + 1.0), oracle(&node, hw + 1.0));
    }

    #[test]
    fn frozen_estimate_tracker_matches_fold(ops in update_schedule()) {
        // The ablated variant tracks the raw `ℓ_v^w` instead of the
        // hardware-relative offset; the monotone-image argument holds for
        // the identity map too.
        let params = Params::recommended(0.01, 0.1).unwrap();
        let mut node = AOpt::with_frozen_estimates(params);
        let mut hw = 0.0;
        for (w, logical, dhw) in ops {
            hw += dhw;
            node.record_estimate(NodeId(w), logical, hw);
            prop_assert_eq!(tracked(&node, hw), oracle(&node, hw));
        }
    }
}
