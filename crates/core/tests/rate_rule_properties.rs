//! Property-based tests of the `setClockRate` decision rule — Algorithm 3
//! is the heart of the paper; its closed form must match the defining
//! supremum exactly.

use gcs_core::rate_rule::{clamped_increase, line1_condition, raw_increase};
use proptest::prelude::*;

/// Λ↑ and Λ↓ as they can actually occur: both are maxima over the same
/// per-neighbour differences, so Λ↑ + Λ↓ ≥ 0.
fn lambda_pair() -> impl Strategy<Value = (f64, f64, f64)> {
    (prop::collection::vec(-50.0f64..50.0, 1..8), 0.1f64..10.0).prop_map(|(diffs, kappa)| {
        let up = diffs.iter().cloned().fold(f64::MIN, f64::max);
        let down = diffs.iter().map(|d| -d).fold(f64::MIN, f64::max);
        (up, down, kappa)
    })
}

proptest! {
    #[test]
    fn raw_increase_is_the_supremum((up, down, kappa) in lambda_pair()) {
        let r = raw_increase(up, down, kappa);
        prop_assert!(r.is_finite());
        // Just below the sup the line-1 condition holds…
        prop_assert!(
            line1_condition(up, down, kappa, r - 1e-6 * kappa),
            "condition fails below sup: up={up}, down={down}, κ={kappa}, r={r}"
        );
        // …and just above it fails.
        prop_assert!(
            !line1_condition(up, down, kappa, r + 1e-6 * kappa),
            "condition holds above sup: up={up}, down={down}, κ={kappa}, r={r}"
        );
    }

    #[test]
    fn raw_increase_is_monotone_in_lambda_up((up, down, kappa) in lambda_pair(),
                                             bump in 0.0f64..20.0) {
        let r1 = raw_increase(up, down, kappa);
        let r2 = raw_increase(up + bump, down, kappa);
        prop_assert!(r2 >= r1 - 1e-9);
    }

    #[test]
    fn raw_increase_is_antitone_in_lambda_down((up, down, kappa) in lambda_pair(),
                                               bump in 0.0f64..20.0) {
        let r1 = raw_increase(up, down, kappa);
        let r2 = raw_increase(up, down + bump, kappa);
        prop_assert!(r2 <= r1 + 1e-9);
    }

    #[test]
    fn shift_invariance((up, down, kappa) in lambda_pair(), x in 0.0f64..10.0) {
        // Increasing L_v by x shifts Λ↑ down and Λ↓ up by x and must reduce
        // the computed increase by exactly x (the algebra behind Lemma 5.1).
        let r0 = raw_increase(up, down, kappa);
        let rx = raw_increase(up - x, down + x, kappa);
        prop_assert!((rx - (r0 - x)).abs() < 1e-7);
    }

    #[test]
    fn balanced_skews_give_bounded_increase(s in 0u32..20, frac in 0.0f64..1.0,
                                            kappa in 0.1f64..10.0) {
        // Λ↑ = Λ↓ = (s + frac)·κ ⇒ R ∈ [-κ, κ] with R = κ/2 at frac = ½.
        let lam = (s as f64 + frac) * kappa;
        let r = raw_increase(lam, lam, kappa);
        prop_assert!(r.abs() <= kappa + 1e-9);
        if (frac - 0.5).abs() < 1e-9 {
            prop_assert!((r - kappa / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clamp_respects_headroom_and_tolerance((up, down, kappa) in lambda_pair(),
                                             headroom in 0.0f64..100.0) {
        let r = clamped_increase(up, down, kappa, headroom);
        // Never exceed the maximum-estimate headroom (Corollary 5.2 needs
        // this).
        prop_assert!(r <= headroom + 1e-12);
        // The κ-tolerance floor: if the furthest-behind neighbour is within
        // κ and there is headroom, the node may advance.
        if down < kappa && headroom > 0.0 {
            prop_assert!(r >= (kappa - down).min(headroom) - 1e-9);
        }
    }

    #[test]
    fn zero_headroom_never_advances((up, down, kappa) in lambda_pair()) {
        prop_assert!(clamped_increase(up, down, kappa, 0.0) <= 0.0);
    }
}
