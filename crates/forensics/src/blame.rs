//! Causal skew provenance — the `gcs trace blame` query.
//!
//! Two steps:
//!
//! 1. **Peak finding.** Reconstructed logical clocks are piecewise linear,
//!    so global skew (max − min over all clocks) and local skew (max
//!    |L_u − L_v| over communication edges) attain their maxima at segment
//!    kinks or at the evaluation horizon. Scanning those finitely many
//!    instants finds the exact peak and its node pair.
//!
//! 2. **Chain walking.** From a peak endpoint the walk repeatedly asks
//!    "what was the last message this node heard before that instant?",
//!    hops to the sender, and recurses — producing the chain of
//!    deliveries, latencies, and multiplier updates along which skew
//!    propagated. This is precisely the mechanism in the paper's §5 upper
//!    bound (Thm 5.10): skew estimates travel as a wavefront of messages
//!    along a path, each hop aging the estimate by the message delay.

use gcs_graph::NodeId;
use gcs_sim::EngineEvent;

use crate::clocks::ClockReconstruction;
use crate::dag::{Dag, EventId};

/// The located skew peaks of an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakReport {
    /// Real time of the global-skew peak.
    pub global_t: f64,
    /// Peak global skew (max − min logical clock).
    pub global: f64,
    /// `(argmax, argmin)` node pair at the global peak.
    pub global_pair: (NodeId, NodeId),
    /// Real time of the local-skew peak.
    pub local_t: f64,
    /// Peak local skew (max |L_u − L_v| over edges).
    pub local: f64,
    /// The edge attaining the local peak, `(ahead, behind)`.
    pub local_pair: (NodeId, NodeId),
}

/// Locates the exact skew peaks of a reconstructed execution.
///
/// Candidate instants are every clock-trajectory kink plus `end` (pass
/// the run horizon to include skew still growing at the end of the
/// stream). Ties keep the earliest instant; pair ties keep the lowest
/// node ids — both make the report deterministic.
///
/// Returns `None` when fewer than two nodes ever woke.
pub fn find_peaks(
    clocks: &ClockReconstruction,
    edges: &[(usize, usize)],
    end: Option<f64>,
) -> Option<PeakReport> {
    let mut times = clocks.kink_times();
    if let Some(end) = end {
        times.push(end);
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times.dedup();
    }

    let mut report: Option<PeakReport> = None;
    let mut logical = vec![None; clocks.node_count()];
    for &t in &times {
        for (i, slot) in logical.iter_mut().enumerate() {
            *slot = clocks.logical(NodeId(i), t);
        }
        let mut max: Option<(f64, usize)> = None;
        let mut min: Option<(f64, usize)> = None;
        for (i, l) in logical.iter().enumerate() {
            let Some(l) = *l else { continue };
            if max.is_none_or(|(m, _)| l > m) {
                max = Some((l, i));
            }
            if min.is_none_or(|(m, _)| l < m) {
                min = Some((l, i));
            }
        }
        let (Some((lmax, imax)), Some((lmin, imin))) = (max, min) else {
            continue;
        };
        if imax == imin {
            continue;
        }
        let global = lmax - lmin;

        let mut local = 0.0;
        let mut local_pair = (NodeId(0), NodeId(0));
        for &(a, b) in edges {
            let la = logical.get(a).copied().flatten();
            let lb = logical.get(b).copied().flatten();
            let (Some(la), Some(lb)) = (la, lb) else {
                continue;
            };
            let skew = (la - lb).abs();
            if skew > local {
                local = skew;
                local_pair = if la >= lb {
                    (NodeId(a), NodeId(b))
                } else {
                    (NodeId(b), NodeId(a))
                };
            }
        }

        let r = report.get_or_insert(PeakReport {
            global_t: t,
            global,
            global_pair: (NodeId(imax), NodeId(imin)),
            local_t: t,
            local,
            local_pair,
        });
        if global > r.global {
            r.global = global;
            r.global_t = t;
            r.global_pair = (NodeId(imax), NodeId(imin));
        }
        if local > r.local {
            r.local = local;
            r.local_t = t;
            r.local_pair = local_pair;
        }
    }
    report
}

/// One message hop of a causal chain, walking backwards in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// The `deliver` event at this hop's receiving end.
    pub deliver: EventId,
    /// The matched `send` event, when the stream contains it.
    pub send: Option<EventId>,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Real time the message left `src`.
    pub sent_t: f64,
    /// Real time it reached `dst`.
    pub delivered_t: f64,
    /// Multiplier the receiver switched to while processing this message,
    /// if the delivery triggered a change.
    pub multiplier_after: Option<f64>,
}

/// The causal history of one node at one instant, as message hops walking
/// back towards the origin of its information.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// The node whose state is being explained.
    pub endpoint: NodeId,
    /// The instant being explained.
    pub at_t: f64,
    /// Message hops, most recent first.
    pub hops: Vec<Hop>,
    /// The wake event terminating the walk, when reached.
    pub origin_wake: Option<EventId>,
    /// True when the walk stopped at the hop limit instead of a wake.
    pub truncated: bool,
}

/// Walks the causal chain of `node`'s state at time `t`: the most recent
/// delivery before `t`, then the most recent delivery the *sender* had
/// heard before sending, and so on, until a node's wake-up or `max_hops`.
pub fn causal_chain(dag: &Dag, node: NodeId, t: f64, max_hops: usize) -> Chain {
    let mut chain = Chain {
        endpoint: node,
        at_t: t,
        hops: Vec::new(),
        origin_wake: None,
        truncated: false,
    };
    let mut cur_node = node;
    let mut cur_t = t;
    loop {
        // Last deliver at cur_node with time ≤ cur_t; earlier-in-stream on
        // ties, so a hop never revisits the same instant forever.
        let deliver =
            dag.events_at(cur_node)
                .iter()
                .rev()
                .copied()
                .find(|&i| match dag.events()[i] {
                    EngineEvent::Deliver { t: dt, .. } => {
                        dt < cur_t || (dt == cur_t && chain.hops.is_empty())
                    }
                    _ => false,
                });
        let Some(deliver) = deliver else {
            chain.origin_wake = dag
                .events_at(cur_node)
                .iter()
                .copied()
                .find(|&i| matches!(dag.events()[i], EngineEvent::Wake { .. }));
            break;
        };
        if chain.hops.len() == max_hops {
            chain.truncated = true;
            break;
        }
        // A deliver without a matched transmit means the stream starts
        // mid-run; the walk cannot cross it.
        let Some(msg) = dag.message_of(deliver).copied() else {
            break;
        };
        let delivered_t = msg.delivered_t.expect("matched via deliver");
        chain.hops.push(Hop {
            deliver,
            send: msg.send,
            src: msg.src,
            dst: msg.dst,
            sent_t: msg.sent_t,
            delivered_t,
            multiplier_after: multiplier_after(dag, deliver),
        });
        cur_node = msg.src;
        cur_t = msg.sent_t;
    }
    chain
}

/// The multiplier set by the handler that processed `deliver`, i.e. the
/// first `multiplier` event at the same node and instant that follows it
/// in program order.
fn multiplier_after(dag: &Dag, deliver: EventId) -> Option<f64> {
    let EngineEvent::Deliver { dst, t, .. } = dag.events()[deliver] else {
        return None;
    };
    let at_node = dag.events_at(dst);
    let pos = at_node.iter().position(|&i| i == deliver)?;
    for &i in &at_node[pos + 1..] {
        match dag.events()[i] {
            EngineEvent::MultiplierChange {
                t: mt, multiplier, ..
            } if mt == t => return Some(multiplier),
            ref e if e.time() > t => return None,
            _ => {}
        }
    }
    None
}

/// A full blame report: the peaks plus the causal chains of both
/// endpoints of the chosen peak pair.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// The located peaks.
    pub peak: PeakReport,
    /// True when the chains explain the *global* peak pair; false for the
    /// local (per-edge) pair.
    pub global_mode: bool,
    /// Causal chains for the (ahead, behind) endpoints of the chosen pair.
    pub chains: [Chain; 2],
}

/// Runs the full blame query: locate peaks, then walk the causal chains
/// of the chosen pair's endpoints.
pub fn blame(
    dag: &Dag,
    clocks: &ClockReconstruction,
    end: Option<f64>,
    max_hops: usize,
    global_mode: bool,
) -> Option<BlameReport> {
    let peak = find_peaks(clocks, dag.edges(), end)?;
    let (pair, t) = if global_mode {
        (peak.global_pair, peak.global_t)
    } else {
        (peak.local_pair, peak.local_t)
    };
    Some(BlameReport {
        peak,
        global_mode,
        chains: [
            causal_chain(dag, pair.0, t, max_hops),
            causal_chain(dag, pair.1, t, max_hops),
        ],
    })
}

impl BlameReport {
    /// Renders the annotated report: peak lines, then each endpoint's
    /// chain with clock readings from the reconstruction.
    pub fn render(&self, clocks: &ClockReconstruction) -> String {
        let mut out = String::new();
        let p = &self.peak;
        out.push_str(&format!(
            "peak global skew {:.6} at t={} between nodes {} (ahead) and {} (behind)\n",
            p.global, p.global_t, p.global_pair.0 .0, p.global_pair.1 .0
        ));
        out.push_str(&format!(
            "peak local skew  {:.6} at t={} on edge {}-{} ({} ahead)\n",
            p.local, p.local_t, p.local_pair.0 .0, p.local_pair.1 .0, p.local_pair.0 .0
        ));
        let (pair_kind, t) = if self.global_mode {
            ("global", p.global_t)
        } else {
            ("local", p.local_t)
        };
        out.push_str(&format!(
            "\nexplaining the {pair_kind} peak pair at t={t}:\n"
        ));
        for chain in &self.chains {
            out.push('\n');
            out.push_str(&render_chain(chain, clocks));
        }
        out
    }
}

fn render_chain(chain: &Chain, clocks: &ClockReconstruction) -> String {
    let clock_note = |node: NodeId, t: f64| -> String {
        match (clocks.logical(node, t), clocks.hardware(node, t)) {
            (Some(l), Some(h)) => format!("L={l:.6} H={h:.6}"),
            _ => "not yet awake".to_string(),
        }
    };
    let mut out = format!(
        "causal chain of node {} at t={} ({}):\n",
        chain.endpoint.0,
        chain.at_t,
        clock_note(chain.endpoint, chain.at_t),
    );
    for hop in &chain.hops {
        let mult = hop
            .multiplier_after
            .map_or(String::new(), |m| format!("  -> multiplier {m}"));
        out.push_str(&format!(
            "  t={:<12} deliver {} -> {}  (sent t={}, latency {:.6}){}\n",
            hop.delivered_t,
            hop.src.0,
            hop.dst.0,
            hop.sent_t,
            hop.delivered_t - hop.sent_t,
            mult,
        ));
    }
    if chain.truncated {
        out.push_str("  ... (hop limit reached; raise --max-hops to walk further)\n");
    } else if chain.origin_wake.is_some() {
        let origin = chain.hops.last().map_or(chain.endpoint, |h| h.src);
        out.push_str(&format!(
            "  origin: node {} wake-up (no earlier messages)\n",
            origin.0
        ));
    } else {
        out.push_str("  origin: stream begins mid-run (no wake recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// Three nodes on a path 0-1-2. Node 0 runs fast (multiplier raised),
    /// its updates wavefront to 1 then 2 via messages.
    fn wavefront_stream() -> Vec<EngineEvent> {
        vec![
            EngineEvent::Wake {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Wake {
                node: n(1),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Wake {
                node: n(2),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::MultiplierChange {
                node: n(0),
                t: 0.0,
                multiplier: 1.5,
            },
            EngineEvent::Send {
                node: n(0),
                t: 2.0,
                hw: 2.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 2.0,
                delay: Some(1.0),
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 3.0,
                dst_hw: 3.0,
            },
            EngineEvent::MultiplierChange {
                node: n(1),
                t: 3.0,
                multiplier: 1.5,
            },
            EngineEvent::Send {
                node: n(1),
                t: 4.0,
                hw: 4.0,
            },
            EngineEvent::Transmit {
                src: n(1),
                dst: n(2),
                t: 4.0,
                delay: Some(1.0),
            },
            EngineEvent::Deliver {
                src: n(1),
                dst: n(2),
                t: 5.0,
                dst_hw: 5.0,
            },
            EngineEvent::MultiplierChange {
                node: n(2),
                t: 5.0,
                multiplier: 1.5,
            },
        ]
    }

    #[test]
    fn finds_peak_pair_and_time() {
        let events = wavefront_stream();
        let clocks = ClockReconstruction::from_events(&events);
        let dag = Dag::from_events(events);
        let peak = find_peaks(&clocks, dag.edges(), Some(5.0)).unwrap();
        // Node 0 runs at 1.5 from t=0; node 2 at 1.0 until t=5. The gap
        // 0-vs-2 grows until node 2 catches the wavefront at t=5.
        assert_eq!(peak.global_pair, (n(0), n(2)));
        assert!((peak.global_t - 5.0).abs() < 1e-12);
        assert!((peak.global - 2.5).abs() < 1e-12, "0.5/s for 5s");
        // Local peak: edge 0-1 reaches 1.5 at t=3 (node 1 catches the
        // wavefront there, so the gap stops growing — earliest tie wins).
        assert_eq!(peak.local_pair, (n(0), n(1)));
        assert!((peak.local - 1.5).abs() < 1e-12);
        assert!((peak.local_t - 3.0).abs() < 1e-12);
    }

    #[test]
    fn walks_wavefront_back_to_origin() {
        let events = wavefront_stream();
        let clocks = ClockReconstruction::from_events(&events);
        let dag = Dag::from_events(events);
        let chain = causal_chain(&dag, n(2), 5.0, 16);
        assert_eq!(chain.hops.len(), 2);
        assert_eq!((chain.hops[0].src, chain.hops[0].dst), (n(1), n(2)));
        assert_eq!((chain.hops[1].src, chain.hops[1].dst), (n(0), n(1)));
        assert_eq!(chain.hops[0].multiplier_after, Some(1.5));
        assert!(!chain.truncated);
        assert!(chain.origin_wake.is_some(), "walk ends at node 0's wake");

        let report = blame(&dag, &clocks, Some(5.0), 16, false).unwrap();
        assert_eq!(report.chains[0].endpoint, n(0), "ahead end of local pair");
        assert_eq!(report.chains[1].endpoint, n(1), "behind end of local pair");
        let text = report.render(&clocks);
        assert!(text.contains("peak local skew"), "{text}");
        assert!(text.contains("deliver 0 -> 1"), "{text}");
        assert!(text.contains("multiplier 1.5"), "{text}");
    }

    #[test]
    fn hop_limit_truncates() {
        let events = wavefront_stream();
        let dag = Dag::from_events(events);
        let chain = causal_chain(&dag, n(2), 5.0, 1);
        assert_eq!(chain.hops.len(), 1);
        assert!(chain.truncated);
    }

    #[test]
    fn single_node_has_no_peaks() {
        let events = vec![EngineEvent::Wake {
            node: n(0),
            t: 0.0,
            hw: 0.0,
        }];
        let clocks = ClockReconstruction::from_events(&events);
        assert!(find_peaks(&clocks, &[], None).is_none());
    }
}
