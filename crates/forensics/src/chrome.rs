//! Chrome trace-event export — the `gcs trace export --chrome` backend.
//!
//! Produces the JSON Object Format of the Trace Event specification
//! (also understood by Perfetto's `ui.perfetto.dev`): a `traceEvents`
//! array inside a top-level object. The mapping, specified in
//! `docs/TRACE_FORMAT.md`:
//!
//! * one process (`pid` 0) per execution, one thread (`tid` = node id)
//!   per node, named via `M` metadata records;
//! * instant events (`ph: "i"`, thread scope) for `wake`, `send`,
//!   `deliver`, `timer_fire`, and `drop`;
//! * counter events (`ph: "C"`) tracking each node's logical multiplier
//!   and hardware rate as step functions;
//! * async begin/end pairs (`ph: "b"` / `"e"`, category `msg`) spanning
//!   transmit → deliver for every *matched* message, drawn from the
//!   sender's track to the receiver's.
//!
//! Timestamps are microseconds (`ts = t × 10⁶`), the unit the format
//! requires. Event order follows the stream, so exports are
//! deterministic for a fixed input.

use crate::dag::Dag;
use gcs_sim::EngineEvent;

/// Renders a reconstructed DAG as Chrome trace-event JSON.
pub fn export_chrome(dag: &Dag) -> String {
    let mut records: Vec<String> = Vec::new();
    records.push(
        r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"gcs execution"}}"#
            .to_string(),
    );
    for node in 0..dag.node_count() {
        records.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{node},"args":{{"name":"node {node}"}}}}"#
        ));
    }

    // Message spans: async begin on the sender's track at transmit time,
    // async end on the receiver's track at delivery. The per-message id
    // keeps concurrent spans on the same channel distinct.
    let span_ends: Vec<Option<(usize, String)>> = dag
        .messages()
        .iter()
        .enumerate()
        .map(|(id, msg)| {
            msg.deliver.map(|deliver| {
                (
                    deliver,
                    format!(
                        r#"{{"name":"{src}->{dst}","cat":"msg","ph":"e","id":{id},"pid":0,"tid":{dst},"ts":{ts}}}"#,
                        src = msg.src.0,
                        dst = msg.dst.0,
                        ts = micros(msg.delivered_t.expect("deliver end has a time")),
                    ),
                )
            })
        })
        .collect();
    let mut ends_by_event: std::collections::HashMap<usize, &str> = span_ends
        .iter()
        .flatten()
        .map(|(deliver, record)| (*deliver, record.as_str()))
        .collect();

    let mut next_msg = 0usize; // messages are stored in transmit order
    for (i, event) in dag.events().iter().enumerate() {
        match *event {
            EngineEvent::Wake { node, t, .. } => {
                records.push(instant("wake", node.0, t));
            }
            EngineEvent::Send { node, t, .. } => {
                records.push(instant("send", node.0, t));
            }
            EngineEvent::Transmit { src, dst, t, .. } => {
                let msg_id = next_msg;
                next_msg += 1;
                if span_ends[msg_id].is_some() {
                    records.push(format!(
                        r#"{{"name":"{src}->{dst}","cat":"msg","ph":"b","id":{msg_id},"pid":0,"tid":{src},"ts":{ts}}}"#,
                        src = src.0,
                        dst = dst.0,
                        ts = micros(t),
                    ));
                }
            }
            EngineEvent::Drop { src, t, .. } => {
                records.push(instant("drop", src.0, t));
            }
            EngineEvent::Deliver { dst, t, .. } => {
                records.push(instant("deliver", dst.0, t));
                if let Some(end) = ends_by_event.remove(&i) {
                    records.push(end.to_string());
                }
            }
            EngineEvent::TimerFire { node, t, .. } => {
                records.push(instant("timer_fire", node.0, t));
            }
            EngineEvent::RateStep { node, t, rate } => {
                records.push(counter("rate", node.0, t, rate));
            }
            EngineEvent::MultiplierChange {
                node,
                t,
                multiplier,
            } => {
                records.push(counter("multiplier", node.0, t, multiplier));
            }
            EngineEvent::TimerSet { .. } | EngineEvent::TimerCancel { .. } => {}
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, record) in records.iter().enumerate() {
        out.push_str(record);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn micros(t: f64) -> f64 {
    t * 1e6
}

fn instant(name: &str, tid: usize, t: f64) -> String {
    format!(
        r#"{{"name":"{name}","ph":"i","s":"t","pid":0,"tid":{tid},"ts":{ts}}}"#,
        ts = micros(t),
    )
}

fn counter(name: &str, tid: usize, t: f64, value: f64) -> String {
    // One counter track per node: distinct names keep Perfetto from
    // merging all nodes into a single series.
    format!(
        r#"{{"name":"{name}.v{tid}","ph":"C","pid":0,"tid":{tid},"ts":{ts},"args":{{"{name}":{value}}}}}"#,
        ts = micros(t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use gcs_graph::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn exports_valid_trace_event_json() {
        let events = vec![
            EngineEvent::Wake {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Wake {
                node: n(1),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Send {
                node: n(0),
                t: 1.0,
                hw: 1.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 1.0,
                delay: Some(0.5),
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 1.5,
                dst_hw: 1.5,
            },
            EngineEvent::MultiplierChange {
                node: n(1),
                t: 1.5,
                multiplier: 1.25,
            },
            EngineEvent::RateStep {
                node: n(0),
                t: 2.0,
                rate: 0.99,
            },
        ];
        let out = export_chrome(&Dag::from_events(events));
        let value = parse(&out).expect("export must be valid JSON");
        let trace = value.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(trace.len() >= 10, "metadata + events, got {}", trace.len());

        let phases: Vec<&str> = trace
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert!(phases.contains(&"M"), "process/thread metadata");
        assert!(phases.contains(&"i"), "instants");
        assert!(phases.contains(&"C"), "counters");
        assert!(phases.contains(&"b") && phases.contains(&"e"), "msg span");

        // The span's begin sits on the sender track, the end on the
        // receiver's, sharing an id.
        let begin = trace
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("b"))
            .unwrap();
        let end = trace
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("e"))
            .unwrap();
        assert_eq!(begin.get("tid").and_then(Json::as_f64), Some(0.0));
        assert_eq!(end.get("tid").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            begin.get("id").and_then(Json::as_f64),
            end.get("id").and_then(Json::as_f64)
        );
        // Timestamps are microseconds.
        assert_eq!(end.get("ts").and_then(Json::as_f64), Some(1.5e6));
    }

    #[test]
    fn undelivered_messages_get_no_dangling_span() {
        let events = vec![
            EngineEvent::Send {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 0.0,
                delay: Some(9.0),
            },
        ];
        let out = export_chrome(&Dag::from_events(events));
        let value = parse(&out).unwrap();
        let trace = value.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(trace
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) != Some("b")));
    }
}
