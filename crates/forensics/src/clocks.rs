//! Reconstructing per-node hardware and logical clock trajectories from a
//! recorded event stream.
//!
//! The stream never carries clock snapshots, but it carries enough to
//! rebuild both clocks exactly at every event time:
//!
//! * `wake` anchors the hardware clock (`hw` is its reading at `t`, by
//!   construction 0) and starts the logical clock at `L = 0`.
//! * `send`, `timer_fire`, and `deliver` carry exact hardware readings —
//!   **anchors** the reconstruction snaps to, eliminating drift from
//!   floating-point integration.
//! * `rate_step` gives the exact hardware rate from `t` onward. The only
//!   unknown is the initial rate between wake and the first `rate_step`;
//!   it is solved from the first anchor in that window (default 1.0 when
//!   no anchor exists — the engine's default for stepless rate models).
//! * `multiplier` gives the logical-rate multiplier from `t` onward
//!   (1.0 before the first change, matching `LogicalClock::start`).
//!
//! Between events both clocks are piecewise linear:
//! `dH/dt = rate`, `dL/dt = multiplier × rate`. `A^opt`'s logical clock is
//! continuous, so this reconstruction is exact for it; `aopt-jump`'s
//! discrete jumps are applied via `LogicalClock::add` and do not appear in
//! the stream, so its reconstructed `L` omits the jumps (documented in
//! `docs/TRACE_FORMAT.md`).

use gcs_graph::NodeId;
use gcs_sim::EngineEvent;

/// One linear piece of a node's clock trajectory: from `t` onward (until
/// the next segment) the hardware clock reads `hw + rate·(τ−t)` and the
/// logical clock reads `l + multiplier·rate·(τ−t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Real time at which this piece starts.
    pub t: f64,
    /// Hardware reading at `t`.
    pub hw: f64,
    /// Logical reading at `t`.
    pub l: f64,
    /// Hardware rate on this piece.
    pub rate: f64,
    /// Logical multiplier on this piece.
    pub multiplier: f64,
}

/// The reconstructed trajectory of one node's clocks.
#[derive(Debug, Clone)]
pub struct NodeClock {
    /// Real time the node woke (clocks undefined before this).
    pub wake_t: f64,
    segments: Vec<Segment>,
}

impl NodeClock {
    fn segment_at(&self, t: f64) -> Option<&Segment> {
        if t < self.wake_t {
            return None;
        }
        let idx = match self
            .segments
            .binary_search_by(|s| s.t.partial_cmp(&t).expect("finite times"))
        {
            // Equal start times keep the *last* segment (latest state at t).
            Ok(mut i) => {
                while i + 1 < self.segments.len() && self.segments[i + 1].t == t {
                    i += 1;
                }
                i
            }
            Err(0) => return None,
            Err(i) => i - 1,
        };
        Some(&self.segments[idx])
    }

    /// Hardware reading at real time `t`, or `None` before wake-up.
    pub fn hardware(&self, t: f64) -> Option<f64> {
        self.segment_at(t).map(|s| s.hw + s.rate * (t - s.t))
    }

    /// Logical reading at real time `t`, or `None` before wake-up.
    pub fn logical(&self, t: f64) -> Option<f64> {
        self.segment_at(t)
            .map(|s| s.l + s.multiplier * s.rate * (t - s.t))
    }

    /// Hardware rate in effect at `t`.
    pub fn rate(&self, t: f64) -> Option<f64> {
        self.segment_at(t).map(|s| s.rate)
    }

    /// Logical multiplier in effect at `t`.
    pub fn multiplier(&self, t: f64) -> Option<f64> {
        self.segment_at(t).map(|s| s.multiplier)
    }

    /// The linear pieces, in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }
}

/// Per-node clock trajectories rebuilt from a full event stream.
#[derive(Debug, Clone, Default)]
pub struct ClockReconstruction {
    nodes: Vec<Option<NodeClock>>,
    last_event_t: f64,
}

/// Points where a node's trajectory changes, gathered per node before the
/// integration pass.
#[derive(Debug, Clone, Copy)]
enum Change {
    /// Exact hardware reading reported by the stream.
    Anchor(f64),
    Rate(f64),
    Multiplier(f64),
}

impl ClockReconstruction {
    /// Rebuilds all node clocks from a stream in recorded order.
    pub fn from_events(events: &[EngineEvent]) -> Self {
        // Per node: wake (t, hw) and the time-ordered change list. Stream
        // order is already global time order with deterministic ties, so a
        // single forward pass per node suffices.
        let mut wakes: Vec<Option<(f64, f64)>> = Vec::new();
        let mut changes: Vec<Vec<(f64, Change)>> = Vec::new();
        let mut last_event_t = 0.0f64;
        let ensure = |wakes: &mut Vec<Option<(f64, f64)>>,
                      changes: &mut Vec<Vec<(f64, Change)>>,
                      node: NodeId| {
            if node.0 >= wakes.len() {
                wakes.resize(node.0 + 1, None);
                changes.resize(node.0 + 1, Vec::new());
            }
        };
        for event in events {
            last_event_t = last_event_t.max(event.time());
            match *event {
                EngineEvent::Wake { node, t, hw } => {
                    ensure(&mut wakes, &mut changes, node);
                    if wakes[node.0].is_none() {
                        wakes[node.0] = Some((t, hw));
                    }
                }
                EngineEvent::Send { node, t, hw } | EngineEvent::TimerFire { node, t, hw, .. } => {
                    ensure(&mut wakes, &mut changes, node);
                    changes[node.0].push((t, Change::Anchor(hw)));
                }
                EngineEvent::Deliver { dst, t, dst_hw, .. } => {
                    ensure(&mut wakes, &mut changes, dst);
                    changes[dst.0].push((t, Change::Anchor(dst_hw)));
                }
                EngineEvent::RateStep { node, t, rate } => {
                    ensure(&mut wakes, &mut changes, node);
                    changes[node.0].push((t, Change::Rate(rate)));
                }
                EngineEvent::MultiplierChange {
                    node,
                    t,
                    multiplier,
                } => {
                    ensure(&mut wakes, &mut changes, node);
                    changes[node.0].push((t, Change::Multiplier(multiplier)));
                }
                EngineEvent::Transmit { src, dst, .. } | EngineEvent::Drop { src, dst, .. } => {
                    ensure(&mut wakes, &mut changes, src);
                    ensure(&mut wakes, &mut changes, dst);
                }
                EngineEvent::TimerSet { node, .. } | EngineEvent::TimerCancel { node, .. } => {
                    ensure(&mut wakes, &mut changes, node);
                }
            }
        }

        let nodes = wakes
            .iter()
            .zip(&changes)
            .map(|(wake, list)| wake.map(|(wt, whw)| build_node(wt, whw, list)))
            .collect();
        ClockReconstruction {
            nodes,
            last_event_t,
        }
    }

    /// Number of node slots (highest node id seen + 1).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The trajectory of `node`, if it ever woke.
    pub fn node(&self, node: NodeId) -> Option<&NodeClock> {
        self.nodes.get(node.0).and_then(Option::as_ref)
    }

    /// Logical reading of `node` at `t` (None before wake / unknown node).
    pub fn logical(&self, node: NodeId, t: f64) -> Option<f64> {
        self.node(node).and_then(|c| c.logical(t))
    }

    /// Hardware reading of `node` at `t` (None before wake / unknown node).
    pub fn hardware(&self, node: NodeId, t: f64) -> Option<f64> {
        self.node(node).and_then(|c| c.hardware(t))
    }

    /// Real time of the last recorded event.
    pub fn last_event_time(&self) -> f64 {
        self.last_event_t
    }

    /// Sorted, deduplicated union of all segment-start times across nodes.
    ///
    /// Skew as a function of time is piecewise linear with kinks exactly
    /// at these instants, so a peak search only needs to evaluate here
    /// (plus any extra horizon the caller supplies).
    pub fn kink_times(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .nodes
            .iter()
            .flatten()
            .flat_map(|c| c.segments.iter().map(|s| s.t))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times.dedup();
        times
    }
}

fn build_node(wake_t: f64, wake_hw: f64, changes: &[(f64, Change)]) -> NodeClock {
    // Initial hardware rate: solve from the first anchor that is strictly
    // after wake and not preceded by a rate step. Anchors *at* wake time
    // (e.g. an immediate send) carry no rate information.
    let mut initial_rate = 1.0;
    for &(t, change) in changes {
        match change {
            Change::Rate(_) => break,
            Change::Anchor(hw) if t > wake_t => {
                initial_rate = (hw - wake_hw) / (t - wake_t);
                break;
            }
            _ => {}
        }
    }

    let mut segments = vec![Segment {
        t: wake_t,
        hw: wake_hw,
        l: 0.0,
        rate: initial_rate,
        multiplier: 1.0,
    }];
    let mut cur = segments[0];
    for &(t, change) in changes {
        let dt = t - cur.t;
        let hw = cur.hw + cur.rate * dt;
        let l = cur.l + cur.multiplier * cur.rate * dt;
        let next = match change {
            // Snap to the reported reading: L is unaffected (it integrates
            // rates, not hardware offsets), later H readings become exact.
            Change::Anchor(reported_hw) => Segment {
                t,
                hw: reported_hw,
                l,
                ..cur
            },
            Change::Rate(rate) => Segment {
                t,
                hw,
                l,
                rate,
                multiplier: cur.multiplier,
            },
            Change::Multiplier(multiplier) => Segment {
                t,
                hw,
                l,
                rate: cur.rate,
                multiplier,
            },
        };
        cur = next;
        segments.push(next);
    }
    NodeClock { wake_t, segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::TimerId;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn integrates_rates_and_multipliers() {
        // Node 0 wakes at t=1 with rate 1.02 (solved from the send anchor),
        // then multiplier 1.1 from t=3, then rate 0.98 from t=5.
        let events = vec![
            EngineEvent::Wake {
                node: n(0),
                t: 1.0,
                hw: 0.0,
            },
            EngineEvent::Send {
                node: n(0),
                t: 2.0,
                hw: 1.02,
            },
            EngineEvent::MultiplierChange {
                node: n(0),
                t: 3.0,
                multiplier: 1.1,
            },
            EngineEvent::RateStep {
                node: n(0),
                t: 5.0,
                rate: 0.98,
            },
        ];
        let rec = ClockReconstruction::from_events(&events);
        let c = rec.node(n(0)).unwrap();
        assert!(c.hardware(0.5).is_none(), "before wake");
        assert!((c.hardware(2.0).unwrap() - 1.02).abs() < 1e-12);
        assert!((c.rate(2.5).unwrap() - 1.02).abs() < 1e-12);
        // L: 2s at m=1·r=1.02, then 2s at m=1.1·r=1.02, then m=1.1·r=0.98.
        let l5 = 2.0 * 1.02 + 2.0 * 1.1 * 1.02;
        assert!((c.logical(5.0).unwrap() - l5).abs() < 1e-12);
        assert!((c.logical(6.0).unwrap() - (l5 + 1.1 * 0.98)).abs() < 1e-12);
        assert_eq!(rec.node_count(), 1);
        assert!((rec.last_event_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn anchors_snap_hardware_but_not_logical() {
        // Reported deliver hw disagrees slightly with dead-reckoning; the
        // hardware reading snaps, logical integration is untouched.
        let events = vec![
            EngineEvent::Wake {
                node: n(1),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 4.0,
                dst_hw: 4.25,
            },
            EngineEvent::TimerFire {
                node: n(1),
                timer: TimerId(0),
                t: 6.0,
                hw: 6.5,
            },
        ];
        let rec = ClockReconstruction::from_events(&events);
        let c = rec.node(n(1)).unwrap();
        // Initial rate solved from first anchor: 4.25/4.
        assert!((c.rate(1.0).unwrap() - 4.25 / 4.0).abs() < 1e-12);
        assert!((c.hardware(4.0).unwrap() - 4.25).abs() < 1e-12);
        // After the second anchor the reading is exactly the reported one.
        assert!((c.hardware(6.0).unwrap() - 6.5).abs() < 1e-12);
        // Logical keeps integrating multiplier×rate across the snap.
        let expected_l = 6.0 * (4.25 / 4.0);
        assert!((c.logical(6.0).unwrap() - expected_l).abs() < 1e-12);
    }

    #[test]
    fn default_rate_is_one_without_anchors() {
        let events = vec![EngineEvent::Wake {
            node: n(2),
            t: 0.5,
            hw: 0.0,
        }];
        let rec = ClockReconstruction::from_events(&events);
        let c = rec.node(n(2)).unwrap();
        assert!((c.hardware(2.5).unwrap() - 2.0).abs() < 1e-12);
        assert!((c.logical(2.5).unwrap() - 2.0).abs() < 1e-12);
        assert!(rec.node(n(0)).is_none(), "node 0 never woke");
        assert_eq!(rec.node_count(), 3);
    }

    #[test]
    fn kink_times_cover_all_segment_starts() {
        let events = vec![
            EngineEvent::Wake {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Wake {
                node: n(1),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::MultiplierChange {
                node: n(0),
                t: 2.0,
                multiplier: 1.2,
            },
            EngineEvent::RateStep {
                node: n(1),
                t: 3.0,
                rate: 0.99,
            },
        ];
        let rec = ClockReconstruction::from_events(&events);
        assert_eq!(rec.kink_times(), vec![0.0, 2.0, 3.0]);
    }
}
