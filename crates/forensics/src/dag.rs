//! Happened-before DAG reconstruction.
//!
//! Events in a recorded stream are related two ways:
//!
//! * **Program order** — events at the same node, in stream order (the
//!   stream is globally time-ordered with deterministic ties, so the
//!   per-node subsequence is that node's execution order).
//! * **Message causality** — `send → transmit → deliver`. A `transmit`
//!   belongs to the most recent `send` at its source (the engine emits
//!   the per-neighbor transmits directly after the send, at the same
//!   instant). A `deliver` on channel `(src, dst)` is matched to the
//!   outstanding `transmit` whose predicted arrival `t + delay` agrees
//!   with the delivery time; if none predicts it (hardware-targeted
//!   transmits record `delay: null`), FIFO order is used — delays in this
//!   engine never reorder a channel. `drop` events are terminal: the
//!   engine emits them *instead of* a transmit, so they never join a
//!   message chain.

use gcs_graph::NodeId;
use gcs_sim::EngineEvent;

/// Index of an event in the parsed stream.
pub type EventId = usize;

/// One matched message: its transmit, and the send / deliver ends when
/// they were found in the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// The `send` event that produced this transmit, if present.
    pub send: Option<EventId>,
    /// The `transmit` event.
    pub transmit: EventId,
    /// The matched `deliver` event; `None` while still in flight at the
    /// end of the stream.
    pub deliver: Option<EventId>,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Real time the message left `src`.
    pub sent_t: f64,
    /// Real time it arrived, if it did.
    pub delivered_t: Option<f64>,
}

impl Message {
    /// Measured channel latency, when both ends are known.
    pub fn latency(&self) -> Option<f64> {
        self.delivered_t.map(|d| d - self.sent_t)
    }
}

/// The reconstructed happened-before DAG over a parsed stream.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    events: Vec<EngineEvent>,
    /// Program-order predecessor of each event (same node).
    prev_same_node: Vec<Option<EventId>>,
    /// Cross-node causal predecessor: deliver → transmit → send.
    cause: Vec<Option<EventId>>,
    /// Event indices per node, in stream order.
    node_events: Vec<Vec<EventId>>,
    messages: Vec<Message>,
    /// messages[...] index for each deliver/transmit event.
    message_of: Vec<Option<usize>>,
    /// Dropped (src, dst, t) records, in stream order.
    drops: Vec<(NodeId, NodeId, f64)>,
    /// Undirected communication edges observed in the stream, sorted.
    edges: Vec<(usize, usize)>,
}

/// The node whose program order an event belongs to.
pub fn event_node(event: &EngineEvent) -> NodeId {
    match *event {
        EngineEvent::Wake { node, .. }
        | EngineEvent::Send { node, .. }
        | EngineEvent::TimerSet { node, .. }
        | EngineEvent::TimerCancel { node, .. }
        | EngineEvent::TimerFire { node, .. }
        | EngineEvent::RateStep { node, .. }
        | EngineEvent::MultiplierChange { node, .. } => node,
        EngineEvent::Transmit { src, .. } | EngineEvent::Drop { src, .. } => src,
        EngineEvent::Deliver { dst, .. } => dst,
    }
}

impl Dag {
    /// Builds the DAG from a stream in recorded order.
    pub fn from_events(events: Vec<EngineEvent>) -> Self {
        let count = events.len();
        let mut prev_same_node = vec![None; count];
        let mut cause = vec![None; count];
        let mut message_of = vec![None; count];
        let mut node_events: Vec<Vec<EventId>> = Vec::new();
        let mut last_at_node: Vec<Option<EventId>> = Vec::new();
        let mut last_send_at: Vec<Option<EventId>> = Vec::new();
        let mut messages: Vec<Message> = Vec::new();
        let mut drops = Vec::new();
        let mut edge_set: Vec<(usize, usize)> = Vec::new();
        // Outstanding message indices per directed channel, FIFO.
        let mut in_flight: std::collections::HashMap<(usize, usize), Vec<usize>> =
            std::collections::HashMap::new();

        for (i, event) in events.iter().enumerate() {
            let node = event_node(event);
            if node.0 >= node_events.len() {
                node_events.resize(node.0 + 1, Vec::new());
                last_at_node.resize(node.0 + 1, None);
                last_send_at.resize(node.0 + 1, None);
            }
            prev_same_node[i] = last_at_node[node.0];
            last_at_node[node.0] = Some(i);
            node_events[node.0].push(i);

            match *event {
                EngineEvent::Send { node, .. } => {
                    last_send_at[node.0] = Some(i);
                }
                EngineEvent::Transmit { src, dst, t, .. } => {
                    let send = last_send_at[src.0];
                    cause[i] = send;
                    let msg = Message {
                        send,
                        transmit: i,
                        deliver: None,
                        src,
                        dst,
                        sent_t: t,
                        delivered_t: None,
                    };
                    message_of[i] = Some(messages.len());
                    in_flight
                        .entry((src.0, dst.0))
                        .or_default()
                        .push(messages.len());
                    messages.push(msg);
                    note_edge(&mut edge_set, src, dst);
                }
                EngineEvent::Drop { src, dst, t, .. } => {
                    cause[i] = last_send_at[src.0];
                    drops.push((src, dst, t));
                    note_edge(&mut edge_set, src, dst);
                }
                EngineEvent::Deliver { src, dst, t, .. } => {
                    let queue = in_flight.entry((src.0, dst.0)).or_default();
                    // Prefer the outstanding transmit whose recorded delay
                    // predicts this arrival; fall back to FIFO.
                    let pos = queue
                        .iter()
                        .position(|&m| {
                            let tx = messages[m].transmit;
                            match events[tx] {
                                EngineEvent::Transmit {
                                    delay: Some(d),
                                    t: sent,
                                    ..
                                } => (sent + d - t).abs() <= arrival_tolerance(t),
                                _ => false,
                            }
                        })
                        .unwrap_or(0);
                    if pos < queue.len() {
                        let m = queue.remove(pos);
                        messages[m].deliver = Some(i);
                        messages[m].delivered_t = Some(t);
                        cause[i] = Some(messages[m].transmit);
                        message_of[i] = Some(m);
                    }
                    note_edge(&mut edge_set, src, dst);
                }
                _ => {}
            }
        }

        edge_set.sort_unstable();
        edge_set.dedup();
        Dag {
            events,
            prev_same_node,
            cause,
            node_events,
            messages,
            message_of,
            drops,
            edges: edge_set,
        }
    }

    /// The parsed events backing this DAG, in stream order.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Number of node slots (highest node id seen + 1).
    pub fn node_count(&self) -> usize {
        self.node_events.len()
    }

    /// All matched messages, in transmit order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Dropped `(src, dst, t)` records, in stream order.
    pub fn drops(&self) -> &[(NodeId, NodeId, f64)] {
        &self.drops
    }

    /// Undirected communication edges observed in the stream, sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Program-order predecessor of `event` (same node).
    pub fn prev_same_node(&self, event: EventId) -> Option<EventId> {
        self.prev_same_node.get(event).copied().flatten()
    }

    /// Cross-node causal predecessor: deliver → transmit → send.
    pub fn cause(&self, event: EventId) -> Option<EventId> {
        self.cause.get(event).copied().flatten()
    }

    /// The message a transmit/deliver event belongs to.
    pub fn message_of(&self, event: EventId) -> Option<&Message> {
        self.message_of
            .get(event)
            .copied()
            .flatten()
            .map(|m| &self.messages[m])
    }

    /// Events at `node`, in stream order.
    pub fn events_at(&self, node: NodeId) -> &[EventId] {
        self.node_events
            .get(node.0)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The last event at `node` with time ≤ `t`, if any.
    pub fn last_event_at_node_before(&self, node: NodeId, t: f64) -> Option<EventId> {
        self.events_at(node)
            .iter()
            .rev()
            .copied()
            .find(|&i| self.events[i].time() <= t)
    }
}

fn note_edge(edges: &mut Vec<(usize, usize)>, a: NodeId, b: NodeId) {
    let edge = (a.0.min(b.0), a.0.max(b.0));
    // Streams touch few distinct edges repeatedly; keep insertion cheap
    // and dedup once at the end (plus this early exit for runs of the
    // same channel).
    if edges.last() != Some(&edge) {
        edges.push(edge);
    }
}

fn arrival_tolerance(t: f64) -> f64 {
    1e-9 * t.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn two_node_exchange() -> Vec<EngineEvent> {
        vec![
            EngineEvent::Wake {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Wake {
                node: n(1),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Send {
                node: n(0),
                t: 1.0,
                hw: 1.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 1.0,
                delay: Some(0.25),
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 1.25,
                dst_hw: 1.25,
            },
            EngineEvent::MultiplierChange {
                node: n(1),
                t: 1.25,
                multiplier: 1.1,
            },
        ]
    }

    #[test]
    fn chains_send_transmit_deliver() {
        let dag = Dag::from_events(two_node_exchange());
        assert_eq!(dag.messages().len(), 1);
        let msg = &dag.messages()[0];
        assert_eq!(msg.send, Some(2));
        assert_eq!(msg.transmit, 3);
        assert_eq!(msg.deliver, Some(4));
        assert!((msg.latency().unwrap() - 0.25).abs() < 1e-12);
        // deliver ← transmit ← send causality.
        assert_eq!(dag.cause(4), Some(3));
        assert_eq!(dag.cause(3), Some(2));
        // Program order: multiplier change follows the deliver at node 1.
        assert_eq!(dag.prev_same_node(5), Some(4));
        assert_eq!(dag.edges(), &[(0, 1)]);
    }

    #[test]
    fn matches_reordered_arrivals_by_predicted_delay() {
        // Two messages on the same channel; the second one's recorded delay
        // predicts the first arrival instant.
        let events = vec![
            EngineEvent::Send {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 0.0,
                delay: Some(0.9),
            },
            EngineEvent::Send {
                node: n(0),
                t: 0.5,
                hw: 0.5,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 0.5,
                delay: Some(0.1),
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 0.6,
                dst_hw: 0.6,
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 0.9,
                dst_hw: 0.9,
            },
        ];
        let dag = Dag::from_events(events);
        let msgs = dag.messages();
        assert_eq!(msgs[0].deliver, Some(5), "slow message arrives second");
        assert_eq!(msgs[1].deliver, Some(4), "fast message arrives first");
        assert_eq!(msgs[1].send, Some(2));
    }

    #[test]
    fn drops_never_enter_flight_queues() {
        let events = vec![
            EngineEvent::Send {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Drop {
                src: n(0),
                dst: n(1),
                t: 0.0,
                cause: gcs_sim::DropCause::Model,
            },
            EngineEvent::Send {
                node: n(0),
                t: 1.0,
                hw: 1.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 1.0,
                delay: None,
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 1.5,
                dst_hw: 1.5,
            },
        ];
        let dag = Dag::from_events(events);
        assert_eq!(dag.drops().len(), 1);
        assert_eq!(dag.messages().len(), 1);
        // The deliver matches the surviving transmit (FIFO: delay is null).
        assert_eq!(dag.messages()[0].deliver, Some(4));
        assert_eq!(dag.cause(1), Some(0), "drop still caused by its send");
    }

    #[test]
    fn last_event_lookup_respects_time() {
        let dag = Dag::from_events(two_node_exchange());
        assert_eq!(dag.last_event_at_node_before(n(1), 1.0), Some(1));
        assert_eq!(dag.last_event_at_node_before(n(1), 2.0), Some(5));
        assert_eq!(dag.last_event_at_node_before(n(7), 2.0), None);
    }
}
