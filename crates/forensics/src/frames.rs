//! Decoding raw binary flight-recorder dumps back into typed
//! [`EngineEvent`]s.
//!
//! `gcs run --dump-recorder <path>` writes JSONL by default, but a path
//! ending in `.gcsrec`/`.bin` gets the raw frame format instead:
//! [`gcs_sim::RECORDER_MAGIC`] followed by [`gcs_sim::FRAME_LEN`]-byte
//! frames in ascending sequence order (see the frame layout table on
//! [`gcs_sim::FRAME_LEN`]). This module is the forensics-side decoder: the
//! `gcs trace` subcommands sniff the magic and route binary dumps through
//! [`decode_dump`], so summaries, blame chains, and Chrome exports work on
//! either representation of the same window.

use std::fmt;

use gcs_sim::{decode_frame, EngineEvent, FRAME_LEN, RECORDER_MAGIC};

/// A binary dump decode failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// Byte offset into the dump where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for FrameError {}

/// Whether `bytes` starts with the raw recorder-dump magic.
pub fn is_recorder_dump(bytes: &[u8]) -> bool {
    bytes.len() >= RECORDER_MAGIC.len() && &bytes[..RECORDER_MAGIC.len()] == RECORDER_MAGIC
}

/// Decodes a whole raw recorder dump (magic + frames) into events in
/// execution order.
///
/// # Errors
///
/// Fails with the byte offset when the magic is missing, the payload is
/// not a whole number of frames, a frame is malformed, or sequence
/// numbers are not strictly ascending (a well-formed dump is sorted by
/// the recorder before writing).
pub fn decode_dump(bytes: &[u8]) -> Result<Vec<EngineEvent>, FrameError> {
    if !is_recorder_dump(bytes) {
        return Err(FrameError {
            offset: 0,
            message: format!(
                "missing `{}` magic — not a raw recorder dump",
                String::from_utf8_lossy(RECORDER_MAGIC)
            ),
        });
    }
    let body = &bytes[RECORDER_MAGIC.len()..];
    if !body.len().is_multiple_of(FRAME_LEN) {
        return Err(FrameError {
            offset: bytes.len(),
            message: format!(
                "truncated dump: {} payload bytes is not a multiple of the {FRAME_LEN}-byte \
                 frame size",
                body.len()
            ),
        });
    }
    let mut events = Vec::with_capacity(body.len() / FRAME_LEN);
    let mut last_seq = None;
    for (i, chunk) in body.chunks(FRAME_LEN).enumerate() {
        let offset = RECORDER_MAGIC.len() + i * FRAME_LEN;
        let (seq, event) = decode_frame(chunk).map_err(|message| FrameError { offset, message })?;
        if last_seq >= Some(seq) {
            return Err(FrameError {
                offset,
                message: format!("sequence numbers not ascending at frame {i} (seq {seq})"),
            });
        }
        last_seq = Some(seq);
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::NodeId;
    use gcs_sim::{encode_frame, EventSink, RecorderSink};

    fn wake(node: usize, t: f64) -> EngineEvent {
        EngineEvent::Wake {
            node: NodeId(node),
            t,
            hw: t,
        }
    }

    #[test]
    fn decodes_a_recorder_dump_end_to_end() {
        let mut rec = RecorderSink::with_geometry(4, 16);
        let events: Vec<EngineEvent> = (0..10).map(|i| wake(i % 3, i as f64)).collect();
        for e in &events {
            rec.record(e);
        }
        let bytes = rec.window_frames();
        assert!(is_recorder_dump(&bytes));
        assert_eq!(decode_dump(&bytes).unwrap(), events);
    }

    #[test]
    fn rejects_missing_magic_and_truncation() {
        assert!(!is_recorder_dump(b"{\"kind\":\"wake\""));
        assert_eq!(decode_dump(b"nope").unwrap_err().offset, 0);

        let mut bytes = RECORDER_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(&wake(0, 1.0), 0));
        bytes.pop(); // truncate the single frame
        let err = decode_dump(&bytes).unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
    }

    #[test]
    fn rejects_non_ascending_sequences() {
        let mut bytes = RECORDER_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(&wake(0, 1.0), 7));
        bytes.extend_from_slice(&encode_frame(&wake(1, 2.0), 7));
        let err = decode_dump(&bytes).unwrap_err();
        assert!(err.message.contains("not ascending"), "{err}");
    }
}
