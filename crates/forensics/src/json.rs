//! A minimal JSON value parser — just enough to read back the repo's own
//! hand-rolled JSONL streams and to validate the Chrome-trace export.
//!
//! No serialization dependency exists in this workspace (the recording side
//! formats by hand, see [`gcs_analysis::events`]), so the forensics side
//! carries its own reader. It accepts standard JSON: objects, arrays,
//! strings with escapes, numbers, booleans, and `null`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which round-trips every value the
    /// recorders emit — they format with Rust's shortest-round-trip
    /// `Display`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by any recorder
                            // in this workspace; map lone surrogates to the
                            // replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf-8");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_event_line_shapes() {
        let v = parse(r#"{"kind":"transmit","src":0,"dst":1,"t":2,"delay":null}"#).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("transmit"));
        assert_eq!(v.get("t").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("delay"), Some(&Json::Null));
    }

    #[test]
    fn parses_nested_arrays_strings_numbers() {
        let v = parse(r#"{"a":[1,-2.5e3,"x\ny",true,false,null],"b":{"c":[]}}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert!(v.get("b").unwrap().get("c").is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_float_formatting() {
        // The recorders use shortest-round-trip Display; the reader must
        // recover the exact value.
        for v in [0.1, 1.5, std::f64::consts::PI, 1e-9, 12345.6789] {
            let parsed = parse(&v.to_string()).unwrap();
            assert_eq!(parsed.as_f64(), Some(v));
        }
    }
}
