//! Trace forensics: turning recorded executions back into answers.
//!
//! PR 1 made every run a complete JSONL event stream; this crate is the
//! layer that *consumes* those streams. It parses the lines back into
//! typed [`gcs_sim::EngineEvent`]s, reconstructs the happened-before DAG
//! (program order plus send → transmit → deliver message matching) and
//! the exact per-node clock trajectories, and answers the provenance
//! queries behind the `gcs trace` subcommand family:
//!
//! * [`TraceSummary`] — per-node / per-edge event, delay, and rate-change
//!   statistics (`gcs trace summary`);
//! * [`blame`] — locate the peak global/local skew instant and walk the
//!   causal chain of deliveries and multiplier steps that produced it
//!   (`gcs trace blame`), the mechanism of the paper's Thm 5.10 made
//!   visible;
//! * [`export_chrome`] — Chrome trace-event / Perfetto-compatible JSON,
//!   one track per node (`gcs trace export --chrome`).
//!
//! # Example
//!
//! ```
//! use gcs_forensics::{parse_stream, Dag, ClockReconstruction, TraceSummary};
//!
//! let stream = "\
//! {\"kind\":\"wake\",\"node\":0,\"t\":0,\"hw\":0}\n\
//! {\"kind\":\"wake\",\"node\":1,\"t\":0,\"hw\":0}\n\
//! {\"kind\":\"send\",\"node\":0,\"t\":1,\"hw\":1}\n\
//! {\"kind\":\"transmit\",\"src\":0,\"dst\":1,\"t\":1,\"delay\":0.5}\n\
//! {\"kind\":\"deliver\",\"src\":0,\"dst\":1,\"t\":1.5,\"dst_hw\":1.5}\n";
//! let events = parse_stream(stream).unwrap();
//! let clocks = ClockReconstruction::from_events(&events);
//! let dag = Dag::from_events(events);
//! let summary = TraceSummary::from_dag(&dag);
//! assert_eq!(summary.total_events, 5);
//! assert_eq!(dag.messages().len(), 1);
//! assert!((clocks.logical(gcs_graph::NodeId(1), 1.5).unwrap() - 1.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod blame;
pub mod chrome;
pub mod clocks;
pub mod dag;
pub mod frames;
pub mod json;
pub mod parse;
pub mod summary;

pub use blame::{blame, causal_chain, find_peaks, BlameReport, Chain, Hop, PeakReport};
pub use chrome::export_chrome;
pub use clocks::{ClockReconstruction, NodeClock, Segment};
pub use dag::{event_node, Dag, EventId, Message};
pub use frames::{decode_dump, is_recorder_dump, FrameError};
pub use json::{parse as parse_json, Json, JsonError};
pub use parse::{parse_line, parse_stream, ParseError};
pub use summary::{EdgeStats, NodeStats, TraceSummary};
