//! Parsing `gcs run --events` JSONL streams back into typed
//! [`EngineEvent`]s.
//!
//! This is the exact inverse of [`gcs_analysis::events::encode_event`]:
//! every line the recorder can emit parses back to the event it came from
//! (see the round-trip test), and anything else — sweep JSONL rows,
//! summaries, truncated lines — fails with the line number and reason.

use std::fmt;

use gcs_graph::NodeId;
use gcs_sim::{EngineEvent, TimerId};

use crate::json::{parse as parse_json, Json};

/// A stream parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole JSONL event stream, one event per non-empty line.
///
/// # Errors
///
/// Fails on the first malformed line, reporting its 1-based number.
pub fn parse_stream(text: &str) -> Result<Vec<EngineEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line).map_err(|message| ParseError {
            line: i + 1,
            message,
        })?);
    }
    Ok(events)
}

/// Parses one JSONL line into an [`EngineEvent`].
///
/// # Errors
///
/// Returns a human-readable reason on malformed input, unknown event
/// kinds, or missing fields.
pub fn parse_line(line: &str) -> Result<EngineEvent, String> {
    let value = parse_json(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing string field `kind`")?;

    let num = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("`{kind}` event: missing number field `{key}`"))
    };
    let node_field = |key: &str| -> Result<NodeId, String> {
        let raw = num(key)?;
        if raw < 0.0 || raw.fract() != 0.0 {
            return Err(format!("`{kind}` event: `{key}` = {raw} is not a node id"));
        }
        Ok(NodeId(raw as usize))
    };
    let timer_field = || -> Result<TimerId, String> {
        let raw = num("timer")?;
        if raw < 0.0 || raw.fract() != 0.0 {
            return Err(format!("`{kind}` event: `timer` = {raw} is not a slot"));
        }
        Ok(TimerId(raw as u32))
    };

    match kind {
        "wake" => Ok(EngineEvent::Wake {
            node: node_field("node")?,
            t: num("t")?,
            hw: num("hw")?,
        }),
        "send" => Ok(EngineEvent::Send {
            node: node_field("node")?,
            t: num("t")?,
            hw: num("hw")?,
        }),
        "transmit" => {
            let delay = match value.get("delay") {
                Some(Json::Null) => None,
                Some(Json::Num(d)) => Some(*d),
                _ => return Err("`transmit` event: `delay` must be a number or null".into()),
            };
            Ok(EngineEvent::Transmit {
                src: node_field("src")?,
                dst: node_field("dst")?,
                t: num("t")?,
                delay,
            })
        }
        "drop" => {
            // Streams written before per-cause accounting carry no
            // `cause` field; treat those as model drops.
            let cause = match value.get("cause") {
                None => gcs_sim::DropCause::Model,
                Some(Json::Str(s)) if s == "model" => gcs_sim::DropCause::Model,
                Some(Json::Str(s)) if s == "fault" => gcs_sim::DropCause::Fault,
                _ => return Err("`drop` event: `cause` must be \"model\" or \"fault\"".into()),
            };
            Ok(EngineEvent::Drop {
                src: node_field("src")?,
                dst: node_field("dst")?,
                t: num("t")?,
                cause,
            })
        }
        "deliver" => Ok(EngineEvent::Deliver {
            src: node_field("src")?,
            dst: node_field("dst")?,
            t: num("t")?,
            dst_hw: num("dst_hw")?,
        }),
        "timer_set" => Ok(EngineEvent::TimerSet {
            node: node_field("node")?,
            timer: timer_field()?,
            target_hw: num("target_hw")?,
            t: num("t")?,
        }),
        "timer_cancel" => Ok(EngineEvent::TimerCancel {
            node: node_field("node")?,
            timer: timer_field()?,
            t: num("t")?,
        }),
        "timer_fire" => Ok(EngineEvent::TimerFire {
            node: node_field("node")?,
            timer: timer_field()?,
            t: num("t")?,
            hw: num("hw")?,
        }),
        "rate_step" => Ok(EngineEvent::RateStep {
            node: node_field("node")?,
            t: num("t")?,
            rate: num("rate")?,
        }),
        "multiplier" => Ok(EngineEvent::MultiplierChange {
            node: node_field("node")?,
            t: num("t")?,
            multiplier: num("multiplier")?,
        }),
        "job" | "summary" => Err(format!(
            "`{kind}` is a sweep-result line, not an engine event; \
             trace forensics reads `gcs run --events` streams"
        )),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_analysis::encode_event;

    fn all_kinds() -> Vec<EngineEvent> {
        vec![
            EngineEvent::Wake {
                node: NodeId(3),
                t: 1.5,
                hw: 0.25,
            },
            EngineEvent::Send {
                node: NodeId(0),
                t: 2.0,
                hw: 2.0,
            },
            EngineEvent::Transmit {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.0,
                delay: Some(0.125),
            },
            EngineEvent::Transmit {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.0,
                delay: None,
            },
            EngineEvent::Drop {
                src: NodeId(1),
                dst: NodeId(0),
                t: 3.0,
                cause: gcs_sim::DropCause::Fault,
            },
            EngineEvent::Deliver {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.125,
                dst_hw: 2.1,
            },
            EngineEvent::TimerSet {
                node: NodeId(2),
                timer: TimerId(1),
                target_hw: 5.0,
                t: 2.0,
            },
            EngineEvent::TimerCancel {
                node: NodeId(2),
                timer: TimerId(1),
                t: 2.5,
            },
            EngineEvent::TimerFire {
                node: NodeId(2),
                timer: TimerId(0),
                t: 4.0,
                hw: 4.0,
            },
            EngineEvent::RateStep {
                node: NodeId(1),
                t: 6.0,
                rate: 1.01,
            },
            EngineEvent::MultiplierChange {
                node: NodeId(1),
                t: 6.5,
                multiplier: 1.14,
            },
        ]
    }

    #[test]
    fn round_trips_every_event_kind() {
        for event in all_kinds() {
            let line = encode_event(&event);
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "{line}");
        }
    }

    #[test]
    fn parses_streams_with_line_numbers_on_error() {
        let stream = all_kinds()
            .iter()
            .map(encode_event)
            .collect::<Vec<_>>()
            .join("\n");
        let events = parse_stream(&stream).unwrap();
        assert_eq!(events.len(), all_kinds().len());

        let broken = format!("{stream}\nnot json at all");
        let err = parse_stream(&broken).unwrap_err();
        assert_eq!(err.line, all_kinds().len() + 1);
    }

    #[test]
    fn rejects_sweep_rows_with_guidance() {
        let err = parse_line(r#"{"kind":"job","job":0}"#).unwrap_err();
        assert!(err.contains("sweep-result"), "{err}");
        let err = parse_line(r#"{"kind":"warp","t":0}"#).unwrap_err();
        assert!(err.contains("unknown event kind"), "{err}");
    }
}
