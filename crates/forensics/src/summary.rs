//! Per-node and per-edge statistics over a reconstructed DAG —
//! the `gcs trace summary` report.

use std::collections::BTreeMap;

use gcs_analysis::Table;

use crate::dag::{event_node, Dag};
use gcs_sim::EngineEvent;

/// Aggregate statistics for one node's events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Total events attributed to this node (program order).
    pub events: usize,
    /// `send` events.
    pub sends: usize,
    /// `deliver` events (this node as receiver).
    pub delivers: usize,
    /// `timer_fire` events.
    pub timer_fires: usize,
    /// `rate_step` events.
    pub rate_steps: usize,
    /// `multiplier` events.
    pub multiplier_changes: usize,
    /// Smallest multiplier ever set (None until the first change).
    pub min_multiplier: Option<f64>,
    /// Largest multiplier ever set (None until the first change).
    pub max_multiplier: Option<f64>,
}

/// Aggregate statistics for one undirected communication edge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeStats {
    /// Messages transmitted over the edge (both directions).
    pub transmits: usize,
    /// Messages delivered.
    pub delivers: usize,
    /// Messages dropped.
    pub drops: usize,
    /// Sum of measured latencies of delivered messages.
    pub latency_sum: f64,
    /// Smallest measured latency.
    pub min_latency: Option<f64>,
    /// Largest measured latency.
    pub max_latency: Option<f64>,
}

impl EdgeStats {
    /// Mean measured latency over delivered messages.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.delivers > 0).then(|| self.latency_sum / self.delivers as f64)
    }
}

/// The full summary of a trace: totals, per-node, and per-edge stats.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Total parsed events.
    pub total_events: usize,
    /// Event counts per kind label, sorted by label.
    pub kind_counts: BTreeMap<&'static str, usize>,
    /// Per-node statistics, indexed by node id.
    pub nodes: Vec<NodeStats>,
    /// Per-edge statistics, keyed by the sorted node pair.
    pub edges: BTreeMap<(usize, usize), EdgeStats>,
    /// Messages still in flight when the stream ended.
    pub undelivered: usize,
    /// Real time of the last event.
    pub end_t: f64,
}

impl TraceSummary {
    /// Computes the summary of a reconstructed DAG.
    pub fn from_dag(dag: &Dag) -> Self {
        let mut summary = TraceSummary {
            total_events: dag.events().len(),
            nodes: vec![NodeStats::default(); dag.node_count()],
            ..TraceSummary::default()
        };
        for event in dag.events() {
            *summary.kind_counts.entry(event.kind()).or_insert(0) += 1;
            summary.end_t = summary.end_t.max(event.time());
            let stats = &mut summary.nodes[event_node(event).0];
            stats.events += 1;
            match *event {
                EngineEvent::Send { .. } => stats.sends += 1,
                EngineEvent::Deliver { .. } => stats.delivers += 1,
                EngineEvent::TimerFire { .. } => stats.timer_fires += 1,
                EngineEvent::RateStep { .. } => stats.rate_steps += 1,
                EngineEvent::MultiplierChange { multiplier, .. } => {
                    stats.multiplier_changes += 1;
                    stats.min_multiplier = Some(
                        stats
                            .min_multiplier
                            .map_or(multiplier, |m| m.min(multiplier)),
                    );
                    stats.max_multiplier = Some(
                        stats
                            .max_multiplier
                            .map_or(multiplier, |m| m.max(multiplier)),
                    );
                }
                _ => {}
            }
        }
        for msg in dag.messages() {
            let key = (msg.src.0.min(msg.dst.0), msg.src.0.max(msg.dst.0));
            let edge = summary.edges.entry(key).or_default();
            edge.transmits += 1;
            if let Some(latency) = msg.latency() {
                edge.delivers += 1;
                edge.latency_sum += latency;
                edge.min_latency = Some(edge.min_latency.map_or(latency, |m| m.min(latency)));
                edge.max_latency = Some(edge.max_latency.map_or(latency, |m| m.max(latency)));
            } else {
                summary.undelivered += 1;
            }
        }
        for &(src, dst, _) in dag.drops() {
            let key = (src.0.min(dst.0), src.0.max(dst.0));
            summary.edges.entry(key).or_default().drops += 1;
        }
        summary
    }

    /// Renders the summary as human-readable text (header line, kind
    /// counts, per-node table, per-edge table).
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace: {} events, {} nodes, {} edges, end t = {}\n",
            self.total_events,
            self.nodes.iter().filter(|s| s.events > 0).count(),
            self.edges.len(),
            self.end_t,
        );
        let kinds: Vec<String> = self
            .kind_counts
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect();
        out.push_str(&format!("kinds: {}\n", kinds.join(" ")));
        if self.undelivered > 0 {
            out.push_str(&format!(
                "in flight at end of stream: {}\n",
                self.undelivered
            ));
        }

        let mut nodes = Table::new(vec![
            "node", "events", "sends", "delivers", "fires", "rate", "mult", "mult.min", "mult.max",
        ]);
        for (id, s) in self.nodes.iter().enumerate() {
            if s.events == 0 {
                continue;
            }
            nodes.row(vec![
                id.to_string(),
                s.events.to_string(),
                s.sends.to_string(),
                s.delivers.to_string(),
                s.timer_fires.to_string(),
                s.rate_steps.to_string(),
                s.multiplier_changes.to_string(),
                opt(s.min_multiplier),
                opt(s.max_multiplier),
            ]);
        }
        out.push_str("\nper node:\n");
        out.push_str(&nodes.to_string());

        let mut edges = Table::new(vec![
            "edge",
            "transmits",
            "delivers",
            "drops",
            "lat.mean",
            "lat.min",
            "lat.max",
        ]);
        for (&(a, b), s) in &self.edges {
            edges.row(vec![
                format!("{a}-{b}"),
                s.transmits.to_string(),
                s.delivers.to_string(),
                s.drops.to_string(),
                opt(s.mean_latency()),
                opt(s.min_latency),
                opt(s.max_latency),
            ]);
        }
        out.push_str("\nper edge:\n");
        out.push_str(&edges.to_string());
        out
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| format!("{v:.6}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn counts_nodes_edges_and_kinds() {
        let events = vec![
            EngineEvent::Wake {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Wake {
                node: n(1),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Send {
                node: n(0),
                t: 1.0,
                hw: 1.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 1.0,
                delay: Some(0.5),
            },
            EngineEvent::Deliver {
                src: n(0),
                dst: n(1),
                t: 1.5,
                dst_hw: 1.5,
            },
            EngineEvent::MultiplierChange {
                node: n(1),
                t: 1.5,
                multiplier: 1.2,
            },
            EngineEvent::Drop {
                src: n(1),
                dst: n(0),
                t: 2.0,
                cause: gcs_sim::DropCause::Model,
            },
        ];
        let summary = TraceSummary::from_dag(&Dag::from_events(events));
        assert_eq!(summary.total_events, 7);
        assert_eq!(summary.kind_counts["wake"], 2);
        assert_eq!(summary.kind_counts["deliver"], 1);
        assert_eq!(summary.nodes[0].sends, 1);
        assert_eq!(summary.nodes[1].delivers, 1);
        assert_eq!(summary.nodes[1].max_multiplier, Some(1.2));
        let edge = &summary.edges[&(0, 1)];
        assert_eq!(edge.transmits, 1);
        assert_eq!(edge.delivers, 1);
        assert_eq!(edge.drops, 1);
        assert!((edge.mean_latency().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(summary.undelivered, 0);
        assert!((summary.end_t - 2.0).abs() < 1e-12);

        let text = summary.render();
        assert!(text.contains("per node:"));
        assert!(text.contains("per edge:"));
        assert!(text.contains("0-1"));
    }

    #[test]
    fn tracks_in_flight_messages() {
        let events = vec![
            EngineEvent::Send {
                node: n(0),
                t: 0.0,
                hw: 0.0,
            },
            EngineEvent::Transmit {
                src: n(0),
                dst: n(1),
                t: 0.0,
                delay: Some(10.0),
            },
        ];
        let summary = TraceSummary::from_dag(&Dag::from_events(events));
        assert_eq!(summary.undelivered, 1);
        assert!(summary.render().contains("in flight"));
    }
}
