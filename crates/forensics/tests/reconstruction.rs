//! End-to-end forensics acceptance: simulate, encode to JSONL, parse the
//! text back, and check that the offline reconstruction agrees with the
//! live engine — clocks to near-exact precision, peak-skew pair equal to
//! what the online [`gcs_analysis::SkewObserver`] saw.

use gcs_analysis::{encode_event, SkewObserver};
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{Engine, UniformDelay, VecSink};
use gcs_time::DriftBounds;

const N: usize = 8;
const HORIZON: f64 = 60.0;

/// One fixed-seed F2-style wavefront run: A^opt on a path under drifting
/// rates, events captured in memory, exact skews observed online.
fn run_fixture() -> (String, SkewObserver, Vec<f64>) {
    let params = Params::recommended(0.05, 0.5).unwrap();
    let drift = DriftBounds::new(0.05).unwrap();
    let graph = topology::path(N);
    let mut observer = SkewObserver::new(&graph);
    let schedules = gcs_sim::rates::random_walk(N, drift, 1.0, HORIZON, 42);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); N])
        .delay_model(UniformDelay::new(0.5, 42))
        .rate_schedules(schedules)
        .event_sink(VecSink::default())
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(HORIZON, |e| observer.observe(e));
    let logical = engine.logical_values();
    let mut text = String::new();
    for event in &engine.into_sink().events {
        text.push_str(&encode_event(event));
        text.push('\n');
    }
    (text, observer, logical)
}

#[test]
fn reconstruction_matches_live_engine() {
    let (text, _, live_logical) = run_fixture();
    let events = gcs_forensics::parse_stream(&text).unwrap();
    let clocks = gcs_forensics::ClockReconstruction::from_events(&events);
    assert_eq!(clocks.node_count(), N);
    let t = clocks.last_event_time();
    for (i, &live) in live_logical.iter().enumerate() {
        let rebuilt = clocks
            .logical(NodeId(i), t)
            .expect("every node woke at t = 0");
        assert!(
            (rebuilt - live).abs() < 1e-6,
            "node {i}: reconstructed L = {rebuilt}, live L = {live} at t = {t}"
        );
    }
}

#[test]
fn blame_pair_matches_online_observer() {
    let (text, observer, _) = run_fixture();
    let events = gcs_forensics::parse_stream(&text).unwrap();
    let dag = gcs_forensics::Dag::from_events(events);
    let clocks = gcs_forensics::ClockReconstruction::from_events(dag.events());
    let report = gcs_forensics::blame(&dag, &clocks, Some(HORIZON), 64, false).unwrap();

    let (ahead, behind) = observer.worst_local_pair();
    assert_eq!(
        (report.peak.local_pair.0 .0, report.peak.local_pair.1 .0),
        (ahead, behind),
        "offline peak local pair must match the online observer"
    );
    assert!(
        (report.peak.local - observer.worst_local()).abs() < 1e-6,
        "offline peak {} vs online {}",
        report.peak.local,
        observer.worst_local()
    );
    // The causal chains explain exactly those endpoints.
    assert_eq!(report.chains[0].endpoint.0, ahead);
    assert_eq!(report.chains[1].endpoint.0, behind);

    let (g_ahead, g_behind) = observer.worst_global_pair();
    assert_eq!(
        (report.peak.global_pair.0 .0, report.peak.global_pair.1 .0),
        (g_ahead, g_behind),
        "offline peak global pair must match the online observer"
    );
    assert!((report.peak.global - observer.worst_global()).abs() < 1e-6);
}

#[test]
fn chrome_export_of_real_run_is_valid() {
    let (text, _, _) = run_fixture();
    let events = gcs_forensics::parse_stream(&text).unwrap();
    let dag = gcs_forensics::Dag::from_events(events);
    let json = gcs_forensics::export_chrome(&dag);
    let parsed = gcs_forensics::parse_json(&json).expect("export must be valid JSON");
    let records = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!records.is_empty());
    for r in records {
        let ph = r.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(
            matches!(ph, "M" | "i" | "C" | "b" | "e"),
            "unexpected phase {ph}"
        );
    }
}
