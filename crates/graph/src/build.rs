//! Graph construction and metric queries.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Index of a node in a [`Graph`].
///
/// A thin, typed wrapper around the node's position in `0..graph.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// Error returned when constructing an ill-formed [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The node count was zero.
    NoNodes,
    /// An edge endpoint was out of range.
    EndpointOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// An edge connected a node to itself.
    SelfLoop {
        /// The node with the self loop.
        node: usize,
    },
    /// The graph was not connected — the paper's model requires a connected
    /// graph (otherwise no algorithm can bound skew between components).
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NoNodes => write!(f, "graph must have at least one node"),
            GraphError::EndpointOutOfRange { node, len } => {
                write!(f, "edge endpoint {node} out of range for {len} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl Error for GraphError {}

/// A connected, undirected, simple graph.
///
/// Construction validates connectivity (the paper's standing assumption),
/// rejects self loops, and deduplicates parallel edges. Distances are
/// hop counts computed by BFS; the diameter `D` is the maximum distance over
/// all pairs.
///
/// # Example
///
/// ```
/// use gcs_graph::{Graph, NodeId};
///
/// // A triangle with a pendant: 0-1, 1-2, 2-0, 2-3.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])?;
/// assert_eq!(g.diameter(), 2);
/// assert_eq!(g.neighbors(NodeId(2)).len(), 3);
/// # Ok::<(), gcs_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// Parallel edges are deduplicated; edge direction is ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if `n == 0`, an endpoint is out of range, an
    /// edge is a self loop, or the resulting graph is disconnected.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::NoNodes);
        }
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n {
                return Err(GraphError::EndpointOutOfRange { node: a, len: n });
            }
            if b >= n {
                return Err(GraphError::EndpointOutOfRange { node: b, len: n });
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            if !adjacency[a].contains(&NodeId(b)) {
                adjacency[a].push(NodeId(b));
                adjacency[b].push(NodeId(a));
            }
        }
        let edge_count = adjacency.iter().map(Vec::len).sum::<usize>() / 2;
        let graph = Graph {
            adjacency,
            edge_count,
        };
        if !graph.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(graph)
    }

    /// Number of nodes `|V|`.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no nodes (never true for a constructed graph).
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of (undirected) edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(NodeId)
    }

    /// Iterator over all undirected edges as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(a, nbrs)| {
            nbrs.iter()
                .filter(move |&&NodeId(b)| a < b)
                .map(move |&b| (NodeId(a), b))
        })
    }

    /// The neighbours `N_v` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.0]
    }

    /// The maximum node degree Δ.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// BFS distances (hop counts) from `source` to every node.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn distances_from(&self, source: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        dist[source.0] = 0;
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.0];
            for &w in &self.adjacency[u.0] {
                if dist[w.0] == u32::MAX {
                    dist[w.0] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Hop distance `d(u, v)`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        self.distances_from(u)[v.0]
    }

    /// All-pairs distances, `result[u][v] = d(u, v)`. Costs `O(|V|·|E|)`.
    pub fn all_pairs_distances(&self) -> Vec<Vec<u32>> {
        self.nodes().map(|v| self.distances_from(v)).collect()
    }

    /// Eccentricity of `v`: the distance to the farthest node.
    pub fn eccentricity(&self, v: NodeId) -> u32 {
        *self
            .distances_from(v)
            .iter()
            .max()
            .expect("graph is non-empty")
    }

    /// The diameter `D` of the graph.
    pub fn diameter(&self) -> u32 {
        self.nodes()
            .map(|v| self.eccentricity(v))
            .max()
            .unwrap_or(0)
    }

    /// One pair of nodes realizing the diameter.
    pub fn diameter_endpoints(&self) -> (NodeId, NodeId) {
        let mut best = (NodeId(0), NodeId(0), 0);
        for v in self.nodes() {
            let dist = self.distances_from(v);
            if let Some((idx, &d)) = dist.iter().enumerate().max_by_key(|&(_, &d)| d) {
                if d > best.2 {
                    best = (v, NodeId(idx), d);
                }
            }
        }
        (best.0, best.1)
    }

    /// A shortest path from `u` to `v`, inclusive of both endpoints.
    ///
    /// The lower-bound constructions (paper Section 7) repeatedly select
    /// sub-segments of shortest paths between high-skew pairs.
    pub fn shortest_path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        // BFS from v so we can walk from u downhill to v.
        let dist = self.distances_from(v);
        assert!(dist[u.0] != u32::MAX, "graph is connected by construction");
        let mut path = vec![u];
        let mut current = u;
        while current != v {
            let next = self.adjacency[current.0]
                .iter()
                .copied()
                .find(|w| dist[w.0] + 1 == dist[current.0])
                .expect("a BFS-downhill neighbour always exists");
            path.push(next);
            current = next;
        }
        path
    }

    fn is_connected(&self) -> bool {
        if self.adjacency.is_empty() {
            return false;
        }
        let reached = self
            .distances_from(NodeId(0))
            .iter()
            .filter(|&&d| d != u32::MAX)
            .count();
        reached == self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(Graph::from_edges(0, &[]), Err(GraphError::NoNodes));
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let err = Graph::from_edges(2, &[(0, 2)]).unwrap_err();
        assert_eq!(err, GraphError::EndpointOutOfRange { node: 2, len: 2 });
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, &[(0, 0), (0, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 0 });
    }

    #[test]
    fn rejects_disconnected() {
        let err = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap_err();
        assert_eq!(err, GraphError::Disconnected);
    }

    #[test]
    fn singleton_graph_is_connected() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.diameter(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn deduplicates_parallel_edges() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn distances_on_a_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.distances_from(NodeId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.distance(NodeId(1), NodeId(4)), 3);
        assert_eq!(g.diameter(), 4);
        assert_eq!(g.eccentricity(NodeId(2)), 2);
    }

    #[test]
    fn diameter_endpoints_realize_diameter() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (1, 4), (4, 5)]).unwrap();
        let (a, b) = g.diameter_endpoints();
        assert_eq!(g.distance(a, b), g.diameter());
    }

    #[test]
    fn shortest_path_is_shortest_and_valid() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]).unwrap();
        let p = g.shortest_path(NodeId(0), NodeId(3));
        assert_eq!(p.len() as u32, g.distance(NodeId(0), NodeId(3)) + 1);
        assert_eq!(*p.first().unwrap(), NodeId(0));
        assert_eq!(*p.last().unwrap(), NodeId(3));
        for w in p.windows(2) {
            assert!(g.neighbors(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn max_degree_of_star() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let d = g.all_pairs_distances();
        for (u, row) in d.iter().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d[v][u]);
            }
        }
    }

    #[test]
    fn node_id_display_and_conversion() {
        let v: NodeId = 7.into();
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "v7");
    }
}
