//! Network topologies for the gradient clock-synchronization reproduction.
//!
//! The paper models a distributed system as a connected, undirected graph
//! `G = (V, E)` of diameter `D`; every skew bound is stated in terms of graph
//! distances (`d(v, w)`) and `D`. This crate provides:
//!
//! * [`Graph`] — a validated, connected, undirected simple graph with
//!   BFS-based distance queries, eccentricities, diameter, and shortest
//!   paths (needed by the lower-bound constructions of the paper's
//!   Section 7, which walk shortest paths between chosen node pairs),
//! * [`NodeId`] — a typed node index,
//! * topology generators in [`topology`] — paths, cycles, stars, complete
//!   graphs, balanced trees, 2-D grids and tori, hypercubes, and seeded
//!   random graphs (Erdős–Rényi and random geometric), the workloads used by
//!   the experiment harness.
//!
//! # Example
//!
//! ```
//! use gcs_graph::{topology, NodeId};
//!
//! let g = topology::grid(4, 5);
//! assert_eq!(g.len(), 20);
//! assert_eq!(g.diameter(), 7); // (4-1) + (5-1)
//! let d = g.distance(NodeId(0), NodeId(19));
//! assert_eq!(d, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
pub mod partition;
pub mod topology;

pub use build::{Graph, GraphError, NodeId};
