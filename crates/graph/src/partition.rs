//! Graph partitioning for the windowed parallel engine.
//!
//! The parallel engine (see the `gcs-sim` crate and `docs/PARALLEL.md`)
//! assigns each node to one of `k` partitions and processes partitions on
//! separate threads; only messages crossing a partition boundary pay
//! synchronization cost. The partitioner therefore optimizes one thing:
//! **few cut edges under an exact balance constraint**, deterministically.
//!
//! [`contiguous`] chunks a node visit order into `k` balanced blocks and
//! keeps whichever of two deterministic orders cuts fewer edges: the
//! identity order (exact strips on the row-major path/grid/torus
//! generators, including their wrap edges) or BFS from node 0 (spatial
//! locality on irregular topologies where ids carry no geometry). The
//! result depends only on the graph's adjacency lists, so the same graph
//! always partitions the same way — a prerequisite for the engine's
//! reproducibility story.

use crate::{Graph, NodeId};

/// An assignment of every node to one of `parts` partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[v]` is the partition owning node `v`.
    pub assignment: Vec<u32>,
    /// Number of partitions (every value in `assignment` is `< parts`).
    pub parts: u32,
}

impl Partitioning {
    /// The partition owning node `v`.
    pub fn part_of(&self, v: NodeId) -> u32 {
        self.assignment[v.index()]
    }

    /// Node count per partition.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts as usize];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Number of edges whose endpoints lie in different partitions — the
    /// traffic that must flow through the parallel engine's mailboxes.
    pub fn cut_edges(&self, graph: &Graph) -> usize {
        graph
            .edges()
            .filter(|(u, v)| self.assignment[u.index()] != self.assignment[v.index()])
            .count()
    }
}

/// Partitions `graph` into `parts` contiguous blocks of near-equal size.
///
/// Block sizes differ by at most one (`n mod k` blocks get the extra
/// node), and `parts` is clamped to `[1, n]`, so **every partition is
/// non-empty**. Two candidate visit orders are chunked — the identity
/// order and BFS from node 0 (FIFO, adjacency order — the same
/// deterministic order as every other BFS in this crate) — and the one
/// cutting fewer edges wins, identity on ties.
pub fn contiguous(graph: &Graph, parts: usize) -> Partitioning {
    let n = graph.len();
    let parts = parts.clamp(1, n.max(1));
    let identity = chunk_order(graph, (0..n).map(NodeId), parts);
    let bfs = chunk_order(graph, bfs_order(graph).into_iter(), parts);
    if bfs.cut_edges(graph) < identity.cut_edges(graph) {
        bfs
    } else {
        identity
    }
}

/// Chunks `order` into `parts` blocks whose sizes differ by at most one.
fn chunk_order(
    graph: &Graph,
    order: impl ExactSizeIterator<Item = NodeId>,
    parts: usize,
) -> Partitioning {
    let n = graph.len();
    debug_assert_eq!(order.len(), n, "graphs are connected by construction");
    let base = n / parts;
    let extra = n % parts;
    // The first `extra` blocks hold `base + 1` nodes, the rest `base`.
    let big = extra * (base + 1);
    let mut assignment = vec![0u32; n];
    for (rank, v) in order.enumerate() {
        assignment[v.index()] = if rank < big {
            (rank / (base + 1)) as u32
        } else {
            (extra + (rank - big) / base) as u32
        };
    }
    Partitioning {
        assignment,
        parts: parts as u32,
    }
}

/// BFS visit order over the whole graph, starting from node 0.
fn bfs_order(graph: &Graph) -> Vec<NodeId> {
    let n = graph.len();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut head = 0;
    // `Graph` validates connectivity, but restart defensively anyway so a
    // future relaxation of that invariant cannot leave nodes unassigned.
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        order.push(NodeId(root));
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &w in graph.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    order.push(w);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn path_splits_into_exact_strips() {
        let g = topology::path(12);
        let p = contiguous(&g, 4);
        assert_eq!(p.parts, 4);
        assert_eq!(p.sizes(), vec![3, 3, 3, 3]);
        // On a path BFS from node 0 *is* the identity order: partitions
        // are literal strips and only 3 edges are cut.
        assert_eq!(p.assignment, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        assert_eq!(p.cut_edges(&g), 3);
    }

    #[test]
    fn uneven_division_keeps_every_partition_nonempty() {
        let g = topology::path(10);
        let p = contiguous(&g, 4);
        // 10 = 4·2 + 2 → the first two blocks take the extra node.
        assert_eq!(p.sizes(), vec![3, 3, 2, 2]);
        assert_eq!(p.cut_edges(&g), 3);
    }

    #[test]
    fn parts_clamp_to_node_count_and_to_one() {
        let g = topology::path(3);
        assert_eq!(contiguous(&g, 100).parts, 3);
        assert_eq!(contiguous(&g, 0).parts, 1);
        let p1 = contiguous(&g, 1);
        assert_eq!(p1.assignment, vec![0, 0, 0]);
        assert_eq!(p1.cut_edges(&g), 0);
    }

    #[test]
    fn torus_partitions_are_balanced_with_bounded_cut() {
        let g = topology::torus(8, 8);
        let p = contiguous(&g, 4);
        assert_eq!(p.sizes(), vec![16, 16, 16, 16]);
        // Row-major ids make identity chunks exact 2-row strips: 8 column
        // edges cut per boundary × 4 boundaries (including the wrap) = 32
        // of 128 edges. BFS-from-0 diamonds would cut 70 here — the
        // partitioner must pick the strips.
        assert_eq!(p.cut_edges(&g), 32, "of {} edges", g.edge_count());
    }

    #[test]
    fn partitioning_is_deterministic() {
        let g = topology::torus(6, 5);
        assert_eq!(contiguous(&g, 3), contiguous(&g, 3));
    }

    #[test]
    fn every_node_is_assigned_a_valid_partition() {
        for (g, k) in [
            (topology::complete(7), 3),
            (topology::hypercube(4), 5),
            (topology::star(9), 2),
        ] {
            let p = contiguous(&g, k);
            assert_eq!(p.assignment.len(), g.len());
            assert!(p.assignment.iter().all(|&x| x < p.parts));
            assert!(p.sizes().iter().all(|&s| s > 0));
        }
    }
}
