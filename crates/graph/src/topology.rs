//! Topology generators.
//!
//! Deterministic families (paths, cycles, stars, complete graphs, balanced
//! binary trees, grids, tori, hypercubes) plus seeded random families
//! (Erdős–Rényi, random geometric). The skew bounds of the paper are
//! worst-case over *all* connected graphs, so the experiment harness sweeps
//! several families; paths maximize the diameter for a given node count and
//! are the canonical worst-case topology in the lower-bound constructions.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Graph, NodeId};

/// A path `v_0 − v_1 − … − v_{n−1}` (diameter `n − 1`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Graph::from_edges(n, &edges).expect("paths are connected")
}

/// A cycle on `n ≥ 3` nodes (diameter `⌊n/2⌋`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).expect("cycles are connected")
}

/// A star: node 0 is the hub, nodes `1..n` are leaves (diameter 2).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges).expect("stars are connected")
}

/// The complete graph `K_n` (diameter 1 for `n ≥ 2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    Graph::from_edges(n, &edges).expect("complete graphs are connected")
}

/// A balanced binary tree with `n` nodes in heap layout
/// (node `i` has children `2i + 1` and `2i + 2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 1..n {
        edges.push(((i - 1) / 2, i));
    }
    Graph::from_edges(n, &edges).expect("trees are connected")
}

/// A `width × height` 2-D grid (diameter `width + height − 2`).
///
/// Node `(x, y)` has index `y * width + x`.
///
/// # Panics
///
/// Panics if `width == 0 || height == 0`.
pub fn grid(width: usize, height: usize) -> Graph {
    assert!(width > 0 && height > 0, "grid dimensions must be positive");
    let mut edges = Vec::new();
    for y in 0..height {
        for x in 0..width {
            let i = y * width + x;
            if x + 1 < width {
                edges.push((i, i + 1));
            }
            if y + 1 < height {
                edges.push((i, i + width));
            }
        }
    }
    Graph::from_edges(width * height, &edges).expect("grids are connected")
}

/// A `width × height` torus (grid with wraparound edges).
///
/// # Panics
///
/// Panics if `width < 3 || height < 3` (smaller wraps create parallel edges
/// or self loops).
pub fn torus(width: usize, height: usize) -> Graph {
    assert!(
        width >= 3 && height >= 3,
        "torus dimensions must be at least 3"
    );
    let mut edges = Vec::new();
    for y in 0..height {
        for x in 0..width {
            let i = y * width + x;
            edges.push((i, y * width + (x + 1) % width));
            edges.push((i, ((y + 1) % height) * width + x));
        }
    }
    Graph::from_edges(width * height, &edges).expect("tori are connected")
}

/// The `dim`-dimensional hypercube on `2^dim` nodes (diameter `dim`).
///
/// # Panics
///
/// Panics if `dim == 0` or `dim >= usize::BITS as usize`.
pub fn hypercube(dim: usize) -> Graph {
    assert!(dim >= 1 && dim < usize::BITS as usize, "invalid dimension");
    let n = 1usize << dim;
    let mut edges = Vec::new();
    for v in 0..n {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if v < w {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("hypercubes are connected")
}

/// A connected Erdős–Rényi graph `G(n, p)` drawn with the given seed.
///
/// Each potential edge is included independently with probability `p`; a
/// uniformly random spanning-tree-ish backbone (each node `i ≥ 1` links to a
/// random earlier node) guarantees connectivity, so the result is always a
/// valid model graph even for small `p`.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        edges.push((parent, i));
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("backbone guarantees connectivity")
}

/// A connected random geometric graph: `n` points uniform in the unit
/// square, edges between pairs within distance `radius`, plus a chain
/// backbone in point order to guarantee connectivity.
///
/// Random geometric graphs are the standard abstraction of wireless sensor
/// networks — the paper's motivating deployment (its Section 2).
///
/// # Panics
///
/// Panics if `n == 0` or `radius <= 0`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(n > 0, "need at least one node");
    assert!(radius > 0.0, "radius must be positive, got {radius}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (points[a].0 + points[a].1)
            .partial_cmp(&(points[b].0 + points[b].1))
            .expect("coordinates are finite")
    });
    let mut edges = Vec::new();
    for w in order.windows(2) {
        edges.push((w[0], w[1]));
    }
    let r2 = radius * radius;
    for a in 0..n {
        for b in (a + 1)..n {
            let dx = points[a].0 - points[b].0;
            let dy = points[a].1 - points[b].1;
            if dx * dx + dy * dy <= r2 {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("backbone guarantees connectivity")
}

/// The canonical endpoints of a path graph: `(v_0, v_{n−1})`.
pub fn path_endpoints(g: &Graph) -> (NodeId, NodeId) {
    (NodeId(0), NodeId(g.len() - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_metrics() {
        let g = path(10);
        assert_eq!(g.len(), 10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.diameter(), 9);
    }

    #[test]
    fn single_node_path() {
        let g = path(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.diameter(), 0);
    }

    #[test]
    fn cycle_metrics() {
        let g = cycle(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.diameter(), 4);
        let g = cycle(7);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn star_metrics() {
        let g = star(6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.diameter(), 2);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn complete_metrics() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn binary_tree_metrics() {
        let g = binary_tree(7); // perfect tree of height 2
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.diameter(), 4); // leaf -> root -> leaf
    }

    #[test]
    fn grid_metrics() {
        let g = grid(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(g.diameter(), 5);
    }

    #[test]
    fn torus_metrics() {
        let g = torus(4, 4);
        assert_eq!(g.len(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn hypercube_metrics() {
        let g = hypercube(4);
        assert_eq!(g.len(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(20, 0.1, 42);
        let b = erdos_renyi(20, 0.1, 42);
        let c = erdos_renyi(20, 0.1, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn random_geometric_is_connected_even_with_tiny_radius() {
        let g = random_geometric(30, 1e-6, 7);
        assert_eq!(g.len(), 30);
        // connectivity is validated by Graph::from_edges
    }

    #[test]
    fn path_endpoints_are_extremes() {
        let g = path(5);
        let (a, b) = path_endpoints(&g);
        assert_eq!(g.distance(a, b), 4);
    }
}
