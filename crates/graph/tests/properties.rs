//! Property-based tests for the graph substrate.

use gcs_graph::{topology, Graph, NodeId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn generated_random_graphs_are_valid(n in 1usize..40, p in 0.0f64..0.3, seed in 0u64..1000) {
        let g = topology::erdos_renyi(n, p, seed);
        prop_assert_eq!(g.len(), n);
        // BFS reaches every node (connectivity was validated at build time).
        let d = g.distances_from(NodeId(0));
        prop_assert!(d.iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn triangle_inequality_holds(n in 2usize..25, p in 0.05f64..0.4, seed in 0u64..200) {
        let g = topology::erdos_renyi(n, p, seed);
        let d = g.all_pairs_distances();
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    prop_assert!(d[u][w] <= d[u][v] + d[v][w]);
                }
            }
        }
    }

    #[test]
    fn distance_is_a_metric(n in 2usize..30, p in 0.05f64..0.4, seed in 0u64..200) {
        let g = topology::erdos_renyi(n, p, seed);
        let d = g.all_pairs_distances();
        for (u, row) in d.iter().enumerate() {
            prop_assert_eq!(row[u], 0);
            for (v, &duv) in row.iter().enumerate() {
                prop_assert_eq!(duv, d[v][u]);
                if u != v {
                    prop_assert!(duv >= 1);
                }
            }
        }
    }

    #[test]
    fn neighbors_are_at_distance_one(n in 2usize..30, p in 0.0f64..0.4, seed in 0u64..200) {
        let g = topology::erdos_renyi(n, p, seed);
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                prop_assert_eq!(g.distance(v, w), 1);
            }
        }
    }

    #[test]
    fn shortest_paths_have_metric_length(n in 2usize..25, p in 0.05f64..0.4, seed in 0u64..100,
                                         a in 0usize..25, b in 0usize..25) {
        let g = topology::erdos_renyi(n, p, seed);
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        let path = g.shortest_path(a, b);
        prop_assert_eq!(path.len() as u32, g.distance(a, b) + 1);
        for w in path.windows(2) {
            prop_assert!(g.neighbors(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn diameter_bounds_every_distance(n in 2usize..25, p in 0.0f64..0.4, seed in 0u64..100) {
        let g = topology::erdos_renyi(n, p, seed);
        let diameter = g.diameter();
        let d = g.all_pairs_distances();
        for row in &d {
            for &duv in row {
                prop_assert!(duv <= diameter);
            }
        }
    }

    #[test]
    fn geometric_graphs_are_connected(n in 1usize..40, r in 0.01f64..0.5, seed in 0u64..100) {
        let g = topology::random_geometric(n, r, seed);
        let d = g.distances_from(NodeId(0));
        prop_assert!(d.iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn grid_diameter_formula(w in 1usize..8, h in 1usize..8) {
        let g = topology::grid(w, h);
        prop_assert_eq!(g.diameter() as usize, (w - 1) + (h - 1));
    }

    #[test]
    fn rebuilding_from_edge_list_round_trips(n in 2usize..25, p in 0.05f64..0.4, seed in 0u64..100) {
        let g = topology::erdos_renyi(n, p, seed);
        let edges: Vec<(usize, usize)> = g.edges().map(|(a, b)| (a.index(), b.index())).collect();
        let h = Graph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.edge_count(), h.edge_count());
        prop_assert_eq!(g.all_pairs_distances(), h.all_pairs_distances());
    }
}
