//! Job kinds, spec parsing, and the immutable completed-job artifact.
//!
//! A submission body is the existing `key = value` spec format
//! ([`gcs_sweep::SweepSpec::parse_str`] for run/sweep jobs; a three-key
//! subset for chaos batches). Its canonical hash — kind-salted so a `run`
//! and a `sweep` of the same grid never collide — is the job's identity:
//! the job id, the cache key, and the dedupe key are all derived from it.

use gcs_sim::EngineEvent;
use gcs_sweep::{hash, DedupePlan, JobSpec, SweepSpec};

/// What kind of work a submission asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A single execution: the spec must expand to exactly one job.
    Run,
    /// A parameter sweep: the spec expands to a grid of jobs.
    Sweep,
    /// A chaos batch: seed-randomized fault scenarios under the invariant
    /// oracle.
    ChaosBatch,
}

impl JobKind {
    /// Parses the `kind` query parameter.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "run" => Ok(JobKind::Run),
            "sweep" => Ok(JobKind::Sweep),
            "chaos-batch" => Ok(JobKind::ChaosBatch),
            other => Err(format!(
                "unknown job kind `{other}` (expected run, sweep, or chaos-batch)"
            )),
        }
    }

    /// The kind's wire name (also the job-id prefix).
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Run => "run",
            JobKind::Sweep => "sweep",
            JobKind::ChaosBatch => "chaos-batch",
        }
    }
}

/// Parameters of a chaos batch, parsed from the same `key = value` body
/// format as sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosBatchSpec {
    /// Scenarios to run (seed-randomized).
    pub scenarios: usize,
    /// First seed; scenario `i` uses `start_seed + i`.
    pub start_seed: u64,
    /// Engine threads per scenario.
    pub threads: usize,
}

impl ChaosBatchSpec {
    /// Parses `scenarios = N`, `start-seed = S`, `threads = T` lines.
    pub fn parse_str(text: &str) -> Result<Self, String> {
        let mut spec = ChaosBatchSpec {
            scenarios: 100,
            start_seed: 1,
            threads: 1,
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("spec line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let parse = |what: &str| -> Result<u64, String> {
                value.parse::<u64>().map_err(|_| {
                    format!(
                        "spec line {}: {what}: `{value}` is not a number",
                        lineno + 1
                    )
                })
            };
            match key {
                "scenarios" => spec.scenarios = parse("scenarios")? as usize,
                "start-seed" => spec.start_seed = parse("start-seed")?,
                "threads" => spec.threads = (parse("threads")? as usize).max(1),
                other => {
                    return Err(format!(
                        "spec line {}: unknown chaos-batch key `{other}`",
                        lineno + 1
                    ))
                }
            }
        }
        if spec.scenarios == 0 || spec.scenarios > 100_000 {
            return Err("scenarios must lie in 1..=100000".into());
        }
        Ok(spec)
    }

    /// Canonical bytes for hashing, mirroring the sweep convention.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut bytes = b"gcs-chaos-batch/v1".to_vec();
        bytes.extend_from_slice(&(self.scenarios as u64).to_le_bytes());
        bytes.extend_from_slice(&self.start_seed.to_le_bytes());
        bytes.extend_from_slice(&(self.threads as u64).to_le_bytes());
        bytes
    }
}

/// A validated submission, ready to schedule.
#[derive(Debug, Clone)]
pub enum ParsedJob {
    /// Run/sweep: the expanded grid plus its dedupe plan.
    Sweep {
        /// The parsed grid (boxed: `SweepSpec` dwarfs the chaos variant).
        spec: Box<SweepSpec>,
        /// All expanded jobs, in index order.
        jobs: Vec<JobSpec>,
        /// Grouping of identical grid points.
        plan: DedupePlan,
    },
    /// A chaos batch (always a single execution unit).
    Chaos(ChaosBatchSpec),
}

/// Parses and validates a submission body for `kind`, returning the
/// parsed work and its kind-salted canonical hash.
pub fn parse_submission(kind: JobKind, body: &str) -> Result<(ParsedJob, u64), String> {
    match kind {
        JobKind::Run | JobKind::Sweep => {
            let spec = SweepSpec::parse_str(body)?;
            spec.validate()?;
            let jobs = spec.expand();
            if kind == JobKind::Run && jobs.len() != 1 {
                return Err(format!(
                    "kind=run requires a spec that expands to exactly 1 job, got {}",
                    jobs.len()
                ));
            }
            if jobs.len() > 100_000 {
                return Err(format!(
                    "spec expands to {} jobs; the daemon caps submissions at 100000",
                    jobs.len()
                ));
            }
            let digest = salted_hash(kind, &spec.canonical_bytes());
            let plan = DedupePlan::new(&jobs);
            Ok((
                ParsedJob::Sweep {
                    spec: Box::new(spec),
                    jobs,
                    plan,
                },
                digest,
            ))
        }
        JobKind::ChaosBatch => {
            let spec = ChaosBatchSpec::parse_str(body)?;
            let digest = salted_hash(kind, &spec.canonical_bytes());
            Ok((ParsedJob::Chaos(spec), digest))
        }
    }
}

/// Folds the job kind into the spec digest so different kinds over
/// byte-identical specs get distinct identities.
fn salted_hash(kind: JobKind, canonical: &[u8]) -> u64 {
    let mut salted = kind.as_str().as_bytes().to_vec();
    salted.push(0);
    salted.extend_from_slice(canonical);
    hash::digest(&salted)
}

/// Builds the job id from kind + hash — stable across processes, so
/// resubmitting a spec always addresses the same cached artifact.
pub fn job_id(kind: JobKind, hash: u64) -> String {
    format!("{}-{}", kind.as_str(), hash::hex16(hash))
}

/// The immutable result of a completed job: everything the streaming
/// endpoints serve, frozen once and shared by reference.
#[derive(Debug)]
pub struct JobArtifact {
    /// The content-addressed job id (`<kind>-<hex16>`).
    pub id: String,
    /// The job kind.
    pub kind: JobKind,
    /// Kind-salted canonical spec hash (the cache key).
    pub spec_hash: u64,
    /// One JSON line describing the job (status endpoint body).
    pub meta: String,
    /// The result stream: JSONL rows in job-index order plus the final
    /// summary line. Byte-identical across cache hits, worker counts, and
    /// subscribers.
    pub results: Vec<u8>,
    /// The per-job heartbeat stream (`gcs-heartbeat/v1` sweep records,
    /// deterministic mode).
    pub heartbeats: Vec<u8>,
    /// Flight-recorder window of the most skew-interesting execution unit
    /// (the blame endpoint's evidence). Empty when nothing was retained.
    pub window: Vec<EngineEvent>,
    /// Failed execution units.
    pub failures: usize,
    /// Grid points answered from another identical point's execution.
    pub deduped: usize,
    /// Total expanded jobs (1 for run, scenarios for chaos batches).
    pub jobs_total: usize,
}

impl JobArtifact {
    /// Approximate resident size, for the cache's byte budget.
    pub fn resident_bytes(&self) -> usize {
        self.meta.len()
            + self.results.len()
            + self.heartbeats.len()
            + self.window.len() * std::mem::size_of::<EngineEvent>()
            + self.id.len()
            + 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_kind_requires_a_single_point() {
        let (job, h) = parse_submission(JobKind::Run, "topologies = path:4\nhorizon = 5").unwrap();
        match job {
            ParsedJob::Sweep { jobs, .. } => assert_eq!(jobs.len(), 1),
            _ => panic!("run parses as a 1-job sweep"),
        }
        assert_ne!(h, 0);
        assert!(parse_submission(JobKind::Run, "seeds = 4").is_err());
    }

    #[test]
    fn kind_salts_the_identity() {
        let body = "topologies = path:4\nhorizon = 5";
        let (_, run) = parse_submission(JobKind::Run, body).unwrap();
        let (_, sweep) = parse_submission(JobKind::Sweep, body).unwrap();
        assert_ne!(run, sweep);
        assert_eq!(job_id(JobKind::Run, run), format!("run-{:016x}", run));
    }

    #[test]
    fn chaos_batch_spec_parses_and_bounds() {
        let spec =
            ChaosBatchSpec::parse_str("scenarios = 12\nstart-seed = 7\n# comment\n").unwrap();
        assert_eq!(spec.scenarios, 12);
        assert_eq!(spec.start_seed, 7);
        assert!(ChaosBatchSpec::parse_str("scenarios = 0").is_err());
        assert!(ChaosBatchSpec::parse_str("bogus = 1").is_err());
        let (_, a) = parse_submission(JobKind::ChaosBatch, "scenarios = 12").unwrap();
        let (_, b) = parse_submission(JobKind::ChaosBatch, "scenarios = 13").unwrap();
        assert_ne!(a, b);
    }
}
