//! The result cache: completed job artifacts keyed by canonical spec
//! hash, LRU-evicted under a byte budget.
//!
//! Artifacts are immutable and shared (`Arc`), so a cache hit hands every
//! subscriber the same buffer — results are written once at job completion
//! and streamed to any number of clients by offset, never duplicated.
//! Hit/miss/eviction counters feed the `/stats` endpoint and the serve
//! heartbeat stream.

use std::collections::HashMap;
use std::sync::Arc;

use crate::artifact::JobArtifact;

/// Counter snapshot for `/stats` and heartbeats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and usually went on to execute).
    pub misses: u64,
    /// Artifacts evicted to stay under the byte budget.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Bytes currently resident.
    pub bytes: usize,
    /// The configured budget, bytes.
    pub capacity: usize,
}

struct Entry {
    artifact: Arc<JobArtifact>,
    bytes: usize,
    last_used: u64,
}

/// A byte-bounded LRU over completed job artifacts.
pub struct ResultCache {
    capacity: usize,
    used: usize,
    tick: u64,
    map: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` bytes of artifacts.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up an artifact by spec hash, counting a hit or miss and
    /// refreshing recency on hit.
    pub fn get(&mut self, hash: u64) -> Option<Arc<JobArtifact>> {
        self.tick += 1;
        match self.map.get_mut(&hash) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.artifact))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching counters or recency (status endpoints).
    pub fn peek(&self, hash: u64) -> Option<Arc<JobArtifact>> {
        self.map.get(&hash).map(|e| Arc::clone(&e.artifact))
    }

    /// Inserts a completed artifact, evicting least-recently-used entries
    /// until the budget holds. An artifact larger than the whole budget is
    /// not cached at all (it still streams to its live subscribers).
    pub fn insert(&mut self, hash: u64, artifact: Arc<JobArtifact>) {
        let bytes = artifact.resident_bytes();
        if bytes > self.capacity {
            return;
        }
        if let Some(old) = self.map.remove(&hash) {
            self.used -= old.bytes;
        }
        while self.used + bytes > self.capacity {
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            let evicted = self.map.remove(&victim).expect("victim exists");
            self.used -= evicted.bytes;
            self.evictions += 1;
        }
        self.tick += 1;
        self.used += bytes;
        self.map.insert(
            hash,
            Entry {
                artifact,
                bytes,
                last_used: self.tick,
            },
        );
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.used,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::JobKind;

    fn artifact(id: &str, bytes: usize) -> Arc<JobArtifact> {
        Arc::new(JobArtifact {
            id: id.to_string(),
            kind: JobKind::Sweep,
            spec_hash: 0,
            meta: String::new(),
            results: vec![b'x'; bytes],
            heartbeats: Vec::new(),
            window: Vec::new(),
            failures: 0,
            deduped: 0,
            jobs_total: 1,
        })
    }

    #[test]
    fn lru_evicts_under_byte_pressure() {
        let mut c = ResultCache::new(2500);
        c.insert(1, artifact("a", 1000));
        c.insert(2, artifact("b", 1000));
        assert!(c.get(1).is_some(), "refresh 1 so 2 is the LRU victim");
        c.insert(3, artifact("c", 1000));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(3).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert!(s.bytes >= 2000 && s.bytes <= 2500);
    }

    #[test]
    fn oversized_artifacts_are_not_cached() {
        let mut c = ResultCache::new(100);
        c.insert(1, artifact("big", 1000));
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(5000);
        c.insert(1, artifact("a", 1000));
        c.insert(1, artifact("a2", 2000));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert!(s.bytes >= 2000 && s.bytes < 3500, "{}", s.bytes);
    }
}
