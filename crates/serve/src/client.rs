//! A small blocking HTTP/1.1 client for the daemon: the CLI, the load
//! generator, and the end-to-end tests all talk to `gcs serve` through it.
//!
//! Keep-alive by default; bodies are de-chunked transparently, so callers
//! always see the logical payload (the level at which the daemon's
//! byte-identity guarantees are stated).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response: status, headers (names lower-cased), de-framed body.
#[derive(Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Header fields in order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body after Content-Length / chunked de-framing.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of the named header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one daemon.
pub struct Client {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for the daemon at `addr` (connects lazily).
    pub fn new(addr: &str) -> Self {
        Client {
            addr: addr.to_string(),
            conn: None,
        }
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(300)))?;
            stream.set_write_timeout(Some(Duration::from_secs(300)))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the full (de-framed) response. Retries
    /// once on a fresh connection if a kept-alive one died under us.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        match self.request_once(method, path, headers, body) {
            Ok(resp) => Ok(resp),
            Err(_) => {
                self.conn = None;
                self.request_once(method, path, headers, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<Response> {
        let conn = self.connect()?;
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: gcs\r\n");
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = conn.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        let resp = read_response(conn);
        let close = match &resp {
            Err(_) => true,
            Ok(r) => r.header("connection").is_some_and(|v| v == "close"),
        };
        if close {
            self.conn = None;
        }
        resp
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, &[], &[])
    }

    /// `POST path` with a spec body and optional session header.
    pub fn post(&mut self, path: &str, session: Option<&str>, body: &str) -> io::Result<Response> {
        match session {
            Some(s) => self.request("POST", path, &[("x-session", s)], body.as_bytes()),
            None => self.request("POST", path, &[], body.as_bytes()),
        }
    }
}

fn read_response(conn: &mut BufReader<TcpStream>) -> io::Result<Response> {
    let status_line = read_line(conn)?;
    let mut parts = status_line.trim_end().splitn(3, ' ');
    let _version = parts.next().unwrap_or("");
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line {status_line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(conn)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let body = if find("transfer-encoding").is_some_and(|v| v.contains("chunked")) {
        read_chunked(conn)?
    } else if let Some(len) = find("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| bad(format!("bad content-length {len:?}")))?;
        let mut body = vec![0u8; len];
        conn.read_exact(&mut body)?;
        body
    } else {
        // No framing: read to EOF (the server closes the connection).
        let mut body = Vec::new();
        conn.read_to_end(&mut body)?;
        body
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn read_chunked(conn: &mut BufReader<TcpStream>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(conn)?;
        let size_str = size_line.trim_end().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
        if size == 0 {
            // Trailer section: read lines until the blank terminator.
            loop {
                let line = read_line(conn)?;
                if line.trim_end().is_empty() {
                    break;
                }
            }
            return Ok(body);
        }
        let at = body.len();
        body.resize(at + size, 0);
        conn.read_exact(&mut body[at..])?;
        let mut crlf = [0u8; 2];
        conn.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("chunk not terminated by CRLF".to_string()));
        }
    }
}

fn read_line(conn: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut line = String::new();
    let n = conn.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    Ok(line)
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}
