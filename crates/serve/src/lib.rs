//! The `gcs` simulation daemon: one warm process multiplexing run, sweep,
//! and chaos-batch jobs over a hand-rolled HTTP/1.1 + JSONL wire.
//!
//! Three properties make the daemon fast and safe to share:
//!
//! 1. **Spec-hash result caching** — every submission is canonically
//!    serialized and hashed ([`gcs_sweep::hash`]); a completed job freezes
//!    into an immutable [`JobArtifact`] keyed by that hash in a
//!    byte-budgeted LRU ([`ResultCache`]). Resubmitting a spec replays the
//!    frozen bytes without touching the engine.
//! 2. **Admission control** — live jobs are bounded by a watermark; past
//!    it the daemon sheds load with `429` + `Retry-After` instead of
//!    queueing unboundedly, and a per-session round-robin ring keeps one
//!    client's 10k-job sweep from starving interactive runs.
//! 3. **Zero-copy streaming** — results are written once into a per-job
//!    buffer and streamed to any number of subscribers by offset; cache
//!    hits hand out the same `Arc`'d artifact.
//!
//! Responses for the same spec are byte-identical (at the de-chunked body
//! level) across cache hit vs miss, worker counts, and concurrent
//! subscribers — the wire inherits the sweep layer's determinism
//! guarantee.
//!
//! Entry points: [`ServerHandle::spawn`] for embedding (tests, the CLI),
//! [`client::Client`] for talking to a daemon.

#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod client;
pub mod sched;
pub mod server;
pub mod wire;

pub use artifact::{job_id, parse_submission, ChaosBatchSpec, JobArtifact, JobKind, ParsedJob};
pub use cache::{CacheStats, ResultCache};
pub use client::{Client, Response};
pub use sched::{LiveJob, Resolved, Scheduler, ServeConfig, Submission};

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running daemon: the scheduler plus the accept-loop thread.
pub struct ServerHandle {
    sched: Arc<Scheduler>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `cfg.addr` (port 0 picks a free port), starts the worker
    /// pool, and spawns the accept loop.
    pub fn spawn(cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let sched = Scheduler::start(cfg);
        let accept_sched = Arc::clone(&sched);
        let accept = std::thread::Builder::new()
            .name("gcs-serve-accept".to_string())
            .spawn(move || server::accept_loop(&listener, &accept_sched))?;
        Ok(ServerHandle {
            sched,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler, for in-process submission and stats.
    pub fn sched(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Blocks until the daemon shuts down (a client POSTed `/v1/shutdown`,
    /// or [`ServerHandle::shutdown`] ran from another thread).
    pub fn join(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.sched.join();
    }

    /// Graceful shutdown: stops admission, completes nothing further,
    /// wakes all streams, and joins every thread.
    pub fn shutdown(&mut self) {
        self.sched.shutdown();
        // The accept loop blocks in accept(); poke it so it re-checks.
        let _ = TcpStream::connect(self.addr);
        self.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "topologies = path:5\nseeds = 0..4\nhorizon = 15";

    #[test]
    fn end_to_end_submit_stream_and_cache() {
        let mut server = ServerHandle::spawn(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_live: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr().to_string();
        let mut client = Client::new(&addr);

        // Cold submission, waiting for the full result stream.
        let cold = client
            .post("/v1/jobs?kind=sweep&wait=1", Some("s1"), SPEC)
            .unwrap();
        assert_eq!(cold.status, 200);
        let cold_body = cold.body.clone();
        assert!(!cold_body.is_empty());
        let text = cold.text();
        assert!(
            text.lines()
                .last()
                .unwrap()
                .contains("\"kind\":\"summary\""),
            "{text}"
        );

        // Hot resubmission: byte-identical body, served from the cache.
        let hot = client
            .post("/v1/jobs?kind=sweep&wait=1", Some("s2"), SPEC)
            .unwrap();
        assert_eq!(hot.status, 200);
        assert_eq!(hot.body, cold_body, "cache hit must replay identical bytes");

        // Status + results endpoints agree with the submit-time stream.
        let submit = client
            .post("/v1/jobs?kind=sweep", Some("s1"), SPEC)
            .unwrap();
        assert_eq!(submit.status, 200, "{}", submit.text());
        assert_eq!(submit.header("x-gcs-cache"), Some("hit"));
        let id = submit.header("x-gcs-job").unwrap().to_string();
        let results = client.get(&format!("/v1/jobs/{id}/results")).unwrap();
        assert_eq!(results.body, cold_body);
        let status = client.get(&format!("/v1/jobs/{id}")).unwrap();
        assert!(status.text().contains("\"status\":\"done\""));

        // Stats reflect the two hits.
        let stats = client.get("/stats").unwrap();
        assert!(
            stats.text().contains("\"cache_hits\":2"),
            "{}",
            stats.text()
        );

        // Unknown id is a clean 404.
        let missing = client.get("/v1/jobs/sweep-0000000000000000").unwrap();
        assert_eq!(missing.status, 404);

        server.shutdown();
    }

    #[test]
    fn malformed_spec_is_a_400_not_a_crash() {
        let mut server = ServerHandle::spawn(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = Client::new(&server.addr().to_string());
        let resp = client
            .post("/v1/jobs?kind=sweep", None, "not a spec at all")
            .unwrap();
        assert_eq!(resp.status, 400);
        let resp = client.post("/v1/jobs?kind=bogus", None, SPEC).unwrap();
        assert_eq!(resp.status, 400);
        // The daemon still serves after the bad requests.
        let stats = client.get("/stats").unwrap();
        assert_eq!(stats.status, 200);
        server.shutdown();
    }
}
