//! The daemon's scheduler: admission control, per-session fair queueing,
//! worker threads, live-job streaming state, and artifact freezing.
//!
//! # Lifecycle of a job
//!
//! A submission is parsed and canonically hashed ([`crate::artifact`]); the
//! hash is checked against the result cache (hit ⇒ the frozen artifact is
//! returned immediately, no execution) and against the live-job map (same
//! id in flight ⇒ the caller attaches to the running job). A genuinely new
//! job is admitted only below the live-job watermark — past it the daemon
//! sheds load with a `429` + `Retry-After` estimate instead of queueing
//! unboundedly.
//!
//! An admitted job is split into *execution units* (one per unique grid
//! point after dedupe; one for a chaos batch) that are queued per session
//! and drained round-robin across sessions, so one client's 10k-job sweep
//! cannot starve another client's interactive run: each worker pass takes
//! one unit from the next session in the ring.
//!
//! # Determinism
//!
//! Units complete in arbitrary order, but results are emitted in original
//! job-index order behind a watermark (the same discipline as
//! [`gcs_sweep::run_sweep_deduped`]), and per-job heartbeats fire at fixed
//! job-count thresholds — so the result and heartbeat streams are
//! byte-identical across worker counts, cache hits vs misses, and
//! subscriber counts.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcs_sim::EngineEvent;
use gcs_sweep::report::{jsonl_row, jsonl_summary};
use gcs_sweep::{run_job_full, JobOutcome, JobResult, JobSpec, SweepAggregate};
use gcs_telemetry::HeartbeatEmitter;

use crate::artifact::{job_id, ChaosBatchSpec, JobArtifact, JobKind, ParsedJob};
use crate::cache::{CacheStats, ResultCache};

/// Daemon configuration (the `gcs serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing jobs (`0` ⇒ available parallelism).
    pub workers: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Admission watermark: at this many live (queued or running) jobs,
    /// new submissions are rejected with `429` until the backlog drains.
    pub max_live: usize,
    /// Directory receiving per-job flight-recorder dump subdirectories.
    pub dump_dir: PathBuf,
    /// Zero the wall-clock fields in heartbeat streams so responses are
    /// byte-reproducible (the default; live deployments may disable it).
    pub deterministic: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7431".to_string(),
            workers: 0,
            cache_bytes: 64 << 20,
            max_live: 64,
            dump_dir: PathBuf::from("dumps"),
            deterministic: true,
        }
    }
}

impl ServeConfig {
    /// The worker-thread count after resolving `0` ⇒ available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Per-job heartbeat cadence: beat once per this fraction of the grid, so
/// even a 100k-job sweep emits a bounded stream.
const BEATS_PER_JOB: usize = 64;

/// At most this many flight-recorder dumps per job, bounding disk use when
/// a whole sweep trips the watchdog.
const MAX_DUMPS_PER_JOB: usize = 32;

/// A `Write` adapter over a shared byte buffer, letting the heartbeat
/// emitter append while streaming subscribers read. Always accessed under
/// the owning job's state lock, so the inner lock never contends.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Blame-window retention rank: tripped/panicked units beat clean ones,
/// then higher local skew, then lower job index. The maximum under this
/// order is unique per job, so the retained window is independent of unit
/// completion order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Rank {
    class: u8,
    skew: f64,
    index: usize,
}

impl Rank {
    fn better_than(&self, other: Option<&Rank>) -> bool {
        let Some(o) = other else { return true };
        match self.class.cmp(&o.class) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => match self.skew.total_cmp(&o.skew) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => self.index < o.index,
            },
        }
    }
}

/// Mutable state of an in-flight job, guarded by [`LiveJob::state`].
struct LiveState {
    done: bool,
    units_done: usize,
    orig_wm: usize,
    unique_outcomes: Vec<Option<JobOutcome<JobResult>>>,
    results: Vec<u8>,
    hb: HeartbeatEmitter<SharedBuf>,
    hb_buf: SharedBuf,
    agg: SweepAggregate,
    events_total: u64,
    window: Vec<EngineEvent>,
    window_rank: Option<Rank>,
    dumps: Vec<(usize, String)>,
    note: Option<String>,
}

/// An admitted job: immutable identity plus streaming state.
pub struct LiveJob {
    /// Content-addressed job id (`<kind>-<hex16>`).
    pub id: String,
    /// The job kind.
    pub kind: JobKind,
    /// Kind-salted canonical spec hash.
    pub hash: u64,
    /// Owning session (from the `X-Session` header).
    pub session: String,
    /// The parsed work.
    pub work: ParsedJob,
    state: Mutex<LiveState>,
    cv: Condvar,
}

impl LiveJob {
    /// Total expanded jobs (grid points, or chaos scenarios).
    pub fn jobs_total(&self) -> usize {
        match &self.work {
            ParsedJob::Sweep { jobs, .. } => jobs.len(),
            ParsedJob::Chaos(spec) => spec.scenarios,
        }
    }

    /// Execution units after dedupe (chaos batches are one unit).
    pub fn units_total(&self) -> usize {
        match &self.work {
            ParsedJob::Sweep { plan, .. } => plan.unique().len(),
            ParsedJob::Chaos(_) => 1,
        }
    }

    /// Grid points answered by an identical point's execution.
    pub fn deduped(&self) -> usize {
        match &self.work {
            ParsedJob::Sweep { plan, .. } => plan.duplicates(),
            ParsedJob::Chaos(_) => 0,
        }
    }

    /// Blocks until the result stream grows past `offset`, the job
    /// completes, or `timeout` elapses; returns the new bytes (possibly
    /// empty on timeout) and whether the job is done.
    pub fn wait_results(&self, offset: usize, timeout: Duration) -> (Vec<u8>, bool) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.results.len() > offset || st.done {
                let from = offset.min(st.results.len());
                return (st.results[from..].to_vec(), st.done);
            }
            let (guard, wait) = self.cv.wait_timeout(st, timeout).unwrap();
            st = guard;
            if wait.timed_out() {
                let from = offset.min(st.results.len());
                return (st.results[from..].to_vec(), st.done);
            }
        }
    }

    /// Like [`LiveJob::wait_results`] for the per-job heartbeat stream.
    pub fn wait_heartbeats(&self, offset: usize, timeout: Duration) -> (Vec<u8>, bool) {
        let mut st = self.state.lock().unwrap();
        loop {
            let len = st.hb_buf.0.lock().unwrap().len();
            if len > offset || st.done {
                let buf = st.hb_buf.0.lock().unwrap();
                let from = offset.min(buf.len());
                return (buf[from..].to_vec(), st.done);
            }
            let (guard, wait) = self.cv.wait_timeout(st, timeout).unwrap();
            st = guard;
            if wait.timed_out() {
                let buf = st.hb_buf.0.lock().unwrap();
                let from = offset.min(buf.len());
                return (buf[from..].to_vec(), st.done);
            }
        }
    }

    /// One JSON line describing the job's current progress (the status
    /// endpoint body for live jobs; frozen verbatim into the artifact at
    /// completion, with `"status":"done"`).
    pub fn meta_json(&self) -> String {
        let st = self.state.lock().unwrap();
        let status = if st.done {
            "done"
        } else if st.units_done > 0 || st.orig_wm > 0 {
            "running"
        } else {
            "queued"
        };
        meta_line(
            &self.id,
            self.kind,
            status,
            &self.session,
            self.jobs_total(),
            self.deduped(),
            self.units_total(),
            st.units_done,
            st.orig_wm,
            st.agg.failed,
            st.agg.watchdog_trips,
            &st.dumps,
            st.note.as_deref(),
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn meta_line(
    id: &str,
    kind: JobKind,
    status: &str,
    session: &str,
    jobs_total: usize,
    deduped: usize,
    units_total: usize,
    units_done: usize,
    jobs_done: usize,
    failures: usize,
    trips: usize,
    dumps: &[(usize, String)],
    note: Option<&str>,
) -> String {
    let mut line = format!(
        "{{\"schema\":\"gcs-serve-job/v1\",\"id\":\"{id}\",\"kind\":\"{}\",\
         \"status\":\"{status}\",\"session\":\"{}\",\"jobs_total\":{jobs_total},\
         \"deduped\":{deduped},\"units_total\":{units_total},\"units_done\":{units_done},\
         \"jobs_done\":{jobs_done},\"failures\":{failures},\"watchdog_trips\":{trips},\
         \"dumps\":[",
        kind.as_str(),
        json_escape(session),
    );
    for (i, (_, path)) in dumps.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        line.push_str(&json_escape(path));
        line.push('"');
    }
    line.push(']');
    if let Some(note) = note {
        line.push_str(",\"note\":\"");
        line.push_str(&json_escape(note));
        line.push('"');
    }
    line.push_str("}\n");
    line
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One schedulable slice of a job.
struct Unit {
    job: Arc<LiveJob>,
    unit: usize,
}

/// State behind the scheduler's main lock.
struct SchedInner {
    live: HashMap<String, Arc<LiveJob>>,
    pending: HashMap<String, VecDeque<Unit>>,
    ring: VecDeque<String>,
    pending_units: usize,
    running_units: usize,
    shutdown: bool,
}

/// Monotonic counters for `/stats` and the serve heartbeat stream.
#[derive(Default)]
pub struct Counters {
    /// Jobs admitted for execution.
    pub submitted: AtomicU64,
    /// Submissions that attached to an already-live identical job.
    pub attached: AtomicU64,
    /// Jobs completed and frozen.
    pub completed: AtomicU64,
    /// Submissions shed by admission control.
    pub rejected: AtomicU64,
    /// Execution units that failed or panicked.
    pub failed_units: AtomicU64,
}

/// A bounded, offset-addressed append log for the server-wide heartbeat
/// stream. Old lines are trimmed from the front at line boundaries; the
/// logical offset keeps growing, and readers behind the trim point are
/// clamped forward (they lose lines, never see torn ones).
pub struct OffsetBuf {
    base: u64,
    data: Vec<u8>,
    cap: usize,
}

impl OffsetBuf {
    fn new(cap: usize) -> Self {
        OffsetBuf {
            base: 0,
            data: Vec::new(),
            cap,
        }
    }

    fn append(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
        if self.data.len() > self.cap {
            let target = self.data.len() - self.cap / 2;
            let cut = self.data[target..]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(self.data.len(), |p| target + p + 1);
            self.data.drain(..cut);
            self.base += cut as u64;
        }
    }

    /// Bytes at logical `offset` (clamped to the oldest retained line) and
    /// the offset just past them.
    pub fn read_from(&self, offset: u64) -> (u64, Vec<u8>) {
        let from = offset
            .max(self.base)
            .min(self.base + self.data.len() as u64);
        let at = (from - self.base) as usize;
        (self.base + self.data.len() as u64, self.data[at..].to_vec())
    }

    /// The offset just past the newest byte.
    pub fn end(&self) -> u64 {
        self.base + self.data.len() as u64
    }
}

/// What a submission resolved to.
pub enum Submission {
    /// Served from the result cache; no execution.
    Cached(Arc<JobArtifact>),
    /// An identical job is already in flight; the caller attached to it.
    Attached(Arc<LiveJob>),
    /// Admitted and queued.
    Accepted(Arc<LiveJob>),
    /// Shed by admission control; retry after the given seconds.
    Rejected {
        /// Suggested `Retry-After` seconds.
        retry_after: u64,
    },
}

/// A lookup by job id.
pub enum Resolved {
    /// Still executing (or queued).
    Live(Arc<LiveJob>),
    /// Completed and cached.
    Done(Arc<JobArtifact>),
    /// Unknown or evicted.
    Missing,
}

/// The daemon scheduler. One instance per server, shared by the accept
/// loop and the worker threads.
pub struct Scheduler {
    /// The daemon configuration.
    pub cfg: ServeConfig,
    inner: Mutex<SchedInner>,
    work_cv: Condvar,
    cache: Mutex<ResultCache>,
    /// Monotonic event counters.
    pub counters: Counters,
    serve_hb: Mutex<OffsetBuf>,
    hb_cv: Condvar,
    hb_seq: AtomicU64,
    ewma_unit_ms: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
}

impl Scheduler {
    /// Builds the scheduler and spawns its worker threads.
    pub fn start(cfg: ServeConfig) -> Arc<Self> {
        let sched = Arc::new(Scheduler {
            inner: Mutex::new(SchedInner {
                live: HashMap::new(),
                pending: HashMap::new(),
                ring: VecDeque::new(),
                pending_units: 0,
                running_units: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            cache: Mutex::new(ResultCache::new(cfg.cache_bytes)),
            counters: Counters::default(),
            serve_hb: Mutex::new(OffsetBuf::new(1 << 20)),
            hb_cv: Condvar::new(),
            hb_seq: AtomicU64::new(0),
            ewma_unit_ms: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            started: Instant::now(),
            cfg,
        });
        let k = sched.cfg.effective_workers();
        let mut handles = sched.workers.lock().unwrap();
        for i in 0..k {
            let s = Arc::clone(&sched);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gcs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn worker"),
            );
        }
        drop(handles);
        sched
    }

    /// Parses, caches, admits, and queues a submission. `Err` is a 400
    /// (malformed spec).
    pub fn submit(&self, kind: JobKind, body: &str, session: &str) -> Result<Submission, String> {
        let (work, hash) = crate::artifact::parse_submission(kind, body)?;
        let id = job_id(kind, hash);
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Err("daemon is shutting down".to_string());
        }
        if let Some(job) = inner.live.get(&id) {
            let job = Arc::clone(job);
            drop(inner);
            self.counters.attached.fetch_add(1, Ordering::Relaxed);
            self.emit_serve_event("attached", &id);
            return Ok(Submission::Attached(job));
        }
        // Bind the lookup before testing it: `if let` over a temporary
        // guard would keep the cache locked across emit_serve_event's
        // re-lock below — a same-thread deadlock.
        let cached = self.cache.lock().unwrap().get(hash);
        if let Some(artifact) = cached {
            drop(inner);
            self.emit_serve_event("hit", &id);
            return Ok(Submission::Cached(artifact));
        }
        if inner.live.len() >= self.cfg.max_live {
            let retry = self.retry_after_estimate(inner.pending_units, inner.running_units);
            drop(inner);
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.emit_serve_event("rejected", &id);
            return Ok(Submission::Rejected { retry_after: retry });
        }
        let job = self.admit(&mut inner, id, kind, hash, session, work);
        drop(inner);
        self.work_cv.notify_all();
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.emit_serve_event("submitted", &job.id);
        Ok(Submission::Accepted(job))
    }

    fn admit(
        &self,
        inner: &mut SchedInner,
        id: String,
        kind: JobKind,
        hash: u64,
        session: &str,
        work: ParsedJob,
    ) -> Arc<LiveJob> {
        let units_total = match &work {
            ParsedJob::Sweep { plan, .. } => plan.unique().len(),
            ParsedJob::Chaos(_) => 1,
        };
        let hb_buf = SharedBuf::default();
        let job = Arc::new(LiveJob {
            id: id.clone(),
            kind,
            hash,
            session: session.to_string(),
            work,
            state: Mutex::new(LiveState {
                done: false,
                units_done: 0,
                orig_wm: 0,
                unique_outcomes: vec![None; units_total],
                results: Vec::new(),
                hb: HeartbeatEmitter::new(hb_buf.clone(), 1.0, 0.0, self.cfg.deterministic),
                hb_buf,
                agg: SweepAggregate::new(),
                events_total: 0,
                window: Vec::new(),
                window_rank: None,
                dumps: Vec::new(),
                note: None,
            }),
            cv: Condvar::new(),
        });
        inner.live.insert(id, Arc::clone(&job));
        let queue = inner.pending.entry(job.session.clone()).or_default();
        let was_empty = queue.is_empty();
        for unit in 0..units_total {
            queue.push_back(Unit {
                job: Arc::clone(&job),
                unit,
            });
        }
        inner.pending_units += units_total;
        if was_empty {
            inner.ring.push_back(job.session.clone());
        }
        job
    }

    /// Looks a job up by id: live map first, then the result cache.
    pub fn resolve(&self, id: &str) -> Resolved {
        {
            let inner = self.inner.lock().unwrap();
            if let Some(job) = inner.live.get(id) {
                return Resolved::Live(Arc::clone(job));
            }
        }
        let Some(hash) = hash_of_id(id) else {
            return Resolved::Missing;
        };
        match self.cache.lock().unwrap().peek(hash) {
            Some(artifact) if artifact.id == id => Resolved::Done(artifact),
            _ => Resolved::Missing,
        }
    }

    /// Suggested `Retry-After` seconds from the backlog size and the
    /// per-unit wall-time EWMA.
    fn retry_after_estimate(&self, pending: usize, running: usize) -> u64 {
        let ewma_ms = f64::from_bits(self.ewma_unit_ms.load(Ordering::Relaxed));
        if ewma_ms <= 0.0 {
            return 1;
        }
        let workers = self.cfg.effective_workers().max(1);
        let secs = ((pending + running + 1) as f64 * ewma_ms / 1e3 / workers as f64).ceil();
        (secs as u64).clamp(1, 120)
    }

    /// The `/stats` body: counters, backlog, and cache snapshot.
    pub fn stats_json(&self) -> String {
        let (live, pending, running) = {
            let inner = self.inner.lock().unwrap();
            (inner.live.len(), inner.pending_units, inner.running_units)
        };
        let cache = self.cache_stats();
        format!(
            "{{\"schema\":\"gcs-serve-stats/v1\",\"live_jobs\":{live},\
             \"pending_units\":{pending},\"running_units\":{running},\
             \"workers\":{},\"max_live\":{},\"submitted\":{},\"attached\":{},\
             \"completed\":{},\"rejected\":{},\"failed_units\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_entries\":{},\"cache_bytes\":{},\"cache_capacity\":{},\
             \"uptime_s\":{}}}\n",
            self.cfg.effective_workers(),
            self.cfg.max_live,
            self.counters.submitted.load(Ordering::Relaxed),
            self.counters.attached.load(Ordering::Relaxed),
            self.counters.completed.load(Ordering::Relaxed),
            self.counters.rejected.load(Ordering::Relaxed),
            self.counters.failed_units.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.entries,
            cache.bytes,
            cache.capacity,
            if self.cfg.deterministic {
                0
            } else {
                self.started.elapsed().as_secs()
            },
        )
    }

    /// Current cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Appends one line to the server-wide heartbeat stream.
    fn emit_serve_event(&self, event: &str, job: &str) {
        let (live, pending, running) = {
            let inner = self.inner.lock().unwrap();
            (inner.live.len(), inner.pending_units, inner.running_units)
        };
        let cache = self.cache_stats();
        let seq = self.hb_seq.fetch_add(1, Ordering::Relaxed);
        let line = format!(
            "{{\"schema\":\"gcs-serve-heartbeat/v1\",\"seq\":{seq},\
             \"event\":\"{event}\",\"job\":\"{}\",\"live_jobs\":{live},\
             \"pending_units\":{pending},\"running_units\":{running},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_entries\":{},\"cache_bytes\":{}}}\n",
            json_escape(job),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.entries,
            cache.bytes,
        );
        self.serve_hb.lock().unwrap().append(line.as_bytes());
        self.hb_cv.notify_all();
    }

    /// Blocks until the server heartbeat stream grows past `offset` or
    /// `timeout` elapses; returns the new bytes, the next offset, and
    /// whether the daemon is shutting down.
    pub fn wait_serve_heartbeats(&self, offset: u64, timeout: Duration) -> (Vec<u8>, u64, bool) {
        let mut hb = self.serve_hb.lock().unwrap();
        loop {
            if hb.end() > offset || self.is_shutdown() {
                let (next, bytes) = hb.read_from(offset);
                return (bytes, next, self.is_shutdown());
            }
            let (guard, wait) = self.hb_cv.wait_timeout(hb, timeout).unwrap();
            hb = guard;
            if wait.timed_out() {
                let (next, bytes) = hb.read_from(offset);
                return (bytes, next, self.is_shutdown());
            }
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.inner.lock().unwrap().shutdown
    }

    /// Requests shutdown: workers exit after their current unit, and every
    /// live job is marked done (with a note) so streaming subscribers
    /// drain instead of hanging.
    pub fn shutdown(&self) {
        let jobs: Vec<Arc<LiveJob>> = {
            let mut inner = self.inner.lock().unwrap();
            inner.shutdown = true;
            inner.pending.clear();
            inner.ring.clear();
            inner.pending_units = 0;
            inner.live.values().cloned().collect()
        };
        self.work_cv.notify_all();
        self.hb_cv.notify_all();
        for job in jobs {
            let mut st = job.state.lock().unwrap();
            if !st.done {
                st.done = true;
                st.note = Some("daemon shut down before completion".to_string());
            }
            drop(st);
            job.cv.notify_all();
        }
    }

    /// Joins the worker threads (call after [`Scheduler::shutdown`]).
    pub fn join(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn hash_of_id(id: &str) -> Option<u64> {
    let (_, hex) = id.rsplit_once('-')?;
    u64::from_str_radix(hex, 16).ok()
}

fn pop_next(inner: &mut SchedInner) -> Option<Unit> {
    while let Some(session) = inner.ring.pop_front() {
        let Some(queue) = inner.pending.get_mut(&session) else {
            continue;
        };
        let unit = queue.pop_front();
        if queue.is_empty() {
            inner.pending.remove(&session);
        } else {
            inner.ring.push_back(session);
        }
        if let Some(unit) = unit {
            inner.pending_units -= 1;
            inner.running_units += 1;
            return Some(unit);
        }
    }
    None
}

fn worker_loop(sched: &Arc<Scheduler>) {
    loop {
        let unit = {
            let mut inner = sched.inner.lock().unwrap();
            loop {
                if inner.shutdown {
                    return;
                }
                if let Some(unit) = pop_next(&mut inner) {
                    break unit;
                }
                inner = sched.work_cv.wait(inner).unwrap();
            }
        };
        let t0 = Instant::now();
        execute_unit(sched, &unit);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let old = f64::from_bits(sched.ewma_unit_ms.load(Ordering::Relaxed));
        let new = if old <= 0.0 {
            wall_ms
        } else {
            old * 0.9 + wall_ms * 0.1
        };
        sched.ewma_unit_ms.store(new.to_bits(), Ordering::Relaxed);
        sched.inner.lock().unwrap().running_units -= 1;
    }
}

fn execute_unit(sched: &Arc<Scheduler>, unit: &Unit) {
    match &unit.job.work {
        ParsedJob::Sweep { jobs, plan, .. } => {
            let orig = plan.unique()[unit.unit];
            execute_sweep_unit(sched, unit, &jobs[orig], orig);
        }
        ParsedJob::Chaos(spec) => execute_chaos_batch(sched, &unit.job, spec),
    }
}

fn execute_sweep_unit(sched: &Arc<Scheduler>, unit: &Unit, spec: &JobSpec, orig: usize) {
    let execution = run_job_full(spec);
    let outcome = match &execution.outcome {
        Ok(result) => JobOutcome::Completed(result.clone()),
        Err(message) => JobOutcome::Failed(message.clone()),
    };
    if matches!(outcome, JobOutcome::Failed(_)) || execution.panicked {
        sched.counters.failed_units.fetch_add(1, Ordering::Relaxed);
    }

    // Post-mortem dump: a tripped watchdog or a caught panic writes the
    // recorder window under dumps/<job-id>/ before the outcome is recorded.
    let mut dump: Option<(usize, String)> = None;
    let mut window: Option<Vec<EngineEvent>> = None;
    if execution.tripped || execution.panicked {
        let events = execution.recorder.window_events();
        let over_cap = {
            let st = unit.job.state.lock().unwrap();
            st.dumps.len() >= MAX_DUMPS_PER_JOB
        };
        if !over_cap {
            let reason = if execution.panicked { "panic" } else { "trip" };
            let dir = sched.cfg.dump_dir.join(&unit.job.id);
            let path = dir.join(format!("recorder-{reason}-job{orig}.jsonl"));
            if write_dump(&dir, &path, &events).is_ok() {
                dump = Some((orig, path.display().to_string()));
            }
        }
        window = Some(events);
    }

    // Blame-window retention: decode only when this unit can win.
    let rank = Rank {
        class: if execution.tripped || execution.panicked {
            2
        } else {
            1
        },
        skew: execution.outcome.as_ref().map_or(0.0, |r| r.local_skew),
        index: orig,
    };
    let candidate = {
        let st = unit.job.state.lock().unwrap();
        rank.better_than(st.window_rank.as_ref())
    };
    let window = if candidate {
        Some(window.unwrap_or_else(|| execution.recorder.window_events()))
    } else {
        None
    };

    record_sweep_outcome(sched, &unit.job, unit.unit, outcome, rank, window, dump);
}

fn write_dump(
    dir: &std::path::Path,
    path: &std::path::Path,
    events: &[EngineEvent],
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut out = std::io::BufWriter::new(fs::File::create(path)?);
    for event in events {
        writeln!(out, "{}", gcs_analysis::encode_event(event))?;
    }
    out.flush()
}

/// Folds one completed unit into the job state: advances the original-order
/// watermark, appends result rows and threshold heartbeats, retains the
/// best blame window, and freezes the artifact when the job completes.
fn record_sweep_outcome(
    sched: &Arc<Scheduler>,
    job: &Arc<LiveJob>,
    unit: usize,
    outcome: JobOutcome<JobResult>,
    rank: Rank,
    window: Option<Vec<EngineEvent>>,
    dump: Option<(usize, String)>,
) {
    let ParsedJob::Sweep { jobs, plan, .. } = &job.work else {
        unreachable!("sweep outcome for chaos job");
    };
    let jobs_total = jobs.len();
    let hb_every = (jobs_total / BEATS_PER_JOB).max(1);
    let finished = {
        let mut st = job.state.lock().unwrap();
        if st.done {
            return; // shutdown raced this unit; drop it
        }
        st.unique_outcomes[unit] = Some(outcome);
        if let Some(events) = window {
            if rank.better_than(st.window_rank.as_ref()) {
                st.window = events;
                st.window_rank = Some(rank);
            }
        }
        if let Some(entry) = dump {
            st.dumps.push(entry);
            st.dumps.sort();
        }
        st.units_done += 1;
        while st.orig_wm < jobs_total {
            let rep = plan.rep_of(st.orig_wm);
            let Some(ready) = st.unique_outcomes[rep].clone() else {
                break;
            };
            let j = st.orig_wm;
            st.agg.ingest(j, &ready);
            if let JobOutcome::Completed(r) = &ready {
                st.events_total += r.events_recorded;
            }
            let mut row = jsonl_row(&jobs[j], &ready);
            row.push('\n');
            st.results.extend_from_slice(row.as_bytes());
            st.orig_wm = j + 1;
            if st.orig_wm.is_multiple_of(hb_every) || st.orig_wm == jobs_total {
                let label = jobs[j].label();
                let (done, total, events) = (st.orig_wm as u64, jobs_total as u64, st.events_total);
                let session = job.session.clone();
                let _ = st
                    .hb
                    .sweep_beat_session(done, total, events, &label, Some(&session));
            }
        }
        let finished = st.orig_wm == jobs_total;
        if finished {
            let mut summary = jsonl_summary(&st.agg);
            summary.push('\n');
            st.results.extend_from_slice(summary.as_bytes());
        }
        job.cv.notify_all();
        finished
    };
    if finished {
        finalize(sched, job);
    }
}

fn execute_chaos_batch(sched: &Arc<Scheduler>, job: &Arc<LiveJob>, spec: &ChaosBatchSpec) {
    let cfg = gcs_chaos::BatchConfig {
        scenarios: spec.scenarios,
        start_seed: spec.start_seed,
        // One scenario at a time inside the unit: the scheduler's workers
        // already own the cores, and workers=1 keeps the summary's finding
        // order deterministic regardless of daemon parallelism.
        workers: 1,
        threads: spec.threads,
        shrink: false,
    };
    let summary = gcs_chaos::run_batch(&cfg);
    let mut results = Vec::new();
    for finding in &summary.findings {
        let line = format!(
            "{{\"kind\":\"finding\",\"seed\":{},\"violation\":\"{}\"}}\n",
            finding.seed,
            json_escape(&finding.kind),
        );
        results.extend_from_slice(line.as_bytes());
    }
    for (seed, message) in &summary.failed {
        let line = format!(
            "{{\"kind\":\"failed\",\"seed\":{seed},\"error\":\"{}\"}}\n",
            json_escape(message),
        );
        results.extend_from_slice(line.as_bytes());
    }
    let line = format!(
        "{{\"kind\":\"summary\",\"scenarios\":{},\"clean\":{},\
         \"expected_violations\":{},\"findings\":{},\"failed\":{}}}\n",
        summary.scenarios,
        summary.clean,
        summary.expected_violations,
        summary.findings.len(),
        summary.failed.len(),
    );
    results.extend_from_slice(line.as_bytes());
    if !summary.failed.is_empty() {
        sched
            .counters
            .failed_units
            .fetch_add(summary.failed.len() as u64, Ordering::Relaxed);
    }
    {
        let mut st = job.state.lock().unwrap();
        if st.done {
            return;
        }
        st.results = results;
        st.units_done = 1;
        st.orig_wm = spec.scenarios;
        st.agg.failed = summary.failed.len();
        st.agg.watchdog_trips = summary.findings.len();
        let label = format!(
            "chaos-batch scenarios={} start-seed={}",
            spec.scenarios, spec.start_seed
        );
        let session = job.session.clone();
        let _ = st.hb.sweep_beat_session(
            spec.scenarios as u64,
            spec.scenarios as u64,
            0,
            &label,
            Some(&session),
        );
        job.cv.notify_all();
    }
    finalize(sched, job);
}

/// Freezes a completed job into an immutable artifact, inserts it into the
/// result cache, retires the live entry, and wakes subscribers.
fn finalize(sched: &Arc<Scheduler>, job: &Arc<LiveJob>) {
    let artifact = {
        let st = job.state.lock().unwrap();
        let meta = meta_line(
            &job.id,
            job.kind,
            "done",
            &job.session,
            job.jobs_total(),
            job.deduped(),
            job.units_total(),
            st.units_done,
            st.orig_wm,
            st.agg.failed,
            st.agg.watchdog_trips,
            &st.dumps,
            None,
        );
        let heartbeats = st.hb_buf.0.lock().unwrap().clone();
        Arc::new(JobArtifact {
            id: job.id.clone(),
            kind: job.kind,
            spec_hash: job.hash,
            meta,
            results: st.results.clone(),
            heartbeats,
            window: st.window.clone(),
            failures: st.agg.failed,
            deduped: job.deduped(),
            jobs_total: job.jobs_total(),
        })
    };
    sched.inner.lock().unwrap().live.remove(&job.id);
    sched.cache.lock().unwrap().insert(job.hash, artifact);
    sched.counters.completed.fetch_add(1, Ordering::Relaxed);
    {
        let mut st = job.state.lock().unwrap();
        st.done = true;
    }
    job.cv.notify_all();
    sched.emit_serve_event("completed", &job.id);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(workers: usize, max_live: usize) -> ServeConfig {
        ServeConfig {
            workers,
            max_live,
            cache_bytes: 8 << 20,
            dump_dir: std::env::temp_dir().join(format!(
                "gcs-serve-sched-test-{}-{workers}-{max_live}",
                std::process::id()
            )),
            ..ServeConfig::default()
        }
    }

    const SPEC: &str = "topologies = path:6\nseeds = 0..6\nhorizon = 20";

    fn drain(job: &Arc<LiveJob>) -> Vec<u8> {
        let mut out = Vec::new();
        loop {
            let (bytes, done) = job.wait_results(out.len(), Duration::from_secs(30));
            out.extend_from_slice(&bytes);
            // The result stream is complete before `done` is set, so a
            // read that observes `done` has already seen every byte.
            if done {
                return out;
            }
        }
    }

    fn run_to_artifact(sched: &Arc<Scheduler>, spec: &str) -> (Vec<u8>, Vec<u8>) {
        match sched.submit(JobKind::Sweep, spec, "test").unwrap() {
            Submission::Accepted(job) => {
                let results = drain(&job);
                let (hb, _) = job.wait_heartbeats(0, Duration::from_secs(1));
                (results, hb)
            }
            Submission::Cached(a) => (a.results.clone(), a.heartbeats.clone()),
            _ => panic!("unexpected submission"),
        }
    }

    #[test]
    fn results_byte_identical_across_workers_and_cache() {
        let s1 = Scheduler::start(config(1, 8));
        let s3 = Scheduler::start(config(3, 8));
        let (cold1, hb1) = run_to_artifact(&s1, SPEC);
        let (cold3, hb3) = run_to_artifact(&s3, SPEC);
        assert!(!cold1.is_empty());
        assert_eq!(cold1, cold3, "results differ across worker counts");
        assert_eq!(hb1, hb3, "heartbeats differ across worker counts");
        // Resubmission is a cache hit with byte-identical payloads.
        match s1.submit(JobKind::Sweep, SPEC, "other").unwrap() {
            Submission::Cached(a) => {
                assert_eq!(a.results, cold1);
                assert_eq!(a.heartbeats, hb1);
            }
            _ => panic!("expected a cache hit"),
        }
        assert_eq!(s1.cache_stats().hits, 1);
        assert_eq!(s1.cache_stats().misses, 1);
        s1.shutdown();
        s3.shutdown();
        s1.join();
        s3.join();
    }

    #[test]
    fn admission_rejects_past_watermark_and_recovers() {
        let sched = Scheduler::start(config(1, 1));
        let spec = "topologies = grid:4x4\nseeds = 0..40\nhorizon = 30";
        let job = match sched.submit(JobKind::Sweep, spec, "heavy").unwrap() {
            Submission::Accepted(job) => job,
            _ => panic!("first submission admitted"),
        };
        match sched.submit(JobKind::Sweep, SPEC, "light").unwrap() {
            Submission::Rejected { retry_after } => assert!(retry_after >= 1),
            _ => panic!("watermark submission must be rejected"),
        }
        assert_eq!(sched.counters.rejected.load(Ordering::Relaxed), 1);
        drain(&job);
        // Backlog drained: the same interactive spec is admitted now.
        match sched.submit(JobKind::Sweep, SPEC, "light").unwrap() {
            Submission::Accepted(second) => {
                drain(&second);
            }
            _ => panic!("post-drain submission must be admitted"),
        }
        sched.shutdown();
        sched.join();
    }

    #[test]
    fn attach_joins_the_live_job() {
        let sched = Scheduler::start(config(2, 8));
        let spec = "topologies = grid:4x4\nseeds = 0..30\nhorizon = 30";
        let first = match sched.submit(JobKind::Sweep, spec, "a").unwrap() {
            Submission::Accepted(job) => job,
            _ => panic!("admitted"),
        };
        match sched.submit(JobKind::Sweep, spec, "b").unwrap() {
            Submission::Attached(job) => assert!(Arc::ptr_eq(&job, &first)),
            Submission::Cached(_) => {} // raced to completion: also correct
            _ => panic!("identical live spec must attach"),
        }
        drain(&first);
        sched.shutdown();
        sched.join();
    }

    #[test]
    fn deduped_grid_streams_all_rows() {
        let sched = Scheduler::start(config(2, 8));
        // rates repeated => identical grid points collapse to one unit each.
        let spec = "topologies = path:5\nrates = nominal, nominal\nseeds = 0..3\nhorizon = 15";
        let job = match sched.submit(JobKind::Sweep, spec, "t").unwrap() {
            Submission::Accepted(job) => job,
            _ => panic!("admitted"),
        };
        assert_eq!(job.jobs_total(), 6);
        assert_eq!(job.deduped(), 3);
        assert_eq!(job.units_total(), 3);
        let results = drain(&job);
        let text = String::from_utf8(results).unwrap();
        let rows = text
            .lines()
            .filter(|l| l.contains("\"kind\":\"job\""))
            .count();
        assert_eq!(rows, 6, "every original grid point gets a row:\n{text}");
        assert!(text
            .lines()
            .last()
            .unwrap()
            .contains("\"kind\":\"summary\""));
        sched.shutdown();
        sched.join();
    }

    #[test]
    fn chaos_batch_round_trips() {
        let sched = Scheduler::start(config(2, 8));
        let job = match sched
            .submit(JobKind::ChaosBatch, "scenarios = 6\nstart-seed = 3", "c")
            .unwrap()
        {
            Submission::Accepted(job) => job,
            _ => panic!("admitted"),
        };
        let results = drain(&job);
        let text = String::from_utf8(results).unwrap();
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"kind\":\"summary\""), "{text}");
        assert!(last.contains("\"scenarios\":6"), "{text}");
        // Identical resubmission hits the cache.
        match sched
            .submit(JobKind::ChaosBatch, "scenarios = 6\nstart-seed = 3", "c")
            .unwrap()
        {
            Submission::Cached(a) => assert_eq!(a.results, text.as_bytes()),
            _ => panic!("expected cache hit"),
        }
        sched.shutdown();
        sched.join();
    }

    #[test]
    fn offset_buf_trims_at_line_boundaries() {
        let mut buf = OffsetBuf::new(64);
        for i in 0..100 {
            buf.append(format!("line {i}\n").as_bytes());
        }
        let (next, bytes) = buf.read_from(0);
        assert_eq!(next, buf.end());
        assert!(bytes.len() <= 64);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("line "), "clamped to a line start: {text}");
        assert!(text.ends_with("line 99\n"));
    }
}
