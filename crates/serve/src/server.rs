//! The accept loop and per-connection request handling.
//!
//! One thread per connection, HTTP/1.1 keep-alive with pipelining (the
//! incremental parser in [`crate::wire`] buffers across reads). Complete
//! responses use `Content-Length` framing; result/heartbeat streams use
//! chunked transfer-encoding, so byte-identity guarantees are stated at
//! the de-chunked body level (chunk boundaries follow execution progress).
//!
//! # Endpoints
//!
//! | Method | Path                      | Body / behavior                              |
//! |--------|---------------------------|----------------------------------------------|
//! | POST   | `/v1/jobs?kind=K[&wait=1]`| submit spec; `wait=1` streams results        |
//! | GET    | `/v1/jobs/{id}`           | one JSON status line                         |
//! | GET    | `/v1/jobs/{id}/results`   | JSONL result stream (live-follows)           |
//! | GET    | `/v1/jobs/{id}/heartbeats`| `gcs-heartbeat/v1` JSONL stream              |
//! | GET    | `/v1/jobs/{id}/blame`     | trace-blame over the retained window         |
//! | GET    | `/stats`                  | scheduler + cache counters                   |
//! | GET    | `/v1/heartbeats[?once=1]` | server-wide event stream                     |
//! | POST   | `/v1/shutdown`            | graceful shutdown                            |

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use gcs_forensics::{blame, ClockReconstruction, Dag};

use crate::artifact::JobKind;
use crate::sched::{LiveJob, Resolved, Scheduler, Submission};
use crate::wire::{chunk, chunked_head, simple_response, RequestParser, CHUNK_END};

/// How long streaming endpoints wait per poll before re-checking for
/// shutdown; bounds how stale a dying connection can get.
const STREAM_POLL: Duration = Duration::from_millis(200);

/// Runs the accept loop until shutdown is requested. Each connection gets
/// its own thread; the loop itself exits when [`Scheduler::shutdown`] has
/// run and the listener is poked (see [`crate::ServerHandle::shutdown`]).
pub fn accept_loop(listener: &TcpListener, sched: &Arc<Scheduler>) {
    let local = listener.local_addr().ok();
    for conn in listener.incoming() {
        if sched.is_shutdown() {
            return;
        }
        let Ok(stream) = conn else { continue };
        let sched = Arc::clone(sched);
        let _ = std::thread::Builder::new()
            .name("gcs-serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &sched, local);
            });
    }
}

fn handle_connection(
    mut stream: TcpStream,
    sched: &Arc<Scheduler>,
    local: Option<SocketAddr>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let mut parser = RequestParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        loop {
            match parser.next_request() {
                Ok(Some(req)) => {
                    let close = req
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    let keep = handle_request(&mut stream, sched, &req, local)?;
                    if close || !keep {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let body = format!("{e}\n");
                    let _ = stream.write_all(&simple_response(
                        e.status(),
                        "text/plain",
                        &[("connection", "close")],
                        body.as_bytes(),
                    ));
                    return Ok(());
                }
            }
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        parser.feed(&buf[..n]);
    }
}

/// Dispatches one parsed request. Returns whether the connection may be
/// kept alive (streaming responses end it: their length is only known to
/// the chunked framing, and a follow stream has no natural end).
fn handle_request(
    stream: &mut TcpStream,
    sched: &Arc<Scheduler>,
    req: &crate::wire::Request,
    local: Option<SocketAddr>,
) -> std::io::Result<bool> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => handle_submit(stream, sched, req),
        ("GET", "/stats") => {
            respond(
                stream,
                200,
                "application/json",
                &[],
                sched.stats_json().as_bytes(),
            )?;
            Ok(true)
        }
        ("GET", "/v1/heartbeats") => handle_serve_heartbeats(stream, sched, req),
        ("POST", "/v1/shutdown") => {
            respond(stream, 200, "text/plain", &[], b"shutting down\n")?;
            sched.shutdown();
            // Poke the (blocking) accept loop so it observes the flag.
            if let Some(addr) = local {
                let _ = TcpStream::connect(addr);
            }
            Ok(false)
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            let (id, sub) = match rest.split_once('/') {
                Some((id, sub)) => (id, sub),
                None => (rest, ""),
            };
            handle_job_get(stream, sched, req, id, sub)
        }
        _ => {
            respond(stream, 404, "text/plain", &[], b"no such endpoint\n")?;
            Ok(true)
        }
    }
}

fn handle_submit(
    stream: &mut TcpStream,
    sched: &Arc<Scheduler>,
    req: &crate::wire::Request,
) -> std::io::Result<bool> {
    let kind = match JobKind::parse(req.query_param("kind").unwrap_or("sweep")) {
        Ok(kind) => kind,
        Err(e) => {
            respond(stream, 400, "text/plain", &[], format!("{e}\n").as_bytes())?;
            return Ok(true);
        }
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => {
            respond(stream, 400, "text/plain", &[], b"spec body must be UTF-8\n")?;
            return Ok(true);
        }
    };
    let session = req.header("x-session").unwrap_or("default");
    let wait = req.query_param("wait").is_some_and(|v| v == "1");
    match sched.submit(kind, body, session) {
        Err(e) => {
            respond(stream, 400, "text/plain", &[], format!("{e}\n").as_bytes())?;
            Ok(true)
        }
        Ok(Submission::Rejected { retry_after }) => {
            let retry = retry_after.to_string();
            respond(
                stream,
                429,
                "text/plain",
                &[("retry-after", &retry)],
                b"job queue full; retry later\n",
            )?;
            Ok(true)
        }
        Ok(Submission::Cached(artifact)) => {
            if wait {
                stream_bytes(stream, &artifact.results)?;
                Ok(false)
            } else {
                respond(
                    stream,
                    200,
                    "application/json",
                    &[("x-gcs-cache", "hit"), ("x-gcs-job", &artifact.id)],
                    artifact.meta.as_bytes(),
                )?;
                Ok(true)
            }
        }
        Ok(Submission::Attached(job)) | Ok(Submission::Accepted(job)) => {
            if wait {
                stream_live_results(stream, &job, sched)?;
                Ok(false)
            } else {
                let meta = job.meta_json();
                respond(
                    stream,
                    202,
                    "application/json",
                    &[("x-gcs-cache", "miss"), ("x-gcs-job", &job.id)],
                    meta.as_bytes(),
                )?;
                Ok(true)
            }
        }
    }
}

fn handle_job_get(
    stream: &mut TcpStream,
    sched: &Arc<Scheduler>,
    req: &crate::wire::Request,
    id: &str,
    sub: &str,
) -> std::io::Result<bool> {
    match (sched.resolve(id), sub) {
        (Resolved::Missing, _) => {
            respond(
                stream,
                404,
                "text/plain",
                &[],
                b"unknown job id (never submitted, or evicted from the result cache)\n",
            )?;
            Ok(true)
        }
        (Resolved::Live(job), "") => {
            let meta = job.meta_json();
            respond(stream, 200, "application/json", &[], meta.as_bytes())?;
            Ok(true)
        }
        (Resolved::Done(artifact), "") => {
            respond(
                stream,
                200,
                "application/json",
                &[],
                artifact.meta.as_bytes(),
            )?;
            Ok(true)
        }
        (Resolved::Live(job), "results") => {
            stream_live_results(stream, &job, sched)?;
            Ok(false)
        }
        (Resolved::Done(artifact), "results") => {
            stream_bytes(stream, &artifact.results)?;
            Ok(false)
        }
        (Resolved::Live(job), "heartbeats") => {
            stream_live_heartbeats(stream, &job, sched)?;
            Ok(false)
        }
        (Resolved::Done(artifact), "heartbeats") => {
            stream_bytes(stream, &artifact.heartbeats)?;
            Ok(false)
        }
        (Resolved::Live(_), "blame") => {
            respond(
                stream,
                409,
                "text/plain",
                &[],
                b"job still running; blame needs the completed artifact\n",
            )?;
            Ok(true)
        }
        (Resolved::Done(artifact), "blame") => {
            let hops = req
                .query_param("hops")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(6);
            let global = req.query_param("global").is_some_and(|v| v == "1");
            match blame_text(&artifact.window, hops, global) {
                Ok(text) => respond(stream, 200, "text/plain", &[], text.as_bytes())?,
                Err(message) => respond(stream, 404, "text/plain", &[], message.as_bytes())?,
            }
            Ok(true)
        }
        _ => {
            respond(stream, 404, "text/plain", &[], b"no such job endpoint\n")?;
            Ok(true)
        }
    }
}

/// Runs the forensic blame pipeline over a job's retained recorder window.
fn blame_text(
    window: &[gcs_sim::EngineEvent],
    max_hops: usize,
    global: bool,
) -> Result<String, String> {
    if window.is_empty() {
        return Err(
            "no flight-recorder window retained for this job (nothing executed, \
             or the window was empty)\n"
                .to_string(),
        );
    }
    let dag = Dag::from_events(window.to_vec());
    let clocks = ClockReconstruction::from_events(dag.events());
    match blame(&dag, &clocks, None, max_hops, global) {
        Some(report) => Ok(report.render(&clocks)),
        None => Err("window never has two nodes awake at once — no skew to explain\n".to_string()),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    stream.write_all(&simple_response(status, content_type, extra, body))
}

/// Streams a frozen byte buffer as one chunked response.
fn stream_bytes(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(&chunked_head(200, "application/x-ndjson"))?;
    if !bytes.is_empty() {
        stream.write_all(&chunk(bytes))?;
    }
    stream.write_all(CHUNK_END)
}

/// Follows a live job's result stream by offset until it completes.
fn stream_live_results(
    stream: &mut TcpStream,
    job: &Arc<LiveJob>,
    sched: &Arc<Scheduler>,
) -> std::io::Result<()> {
    stream.write_all(&chunked_head(200, "application/x-ndjson"))?;
    let mut offset = 0usize;
    loop {
        let (bytes, done) = job.wait_results(offset, STREAM_POLL);
        if !bytes.is_empty() {
            stream.write_all(&chunk(&bytes))?;
            offset += bytes.len();
        }
        if done {
            return stream.write_all(CHUNK_END);
        }
        if sched.is_shutdown() {
            return stream.write_all(CHUNK_END);
        }
    }
}

/// Follows a live job's heartbeat stream by offset until it completes.
fn stream_live_heartbeats(
    stream: &mut TcpStream,
    job: &Arc<LiveJob>,
    sched: &Arc<Scheduler>,
) -> std::io::Result<()> {
    stream.write_all(&chunked_head(200, "application/x-ndjson"))?;
    let mut offset = 0usize;
    loop {
        let (bytes, done) = job.wait_heartbeats(offset, STREAM_POLL);
        if !bytes.is_empty() {
            stream.write_all(&chunk(&bytes))?;
            offset += bytes.len();
        }
        if done {
            return stream.write_all(CHUNK_END);
        }
        if sched.is_shutdown() {
            return stream.write_all(CHUNK_END);
        }
    }
}

/// The server-wide heartbeat stream: `once=1` returns the retained buffer
/// and closes; otherwise follows until the daemon shuts down.
fn handle_serve_heartbeats(
    stream: &mut TcpStream,
    sched: &Arc<Scheduler>,
    req: &crate::wire::Request,
) -> std::io::Result<bool> {
    let mut offset = req
        .query_param("offset")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    if req.query_param("once").is_some_and(|v| v == "1") {
        let (bytes, _, _) = sched.wait_serve_heartbeats(offset, Duration::from_millis(1));
        respond(stream, 200, "application/x-ndjson", &[], &bytes)?;
        return Ok(true);
    }
    stream.write_all(&chunked_head(200, "application/x-ndjson"))?;
    loop {
        let (bytes, next, shutdown) = sched.wait_serve_heartbeats(offset, STREAM_POLL);
        if !bytes.is_empty() {
            stream.write_all(&chunk(&bytes))?;
        }
        offset = next;
        if shutdown {
            return stream.write_all(CHUNK_END).map(|()| false);
        }
    }
}
