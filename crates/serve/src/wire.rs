//! The hand-rolled HTTP/1.1 wire layer: an incremental request parser and
//! response serializers.
//!
//! The parser is written against a hostile network: bytes arrive torn at
//! arbitrary boundaries, clients pipeline requests, send garbage preludes,
//! or attempt resource-exhaustion with unbounded header or body sections.
//! Every such input produces a clean [`WireError`] (mapped to a 4xx
//! response by the server) — never a panic, never unbounded buffering
//! (`tests/wire_torture.rs` drives all of these adversarially).
//!
//! Scope is deliberately narrow: `HTTP/1.0`–`1.1` requests with optional
//! `Content-Length` bodies. `Transfer-Encoding` on *requests* is rejected;
//! responses may use chunked framing (the streaming endpoints do).

use std::fmt;

/// Hard cap on the request line + header section, bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Hard cap on a request body, bytes (specs are tiny; this is generous).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Hard cap on the number of header fields.
pub const MAX_HEADERS: usize = 100;

/// A parse failure. The connection is poisoned: the server answers with
/// the mapped status and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Request line + headers exceed [`MAX_HEADER_BYTES`] (or
    /// [`MAX_HEADERS`] fields) without terminating.
    HeaderTooLarge,
    /// Declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// The first line is not `METHOD SP /target SP HTTP/1.x`.
    BadRequestLine(String),
    /// A header line is malformed (no colon, empty or non-token name).
    BadHeader(String),
    /// `Content-Length` is non-numeric or conflicting.
    BadContentLength(String),
    /// The request declares a `Transfer-Encoding` (unsupported on
    /// requests).
    UnsupportedTransfer,
}

impl WireError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            WireError::HeaderTooLarge => 431,
            WireError::BodyTooLarge(_) => 413,
            _ => 400,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::HeaderTooLarge => {
                write!(f, "header section exceeds {MAX_HEADER_BYTES} bytes")
            }
            WireError::BodyTooLarge(n) => {
                write!(f, "declared body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
            WireError::BadRequestLine(line) => write!(f, "malformed request line `{line}`"),
            WireError::BadHeader(line) => write!(f, "malformed header line `{line}`"),
            WireError::BadContentLength(v) => write!(f, "bad content-length `{v}`"),
            WireError::UnsupportedTransfer => {
                write!(f, "transfer-encoding is not supported on requests")
            }
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header fields, in order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name matched case-insensitively —
    /// stored names are already lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of the named query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Incremental request parser over a growing byte buffer.
///
/// Feed raw socket reads with [`RequestParser::feed`]; drain complete
/// requests with [`RequestParser::next_request`]. Bytes beyond the first
/// complete request stay buffered, so pipelined requests parse one per
/// call. Any error is terminal for the connection.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// An empty parser.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (for tests and backpressure accounting).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request off the front of the buffer.
    /// `Ok(None)` means "incomplete — feed more bytes".
    pub fn next_request(&mut self) -> Result<Option<Request>, WireError> {
        // Robustness (RFC 9112 §2.2): ignore CRLF/LF noise between
        // pipelined requests.
        let skip = self
            .buf
            .iter()
            .take_while(|&&b| b == b'\r' || b == b'\n')
            .count();
        if skip > 0 {
            self.buf.drain(..skip);
        }
        if self.buf.is_empty() {
            return Ok(None);
        }
        let Some(header_end) = find_header_end(&self.buf) else {
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(WireError::HeaderTooLarge);
            }
            return Ok(None);
        };
        if header_end > MAX_HEADER_BYTES {
            return Err(WireError::HeaderTooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| WireError::BadHeader("<non-utf8 header bytes>".into()))?;
        let mut lines = head
            .split("\r\n")
            .map(|l| l.strip_suffix('\n').unwrap_or(l));
        // Tolerate bare-LF line endings by re-splitting each CRLF segment.
        let mut flat: Vec<&str> = Vec::new();
        for l in lines.by_ref() {
            flat.extend(l.split('\n'));
        }
        let request_line = flat.first().copied().unwrap_or("");
        let (method, path, query) = parse_request_line(request_line)?;
        let mut headers = Vec::new();
        for line in flat.iter().skip(1).filter(|l| !l.is_empty()) {
            if headers.len() >= MAX_HEADERS {
                return Err(WireError::HeaderTooLarge);
            }
            headers.push(parse_header_line(line)?);
        }
        let mut content_length: Option<usize> = None;
        for (name, value) in &headers {
            match name.as_str() {
                "content-length" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| WireError::BadContentLength(value.clone()))?;
                    if let Some(prev) = content_length {
                        if prev != n {
                            return Err(WireError::BadContentLength(value.clone()));
                        }
                    }
                    content_length = Some(n);
                }
                "transfer-encoding" => return Err(WireError::UnsupportedTransfer),
                _ => {}
            }
        }
        let body_len = content_length.unwrap_or(0);
        if body_len > MAX_BODY_BYTES {
            return Err(WireError::BodyTooLarge(body_len));
        }
        let total = header_end + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[header_end..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            path,
            query,
            headers,
            body,
        }))
    }
}

/// Index one past the `\r\n\r\n` (or `\n\n`) header terminator, if any.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // `\n\n` or `\n\r\n` both end the header section.
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Decoded request line: `(method, path, query pairs)`.
type RequestLine = (String, String, Vec<(String, String)>);

fn parse_request_line(line: &str) -> Result<RequestLine, WireError> {
    let err = || WireError::BadRequestLine(line.chars().take(80).collect());
    let mut parts = line.split(' ');
    let method = parts.next().ok_or_else(err)?;
    let target = parts.next().ok_or_else(err)?;
    let version = parts.next().ok_or_else(err)?;
    if parts.next().is_some() {
        return Err(err());
    }
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(err());
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(err());
    }
    if !target.starts_with('/') || target.len() > 8 * 1024 {
        return Err(err());
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok((method.to_string(), path.to_string(), query))
}

fn parse_header_line(line: &str) -> Result<(String, String), WireError> {
    let err = || WireError::BadHeader(line.chars().take(80).collect());
    let (name, value) = line.split_once(':').ok_or_else(err)?;
    if name.is_empty() || !name.bytes().all(is_token_byte) {
        return Err(err());
    }
    Ok((
        name.to_ascii_lowercase(),
        value.trim_matches([' ', '\t']).to_string(),
    ))
}

/// Human-facing reason phrase for the statuses the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Serializes a complete (non-streaming) response with `Content-Length`
/// framing, ready for `write_all`.
pub fn simple_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 256);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
            status_reason(status),
            body.len()
        )
        .as_bytes(),
    );
    for (k, v) in extra_headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Serializes the head of a chunked streaming response; follow with
/// [`chunk`] frames and [`CHUNK_END`].
pub fn chunked_head(status: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n\r\n",
        status_reason(status)
    )
    .into_bytes()
}

/// One chunked-encoding frame around `data` (callers skip empty slices —
/// an empty chunk would terminate the stream).
pub fn chunk(data: &[u8]) -> Vec<u8> {
    debug_assert!(!data.is_empty(), "empty chunk terminates the stream");
    let mut out = Vec::with_capacity(data.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminal frame of a chunked response.
pub const CHUNK_END: &[u8] = b"0\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<Request>, WireError> {
        let mut p = RequestParser::new();
        p.feed(bytes);
        p.next_request()
    }

    #[test]
    fn parses_a_minimal_get() {
        let r = parse_one(b"GET /stats HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/stats");
        assert_eq!(r.header("Host"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_query_and_body() {
        let r = parse_one(
            b"POST /v1/jobs?kind=sweep&x=1 HTTP/1.1\r\ncontent-length: 11\r\n\r\nhorizon = 5",
        )
        .unwrap()
        .unwrap();
        assert_eq!(r.query_param("kind"), Some("sweep"));
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.body, b"horizon = 5");
    }

    #[test]
    fn incomplete_requests_wait_for_more_bytes() {
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTT");
        assert_eq!(p.next_request().unwrap(), None);
        p.feed(b"P/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/a");
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/a");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/b");
        assert_eq!(p.next_request().unwrap(), None);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn garbage_preludes_error_cleanly() {
        for garbage in [
            &b"SSH-2.0-OpenSSH_9.6\r\n\r\n"[..],
            &b"\x16\x03\x01\x02\x00ls -la\r\n\r\n"[..],
            &b"get /lowercase HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/2.0\r\n\r\n"[..],
            &b"GET relative HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/1.1 extra\r\n\r\n"[..],
        ] {
            assert!(matches!(
                parse_one(garbage),
                Err(WireError::BadRequestLine(_) | WireError::BadHeader(_))
            ));
        }
    }

    #[test]
    fn oversized_headers_are_rejected_without_buffering_forever() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        let filler = format!("x-pad: {}\r\n", "a".repeat(1000));
        let mut hit = None;
        for _ in 0..100 {
            p.feed(filler.as_bytes());
            if let Err(e) = p.next_request() {
                hit = Some(e);
                break;
            }
        }
        assert_eq!(hit, Some(WireError::HeaderTooLarge));
    }

    #[test]
    fn content_length_abuse_is_rejected() {
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n"),
            Err(WireError::BadContentLength(_))
        ));
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 4\r\n\r\n"),
            Err(WireError::BadContentLength(_))
        ));
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n"),
            Err(WireError::BodyTooLarge(_))
        ));
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(WireError::UnsupportedTransfer)
        ));
    }

    #[test]
    fn response_serializers_frame_correctly() {
        let r = simple_response(429, "application/json", &[("retry-after", "3")], b"{}");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 3\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        assert_eq!(chunk(b"abc"), b"3\r\nabc\r\n");
        assert!(String::from_utf8(chunked_head(200, "application/jsonl"))
            .unwrap()
            .contains("transfer-encoding: chunked"));
    }
}
