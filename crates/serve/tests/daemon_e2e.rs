//! End-to-end daemon tests over a real TCP socket: flight-recorder dumps
//! from daemon-hosted jobs, byte-identical result streams across
//! concurrent subscribers, and admission-control behavior at the HTTP
//! layer (429 + `Retry-After`, then recovery).

use std::path::PathBuf;

use gcs_serve::{Client, ServeConfig, ServerHandle};

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gcs-serve-e2e-{tag}-{}", std::process::id()))
}

fn spawn(workers: usize, max_live: usize, dump_tag: &str) -> ServerHandle {
    ServerHandle::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_bytes: 16 << 20,
        max_live,
        dump_dir: unique_dir(dump_tag),
        deterministic: true,
    })
    .expect("daemon binds an ephemeral port")
}

/// A daemon-hosted sweep whose rate fault trips the invariant watchdog
/// must leave one recorder dump per tripped job in a per-job
/// subdirectory of `dump_dir`, each parseable by the forensics layer,
/// and must report the dump paths in the job's status document.
#[test]
fn tripped_jobs_dump_recorder_windows_per_job() {
    let dump_dir = unique_dir("dumps");
    let _ = std::fs::remove_dir_all(&dump_dir);
    let server = ServerHandle::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_bytes: 16 << 20,
        max_live: 8,
        dump_dir: dump_dir.clone(),
        deterministic: true,
    })
    .expect("daemon spawns");

    let addr = server.addr().to_string();
    let mut client = Client::new(&addr);
    // Both seeds run nodes 0..1 at rate 1.5 — far outside the drift
    // bounds — so the legal-state watchdog trips in every job.
    let spec = "topologies = path:6\nseeds = 0..2\nhorizon = 60\n\
                chaos = rate:5..50:0..1:1.5\nwatchdog = true\n";
    let resp = client
        .post("/v1/jobs?kind=sweep&wait=1", Some("forensics"), spec)
        .expect("submit streams");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(!resp.body.is_empty());

    // Recover the job id by resubmitting without wait: the artifact is
    // cached now, and the hit carries `x-gcs-job`.
    let hit = client
        .post("/v1/jobs?kind=sweep", Some("forensics"), spec)
        .expect("cache hit");
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-gcs-cache"), Some("hit"));
    let id = hit
        .header("x-gcs-job")
        .expect("hit names the job")
        .to_string();

    // The status document reports the trips and the dump paths.
    let meta = client.get(&format!("/v1/jobs/{id}")).expect("status");
    assert_eq!(meta.status, 200);
    let meta = meta.text();
    assert!(
        meta.contains("\"watchdog_trips\":2"),
        "both jobs must trip: {meta}"
    );
    assert!(
        meta.contains("recorder-trip-job0.jsonl") && meta.contains("recorder-trip-job1.jsonl"),
        "status must list per-job dumps: {meta}"
    );

    // On disk: a subdirectory named after the job, one dump per tripped
    // job, each a parseable engine-event stream.
    let job_dir = dump_dir.join(&id);
    for unit in 0..2 {
        let path = job_dir.join(format!("recorder-trip-job{unit}.jsonl"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("dump {} must exist: {e}", path.display()));
        let events = gcs_forensics::parse_stream(&text)
            .unwrap_or_else(|e| panic!("dump {} must parse: {e}", path.display()));
        assert!(
            !events.is_empty(),
            "dump {} holds the recorder window",
            path.display()
        );
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// N subscribers streaming one live job's results over separate
/// connections all see the same bytes — the single-writer buffer is
/// fanned out by offset, never re-rendered.
#[test]
fn concurrent_subscribers_stream_identical_bytes() {
    let server = spawn(2, 8, "subs");
    let addr = server.addr().to_string();
    let mut client = Client::new(&addr);
    let spec = "topologies = grid:4x4\nseeds = 0..6\nhorizon = 25\n";
    let resp = client
        .post("/v1/jobs?kind=sweep", Some("subs"), spec)
        .expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = resp.header("x-gcs-job").expect("job id").to_string();

    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let id = &id;
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut sub = Client::new(&addr);
                    let resp = sub
                        .get(&format!("/v1/jobs/{id}/results"))
                        .expect("subscriber streams");
                    assert_eq!(resp.status, 200);
                    resp.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(!bodies[0].is_empty());
    let text = String::from_utf8(bodies[0].clone()).unwrap();
    assert_eq!(text.lines().count(), 7, "6 result rows + summary: {text}");
    for (i, body) in bodies.iter().enumerate() {
        assert_eq!(
            body, &bodies[0],
            "subscriber {i} diverged from subscriber 0"
        );
    }
}

/// Driving the daemon past its admission watermark must shed load with
/// 429 + a sane `Retry-After`, and accept work again once the queue
/// drains — the HTTP face of the bounded-queue contract.
#[test]
fn saturation_sheds_load_with_429_and_recovers() {
    let server = spawn(1, 1, "backpressure");
    let addr = server.addr().to_string();
    let mut client = Client::new(&addr);

    // Fill the single live slot with a multi-unit job.
    let big = "topologies = grid:4x4\nseeds = 0..10\nhorizon = 25\n";
    let first = client
        .post("/v1/jobs?kind=sweep", Some("flood"), big)
        .expect("first submission");
    assert_eq!(first.status, 202, "{}", first.text());
    let id = first.header("x-gcs-job").unwrap().to_string();

    // A distinct spec now bounces: the queue is at the watermark.
    let overflow = "topologies = path:5\nseeds = 0..2\nhorizon = 15\n";
    let bounced = client
        .post("/v1/jobs?kind=sweep", Some("flood"), overflow)
        .expect("overflow submission");
    assert_eq!(bounced.status, 429, "{}", bounced.text());
    let retry: u64 = bounced
        .header("retry-after")
        .expect("429 carries retry-after")
        .parse()
        .expect("retry-after is integer seconds");
    assert!(
        (1..=120).contains(&retry),
        "retry-after {retry} out of range"
    );

    // Drain the live job (streaming blocks until done), then the same
    // overflow spec is admitted: rejection was load shedding, not an
    // error state.
    let results = client
        .get(&format!("/v1/jobs/{id}/results"))
        .expect("drain first job");
    assert_eq!(results.status, 200);
    let recovered = client
        .post("/v1/jobs?kind=sweep", Some("flood"), overflow)
        .expect("resubmission");
    assert_eq!(
        recovered.status,
        202,
        "queue drained, submission must be admitted: {}",
        recovered.text()
    );
}
