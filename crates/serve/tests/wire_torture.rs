//! Adversarial tests for the hand-rolled HTTP/1.1 request parser.
//!
//! The parser faces the raw socket, so these tests model a hostile peer:
//! bytes torn at every possible boundary, pipelined requests, garbage
//! preludes, resource-exhaustion attempts on the header and body
//! sections. The contract under fire: every complete well-formed request
//! parses identically no matter how it was torn, and every malformed or
//! abusive input produces a clean [`WireError`] with a 4xx mapping —
//! never a panic, never unbounded buffering.

use gcs_serve::wire::{RequestParser, WireError, MAX_BODY_BYTES, MAX_HEADERS, MAX_HEADER_BYTES};

const CANON: &[u8] = b"POST /v1/jobs?kind=sweep&wait=1 HTTP/1.1\r\n\
Host: localhost\r\n\
X-Session: s1\r\n\
Content-Length: 12\r\n\
\r\n\
hello world!";

/// Feeds everything at once and drains all complete requests.
fn parse_all(bytes: &[u8]) -> Result<Vec<gcs_serve::wire::Request>, WireError> {
    let mut p = RequestParser::new();
    p.feed(bytes);
    let mut out = Vec::new();
    while let Some(req) = p.next_request()? {
        out.push(req);
    }
    Ok(out)
}

/// The reference parse of [`CANON`], asserted once so the torn-read tests
/// can compare whole `Request` values against it.
fn canon_request() -> gcs_serve::wire::Request {
    let reqs = parse_all(CANON).expect("canonical request parses");
    assert_eq!(reqs.len(), 1);
    let req = reqs.into_iter().next().unwrap();
    assert_eq!(req.method, "POST");
    assert_eq!(req.path, "/v1/jobs");
    assert_eq!(req.query_param("kind"), Some("sweep"));
    assert_eq!(req.query_param("wait"), Some("1"));
    assert_eq!(req.header("x-session"), Some("s1"));
    assert_eq!(req.body, b"hello world!");
    req
}

/// Splitting the request at every byte boundary changes nothing: before
/// the split completes the request the parser reports "incomplete", and
/// the final parse equals the unsplit reference.
#[test]
fn torn_reads_at_every_byte_boundary() {
    let reference = canon_request();
    for split in 0..=CANON.len() {
        let mut p = RequestParser::new();
        p.feed(&CANON[..split]);
        let early = p.next_request().expect("prefix never errors");
        if split < CANON.len() {
            assert!(early.is_none(), "request complete early at byte {split}");
        }
        p.feed(&CANON[split..]);
        let req = match early {
            Some(req) => req,
            None => p
                .next_request()
                .expect("full request parses")
                .expect("request is complete"),
        };
        assert_eq!(req, reference, "split at byte {split} changed the parse");
        assert_eq!(p.buffered(), 0);
    }
}

/// One byte per `feed` call — the most extreme tearing — still yields the
/// reference parse, with exactly one completion.
#[test]
fn byte_by_byte_feed_parses_once() {
    let reference = canon_request();
    let mut p = RequestParser::new();
    let mut parsed = Vec::new();
    for &b in CANON {
        p.feed(&[b]);
        if let Some(req) = p.next_request().expect("never errors") {
            parsed.push(req);
        }
    }
    assert_eq!(parsed, vec![reference]);
}

/// Pipelined requests parse one per call, in order, each keeping its own
/// body; trailing bytes of the next request stay buffered.
#[test]
fn pipelined_requests_parse_in_order() {
    let mut wire = Vec::new();
    wire.extend_from_slice(b"GET /stats HTTP/1.1\r\n\r\n");
    wire.extend_from_slice(CANON);
    wire.extend_from_slice(b"GET /v1/heartbeats?once=1 HTTP/1.0\r\n\r\n");
    let reqs = parse_all(&wire).expect("pipeline parses");
    assert_eq!(reqs.len(), 3);
    assert_eq!(reqs[0].path, "/stats");
    assert_eq!(reqs[1].body, b"hello world!");
    assert_eq!(reqs[2].path, "/v1/heartbeats");
    assert_eq!(reqs[2].query_param("once"), Some("1"));

    // The same pipeline torn into 7-byte reads parses identically.
    let mut p = RequestParser::new();
    let mut torn = Vec::new();
    for chunk in wire.chunks(7) {
        p.feed(chunk);
        while let Some(req) = p.next_request().expect("never errors") {
            torn.push(req);
        }
    }
    assert_eq!(torn, reqs);
}

/// CRLF noise between pipelined requests (RFC 9112 §2.2) is skipped.
#[test]
fn crlf_noise_between_requests_is_ignored() {
    let mut wire = Vec::new();
    wire.extend_from_slice(b"\r\n\r\nGET /stats HTTP/1.1\r\n\r\n\r\n\n");
    wire.extend_from_slice(b"GET /v1/jobs/x HTTP/1.1\r\n\r\n");
    let reqs = parse_all(&wire).expect("noise tolerated");
    assert_eq!(reqs.len(), 2);
    assert_eq!(reqs[1].path, "/v1/jobs/x");
}

/// Bare-LF line endings are tolerated end to end.
#[test]
fn bare_lf_requests_parse() {
    let reqs = parse_all(b"POST /v1/jobs HTTP/1.1\nContent-Length: 2\n\nok").unwrap();
    assert_eq!(reqs.len(), 1);
    assert_eq!(reqs[0].body, b"ok");
}

/// Garbage preludes — binary soup, TLS handshakes, lowercase methods, bad
/// versions, relative targets — all map to a clean 4xx, never a panic.
#[test]
fn garbage_preludes_fail_cleanly() {
    let cases: &[&[u8]] = &[
        b"\x16\x03\x01\x02\x00\x01\x00\x01\xfc\r\n\r\n", // TLS ClientHello prelude
        b"\x00\x01\x02\x03garbage\r\n\r\n",
        b"GARBAGE\r\n\r\n",
        b"get / HTTP/1.1\r\n\r\n",                     // lowercase method
        b"GET / HTTP/2.0\r\n\r\n",                     // unsupported version
        b"GET stats HTTP/1.1\r\n\r\n",                 // relative target
        b"GET / HTTP/1.1 extra\r\n\r\n",               // four fields
        b"GET /\x80\xff HTTP/1.1\r\nH\xc3: v\r\n\r\n", // non-token header name
        b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"GET / HTTP/1.1\r\n\xff\xfe: v\r\n\r\n", // non-UTF-8 header bytes
    ];
    for (i, case) in cases.iter().enumerate() {
        let err = parse_all(case).expect_err(&format!("case {i} must be rejected"));
        assert_eq!(err.status(), 400, "case {i}: {err}");
    }
}

/// A header section that never terminates is cut off once it exceeds the
/// cap — buffering is bounded even when the peer never sends `\r\n\r\n`.
#[test]
fn unterminated_header_flood_is_bounded() {
    let mut p = RequestParser::new();
    p.feed(b"GET / HTTP/1.1\r\nX-Flood: ");
    let filler = [b'a'; 1024];
    let mut fed = p.buffered();
    loop {
        match p.next_request() {
            Ok(None) => {
                assert!(
                    fed <= MAX_HEADER_BYTES + filler.len(),
                    "parser buffered {fed} bytes without erroring"
                );
                p.feed(&filler);
                fed += filler.len();
            }
            Ok(Some(_)) => panic!("flood must never complete"),
            Err(err) => {
                assert_eq!(err, WireError::HeaderTooLarge);
                assert_eq!(err.status(), 431);
                break;
            }
        }
    }
}

/// A terminated header section over the byte cap, and one with too many
/// fields, are both 431s.
#[test]
fn oversized_headers_are_rejected() {
    let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
    wire.extend_from_slice(format!("X-Big: {}\r\n\r\n", "v".repeat(MAX_HEADER_BYTES)).as_bytes());
    assert_eq!(parse_all(&wire), Err(WireError::HeaderTooLarge));

    let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..=MAX_HEADERS {
        wire.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
    }
    wire.extend_from_slice(b"\r\n");
    assert_eq!(parse_all(&wire), Err(WireError::HeaderTooLarge));
}

/// Body-section abuse: oversized declarations are 413s before any body
/// byte arrives; malformed or conflicting lengths and request
/// transfer-encodings are 400s.
#[test]
fn body_abuse_is_rejected() {
    let over = MAX_BODY_BYTES + 1;
    let wire = format!("POST /v1/jobs HTTP/1.1\r\nContent-Length: {over}\r\n\r\n");
    let err = parse_all(wire.as_bytes()).expect_err("oversized body");
    assert_eq!(err, WireError::BodyTooLarge(over));
    assert_eq!(err.status(), 413);

    for bad in [
        "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n",
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ] {
        let err = parse_all(bad.as_bytes()).expect_err(bad);
        assert_eq!(err.status(), 400, "{bad}");
    }
}

/// Single-byte corruption at every position of a valid request either
/// still parses (benign positions: header values, body bytes) or fails
/// with a clean error — the parser never panics and never hangs holding
/// more than the input.
#[test]
fn single_byte_corruption_never_panics() {
    for at in 0..CANON.len() {
        for flip in [0x00u8, 0x20, 0x80, 0xff] {
            let mut wire = CANON.to_vec();
            wire[at] ^= flip;
            let mut p = RequestParser::new();
            p.feed(&wire);
            // Drain until quiescent: any outcome is fine except a panic
            // or an infinite request stream.
            for _ in 0..4 {
                match p.next_request() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
            assert!(p.buffered() <= wire.len());
        }
    }
}

/// Deterministic random byte soup, fed in random-sized chunks: the parser
/// must stay panic-free and bounded. An error is terminal; incompleteness
/// must never buffer past the header cap plus one read.
#[test]
fn random_soup_is_panic_free_and_bounded() {
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    for round in 0..64 {
        let mut p = RequestParser::new();
        let mut dead = false;
        for _ in 0..64 {
            let len = (next() % 257) as usize;
            let chunk: Vec<u8> = (0..len)
                .map(|_| {
                    // Bias toward HTTP-ish bytes so the parser gets past
                    // the request line often enough to stress later states.
                    let b = (next() % 96 + 32) as u8;
                    match next() % 8 {
                        0 => b'\r',
                        1 => b'\n',
                        2 => b' ',
                        3 => b':',
                        _ => b,
                    }
                })
                .collect();
            p.feed(&chunk);
            match p.next_request() {
                Ok(_) => {}
                Err(_) => {
                    dead = true;
                    break;
                }
            }
            assert!(
                p.buffered() <= MAX_HEADER_BYTES + MAX_BODY_BYTES + 257,
                "round {round}: buffered {} bytes",
                p.buffered()
            );
        }
        let _ = dead;
    }
}
