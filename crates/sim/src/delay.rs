//! Message-delay models.
//!
//! The paper's model lets every message delay vary arbitrarily in `[0, 𝒯]`.
//! A [`DelayModel`] chooses each message's delivery; the engine consults it
//! at send time. Two delivery modes exist:
//!
//! * [`Delivery::After`] — an ordinary real-time delay,
//! * [`Delivery::AtReceiverHw`] — deliver when the *receiver's hardware
//!   clock* reaches a given value. This is the primitive behind the paper's
//!   indistinguishable-execution constructions (Definition 7.1 fixes the
//!   message pattern in terms of the receiver's local time); the engine
//!   keeps such deliveries correct across later rate changes.

use gcs_graph::{Graph, NodeId};
use gcs_time::HardwareClock;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Why a transmission was dropped, for per-cause accounting (the engine
/// keeps separate [`MessageStats`](crate::MessageStats) counters so an
/// injected-fault drop is never confused with a lossy-model drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The delay model itself dropped the message (e.g. [`LossyDelay`]'s
    /// i.i.d. loss).
    Model,
    /// An injected fault dropped the message (the chaos layer's drop,
    /// partition, and crash clauses).
    Fault,
}

impl DropCause {
    /// A short stable label (`model` / `fault`), used by the JSONL event
    /// encoding.
    pub fn label(&self) -> &'static str {
        match self {
            DropCause::Model => "model",
            DropCause::Fault => "fault",
        }
    }
}

/// How a message should be delivered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Deliver after the given non-negative real-time delay.
    After(f64),
    /// Deliver when the receiver's hardware clock reaches the given value.
    ///
    /// The receiver must already be initialized, and the value must not lie
    /// in the receiver's past.
    AtReceiverHw(f64),
    /// Drop the message.
    ///
    /// **Beyond the paper's model**, which assumes reliable links; used by
    /// the robustness extension ([`LossyDelay`]) and the chaos fault layer
    /// to probe how gracefully the algorithms degrade when that assumption
    /// is broken. The cause keeps the two attributions separate.
    Drop(DropCause),
    /// Deliver the message **twice**: the original copy after `delay` and a
    /// fault-injected duplicate after `echo` (both real-time delays,
    /// `delay <= echo`).
    ///
    /// **Beyond the paper's model**: the chaos layer's duplication fault.
    /// The duplicate counts as its own transmission and delivery in
    /// [`MessageStats`](crate::MessageStats), plus one `duplicated` tick.
    AfterEcho {
        /// Delay of the original copy.
        delay: f64,
        /// Delay of the duplicated copy (`>= delay`).
        echo: f64,
    },
}

/// A hardware-clock reading supplied either precomputed or on demand.
///
/// The engine hands [`DelayCtx`] a clock reference instead of a reading, so
/// delay models that never consult `src_hw`/`dst_hw` (the common case —
/// constant, uniform, wavefront, …) cost zero clock evaluations per
/// transmit.
#[derive(Debug, Clone, Copy)]
enum HwSource<'a> {
    /// An already-evaluated reading.
    Reading(f64),
    /// Evaluate the clock when (and only when) the reading is requested.
    Clock(&'a HardwareClock),
    /// No reading exists. Requesting it is a contract violation and panics:
    /// the parallel engine uses this for the receiver clock on
    /// cross-partition sends, where the owner partition may have advanced the
    /// receiver past this partition's stale replica. Models advertising a
    /// lookahead promise never to consult `dst_hw` (see
    /// [`DelayModel::lookahead_at`]), so the panic only fires on a broken
    /// promise — never on a correct model.
    Unavailable,
}

impl HwSource<'_> {
    fn resolve(&self, now: f64) -> f64 {
        match self {
            HwSource::Reading(hw) => *hw,
            HwSource::Clock(clock) => clock.value_at(now),
            HwSource::Unavailable => panic!(
                "delay model consulted the receiver's hardware clock on a \
                 cross-partition send; models that advertise a lookahead \
                 must not read dst_hw"
            ),
        }
    }
}

/// Information available to a [`DelayModel`] when it prices a message.
#[derive(Debug, Clone, Copy)]
pub struct DelayCtx<'a> {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Real send time.
    ///
    /// Real time is *not* visible to protocols, but the delay model plays
    /// the adversary's role, and the paper's adversary schedules delays with
    /// full knowledge of the execution.
    pub now: f64,
    src_hw: HwSource<'a>,
    dst_hw: HwSource<'a>,
    /// The network graph.
    pub graph: &'a Graph,
}

impl<'a> DelayCtx<'a> {
    /// Creates a context from precomputed hardware readings — for driving a
    /// [`DelayModel`] outside the engine (tests, analysis tools).
    pub fn new(
        src: NodeId,
        dst: NodeId,
        now: f64,
        src_hw: f64,
        dst_hw: f64,
        graph: &'a Graph,
    ) -> Self {
        DelayCtx {
            src,
            dst,
            now,
            src_hw: HwSource::Reading(src_hw),
            dst_hw: HwSource::Reading(dst_hw),
            graph,
        }
    }

    /// Creates a context that evaluates the clocks lazily (engine hot path).
    pub(crate) fn from_clocks(
        src: NodeId,
        dst: NodeId,
        now: f64,
        src_clock: &'a HardwareClock,
        dst_clock: &'a HardwareClock,
        graph: &'a Graph,
    ) -> Self {
        DelayCtx {
            src,
            dst,
            now,
            src_hw: HwSource::Clock(src_clock),
            dst_hw: HwSource::Clock(dst_clock),
            graph,
        }
    }

    /// Like [`DelayCtx::from_clocks`], but for a cross-partition send in the
    /// parallel engine: the receiver lives on another partition, so its
    /// clock replica here may be stale and no reading is offered at all.
    pub(crate) fn from_clocks_remote_dst(
        src: NodeId,
        dst: NodeId,
        now: f64,
        src_clock: &'a HardwareClock,
        graph: &'a Graph,
    ) -> Self {
        DelayCtx {
            src,
            dst,
            now,
            src_hw: HwSource::Clock(src_clock),
            dst_hw: HwSource::Unavailable,
            graph,
        }
    }

    /// Sender's hardware-clock reading at send time.
    pub fn src_hw(&self) -> f64 {
        self.src_hw.resolve(self.now)
    }

    /// Receiver's hardware-clock reading at send time (0 if unstarted).
    pub fn dst_hw(&self) -> f64 {
        self.dst_hw.resolve(self.now)
    }
}

/// A conservative-lookahead promise made by a [`DelayModel`], consumed by
/// the windowed parallel engine (see `docs/PARALLEL.md`).
///
/// A model returning `Some(Lookahead { floor, valid_until })` from
/// [`DelayModel::lookahead_at`] guarantees that for every send at a time in
/// `[now, valid_until)`:
///
/// * the delivery is [`Delivery::After(d)`](Delivery::After) with
///   `d >= floor`, an [`Delivery::AfterEcho`] with both delays `>= floor`,
///   or a [`Delivery::Drop`] (which schedules nothing and therefore cannot
///   violate any window) — never [`Delivery::AtReceiverHw`];
/// * the delivery is a *pure function* of the [`DelayCtx`] — independent of
///   call order and of calls on cloned copies of the model (which rules out
///   models drawing from an RNG stream), and it never consults
///   [`DelayCtx::dst_hw`] (the receiver may live on another partition whose
///   replica of its clock is stale).
///
/// `floor` is the conservative lookahead: no message sent inside a time
/// window of width `floor` can be delivered within that same window, so
/// graph partitions can process such a window independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lookahead {
    /// Positive lower bound on every delay in the validity span.
    pub floor: f64,
    /// First instant at which the promise expires (`f64::INFINITY` for
    /// time-invariant models). The parallel engine re-queries at expiry and
    /// falls back to the sequential loop if the promise is gone.
    pub valid_until: f64,
}

/// Chooses message deliveries. Implementations play the adversary (or a
/// benign randomized environment) of the paper's model.
pub trait DelayModel {
    /// Decides the delivery of a message sent under the given context.
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery;

    /// The delay-uncertainty bound `𝒯` this model respects, if fixed.
    ///
    /// Used by analysis code to compare observed skews against bounds; a
    /// model returning `None` makes no static promise.
    fn uncertainty(&self) -> Option<f64> {
        None
    }

    /// A static lower bound on every delay this model will ever produce,
    /// or `None` if the model cannot promise one (it may return `0`, use
    /// [`Delivery::AtReceiverHw`], or depend on call order — e.g. an RNG
    /// stream, which clones differently onto partitions than it plays out
    /// sequentially).
    ///
    /// `Some(0.0)` is a valid answer ("delays are bounded below by zero");
    /// only a *strictly positive* floor enables parallel execution. The
    /// default is `None`: pure opt-in, every existing model stays sequential
    /// until it explicitly promises a floor.
    fn min_delay(&self) -> Option<f64> {
        None
    }

    /// The lookahead promise in effect at time `now`, if any.
    ///
    /// The default derives a time-invariant promise from
    /// [`DelayModel::min_delay`]: a strictly positive static floor holds
    /// forever. Time-varying adversaries (e.g. a wavefront that flips to
    /// zero delays at a known instant) override this to bound the promise's
    /// validity; the parallel engine merges back to the sequential loop when
    /// a promise expires without a successor.
    fn lookahead_at(&self, now: f64) -> Option<Lookahead> {
        let _ = now;
        self.min_delay()
            .filter(|floor| *floor > 0.0)
            .map(|floor| Lookahead {
                floor,
                valid_until: f64::INFINITY,
            })
    }
}

/// Every message takes exactly `delay` time.
///
/// With equal constant delays the system looks synchronous; this is the
/// benign baseline environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantDelay {
    delay: f64,
}

impl ConstantDelay {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    pub fn new(delay: f64) -> Self {
        assert!(delay.is_finite() && delay >= 0.0, "invalid delay {delay}");
        ConstantDelay { delay }
    }
}

impl DelayModel for ConstantDelay {
    fn delivery(&mut self, _ctx: &DelayCtx<'_>) -> Delivery {
        Delivery::After(self.delay)
    }

    fn uncertainty(&self) -> Option<f64> {
        Some(self.delay)
    }

    fn min_delay(&self) -> Option<f64> {
        Some(self.delay)
    }
}

/// Delays drawn i.i.d. uniformly from `[0, 𝒯]`.
///
/// The "random delays" regime of wireless sensor networks discussed in the
/// paper's related work: observed skews under this model are far below the
/// worst case (experiment F11).
#[derive(Debug, Clone)]
pub struct UniformDelay {
    t_max: f64,
    rng: ChaCha8Rng,
}

impl UniformDelay {
    /// Creates the model with uncertainty `t_max` and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `t_max` is negative or non-finite.
    pub fn new(t_max: f64, seed: u64) -> Self {
        assert!(t_max.is_finite() && t_max >= 0.0, "invalid 𝒯 {t_max}");
        use rand::SeedableRng;
        UniformDelay {
            t_max,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for UniformDelay {
    fn delivery(&mut self, _ctx: &DelayCtx<'_>) -> Delivery {
        Delivery::After(self.rng.gen_range(0.0..=self.t_max))
    }

    fn uncertainty(&self) -> Option<f64> {
        Some(self.t_max)
    }
}

/// Delays that are `0` with probability `p_fast` and `𝒯` otherwise.
///
/// A crude but effective stochastic adversary: extreme delays are what
/// build worst-case skew.
#[derive(Debug, Clone)]
pub struct BimodalDelay {
    t_max: f64,
    p_fast: f64,
    rng: ChaCha8Rng,
}

impl BimodalDelay {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `t_max < 0` or `p_fast` is not a probability.
    pub fn new(t_max: f64, p_fast: f64, seed: u64) -> Self {
        assert!(t_max.is_finite() && t_max >= 0.0, "invalid 𝒯 {t_max}");
        assert!(
            (0.0..=1.0).contains(&p_fast),
            "invalid probability {p_fast}"
        );
        use rand::SeedableRng;
        BimodalDelay {
            t_max,
            p_fast,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for BimodalDelay {
    fn delivery(&mut self, _ctx: &DelayCtx<'_>) -> Delivery {
        if self.rng.gen_bool(self.p_fast) {
            Delivery::After(0.0)
        } else {
            Delivery::After(self.t_max)
        }
    }

    fn uncertainty(&self) -> Option<f64> {
        Some(self.t_max)
    }
}

/// Direction-dependent delays relative to a reference node, the shape used
/// by the paper's execution `E₁` (proof of Theorem 7.2): messages moving
/// *toward* the reference node take `toward`, messages moving away (or
/// sideways) take `away`.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectionalDelay {
    dist: Vec<u32>,
    toward: f64,
    away: f64,
    t_max: f64,
}

impl DirectionalDelay {
    /// Creates the model with distances measured from `reference` in `graph`.
    ///
    /// # Panics
    ///
    /// Panics if either delay is negative or non-finite.
    pub fn new(graph: &Graph, reference: NodeId, toward: f64, away: f64) -> Self {
        assert!(
            toward.is_finite() && toward >= 0.0,
            "invalid delay {toward}"
        );
        assert!(away.is_finite() && away >= 0.0, "invalid delay {away}");
        DirectionalDelay {
            dist: graph.distances_from(reference),
            toward,
            away,
            t_max: toward.max(away),
        }
    }
}

impl DelayModel for DirectionalDelay {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        let toward_ref = self.dist[ctx.dst.index()] < self.dist[ctx.src.index()];
        Delivery::After(if toward_ref { self.toward } else { self.away })
    }

    fn uncertainty(&self) -> Option<f64> {
        Some(self.t_max)
    }

    fn min_delay(&self) -> Option<f64> {
        // Pure function of the edge direction; the floor is the smaller leg.
        // The paper's `E₁` sets one leg to 0, so this usually stays
        // sequential — correctly so, since 0-delay messages defeat any
        // window width.
        Some(self.toward.min(self.away))
    }
}

/// Wraps any delay model with i.i.d. message loss.
///
/// **Beyond the paper's model** (its links are reliable): the robustness
/// extension X1 uses this to measure how gracefully the algorithms degrade
/// under loss — `A^opt`'s periodic broadcasts make it self-healing, at the
/// cost of staler estimates.
#[derive(Debug, Clone)]
pub struct LossyDelay<D> {
    inner: D,
    loss: f64,
    rng: ChaCha8Rng,
}

impl<D: DelayModel> LossyDelay<D> {
    /// Wraps `inner`, dropping each transmission independently with
    /// probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics unless `loss ∈ [0, 1)`.
    pub fn new(inner: D, loss: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&loss), "invalid loss rate {loss}");
        use rand::SeedableRng;
        LossyDelay {
            inner,
            loss,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: DelayModel> DelayModel for LossyDelay<D> {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        if self.loss > 0.0 && self.rng.gen_bool(self.loss) {
            Delivery::Drop(DropCause::Model)
        } else {
            self.inner.delivery(ctx)
        }
    }

    fn uncertainty(&self) -> Option<f64> {
        self.inner.uncertainty()
    }
}

/// A delay model defined by a closure — the escape hatch with which the
/// adversary crate implements the paper's bespoke execution constructions.
#[derive(Debug, Clone)]
pub struct FnDelay<F> {
    f: F,
    t_max: Option<f64>,
}

impl<F> FnDelay<F>
where
    F: FnMut(&DelayCtx<'_>) -> Delivery,
{
    /// Wraps `f`; `t_max` is the advertised uncertainty bound (if any).
    pub fn new(f: F, t_max: Option<f64>) -> Self {
        FnDelay { f, t_max }
    }
}

impl<F> DelayModel for FnDelay<F>
where
    F: FnMut(&DelayCtx<'_>) -> Delivery,
{
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        (self.f)(ctx)
    }

    fn uncertainty(&self) -> Option<f64> {
        self.t_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_graph::topology;

    fn ctx<'a>(graph: &'a Graph, src: usize, dst: usize) -> DelayCtx<'a> {
        DelayCtx::new(NodeId(src), NodeId(dst), 1.0, 1.0, 1.0, graph)
    }

    #[test]
    fn constant_delay_is_constant() {
        let g = topology::path(2);
        let mut m = ConstantDelay::new(0.25);
        assert_eq!(m.delivery(&ctx(&g, 0, 1)), Delivery::After(0.25));
        assert_eq!(m.uncertainty(), Some(0.25));
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn constant_delay_rejects_negative() {
        let _ = ConstantDelay::new(-1.0);
    }

    #[test]
    fn uniform_delay_is_seeded_and_in_range() {
        let g = topology::path(2);
        let mut a = UniformDelay::new(0.5, 9);
        let mut b = UniformDelay::new(0.5, 9);
        for _ in 0..100 {
            let da = a.delivery(&ctx(&g, 0, 1));
            let db = b.delivery(&ctx(&g, 0, 1));
            assert_eq!(da, db);
            match da {
                Delivery::After(d) => assert!((0.0..=0.5).contains(&d)),
                _ => panic!("uniform model only uses After"),
            }
        }
    }

    #[test]
    fn bimodal_delay_takes_extremes_only() {
        let g = topology::path(2);
        let mut m = BimodalDelay::new(0.5, 0.5, 3);
        let (mut fast, mut slow) = (0, 0);
        for _ in 0..200 {
            match m.delivery(&ctx(&g, 0, 1)) {
                Delivery::After(d) if d < 0.25 => fast += 1,
                Delivery::After(_) => slow += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(fast > 0 && slow > 0);
    }

    #[test]
    fn directional_delay_distinguishes_direction() {
        let g = topology::path(3);
        let mut m = DirectionalDelay::new(&g, NodeId(0), 0.5, 0.0);
        // 2 -> 1 moves toward node 0.
        assert_eq!(m.delivery(&ctx(&g, 2, 1)), Delivery::After(0.5));
        // 1 -> 2 moves away.
        assert_eq!(m.delivery(&ctx(&g, 1, 2)), Delivery::After(0.0));
        assert_eq!(m.uncertainty(), Some(0.5));
    }

    #[test]
    fn lossy_delay_drops_at_the_configured_rate() {
        let g = topology::path(2);
        let mut m = LossyDelay::new(ConstantDelay::new(0.1), 0.3, 5);
        let mut dropped = 0;
        let trials = 2000;
        for _ in 0..trials {
            if m.delivery(&ctx(&g, 0, 1)) == Delivery::Drop(DropCause::Model) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed loss rate {rate}");
        assert_eq!(m.uncertainty(), Some(0.1));
    }

    #[test]
    fn lossy_delay_with_zero_loss_is_transparent() {
        let g = topology::path(2);
        let mut m = LossyDelay::new(ConstantDelay::new(0.2), 0.0, 5);
        for _ in 0..50 {
            assert_eq!(m.delivery(&ctx(&g, 0, 1)), Delivery::After(0.2));
        }
    }

    #[test]
    #[should_panic(expected = "invalid loss rate")]
    fn lossy_delay_rejects_certain_loss() {
        let _ = LossyDelay::new(ConstantDelay::new(0.1), 1.0, 5);
    }

    #[test]
    fn constant_delay_promises_its_delay_as_floor() {
        let m = ConstantDelay::new(0.25);
        assert_eq!(m.min_delay(), Some(0.25));
        assert_eq!(
            m.lookahead_at(0.0),
            Some(Lookahead {
                floor: 0.25,
                valid_until: f64::INFINITY
            })
        );
        // The promise is time-invariant.
        assert_eq!(m.lookahead_at(0.0), m.lookahead_at(1e9));
    }

    #[test]
    fn zero_constant_delay_offers_no_lookahead() {
        // `min_delay` truthfully reports the floor (0), but the derived
        // lookahead filters it out: a 0-width window cannot advance, so the
        // engine must fall back to the sequential loop.
        let m = ConstantDelay::new(0.0);
        assert_eq!(m.min_delay(), Some(0.0));
        assert_eq!(m.lookahead_at(0.0), None);
    }

    #[test]
    fn uniform_delay_promises_nothing() {
        // Uniform draws from an RNG stream: replaying the stream on cloned
        // partition-local copies would diverge from the sequential order,
        // and the infimum of the support is 0 anyway.
        let m = UniformDelay::new(0.5, 9);
        assert_eq!(m.min_delay(), None);
        assert_eq!(m.lookahead_at(0.0), None);
    }

    #[test]
    fn bimodal_delay_promises_nothing() {
        let m = BimodalDelay::new(0.5, 0.5, 3);
        assert_eq!(m.min_delay(), None);
        assert_eq!(m.lookahead_at(0.0), None);
    }

    #[test]
    fn directional_delay_floor_is_the_smaller_leg() {
        let g = topology::path(3);
        let m = DirectionalDelay::new(&g, NodeId(0), 0.5, 0.2);
        assert_eq!(m.min_delay(), Some(0.2));
        assert_eq!(
            m.lookahead_at(0.0).map(|la| la.floor),
            Some(0.2),
            "positive floor yields a usable lookahead"
        );
        // The paper's E₁ shape (one leg at 0) truthfully reports floor 0 and
        // therefore no lookahead — sequential fallback, not a wrong answer.
        let e1 = DirectionalDelay::new(&g, NodeId(0), 0.5, 0.0);
        assert_eq!(e1.min_delay(), Some(0.0));
        assert_eq!(e1.lookahead_at(0.0), None);
    }

    #[test]
    fn lossy_delay_promises_nothing_even_over_a_constant_inner() {
        // Loss decisions come from an RNG stream, so delivery is call-order
        // dependent even though the inner model has a positive floor.
        let m = LossyDelay::new(ConstantDelay::new(0.2), 0.3, 5);
        assert_eq!(m.min_delay(), None);
        assert_eq!(m.lookahead_at(0.0), None);
    }

    #[test]
    fn fn_delay_promises_nothing() {
        // Arbitrary closures may use `AtReceiverHw` (the paper's shifting
        // adversary) or return 0; no promise can be made for them.
        let m = FnDelay::new(
            |c: &DelayCtx<'_>| Delivery::AtReceiverHw(c.src_hw() + 1.0),
            Some(1.0),
        );
        assert_eq!(m.min_delay(), None);
        assert_eq!(m.lookahead_at(0.0), None);
    }

    #[test]
    fn fn_delay_invokes_closure() {
        let g = topology::path(2);
        let mut m = FnDelay::new(
            |c: &DelayCtx<'_>| Delivery::AtReceiverHw(c.src_hw() + 1.0),
            Some(1.0),
        );
        assert_eq!(m.delivery(&ctx(&g, 0, 1)), Delivery::AtReceiverHw(2.0));
        assert_eq!(m.uncertainty(), Some(1.0));
    }
}
