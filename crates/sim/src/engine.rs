//! The discrete-event execution engine.

use gcs_graph::{Graph, NodeId};
use gcs_time::{HardwareClock, RateSchedule};

use crate::delay::{DelayCtx, DelayModel, Delivery};
use crate::pending::{PendingHw, PendingSlab};
use crate::profile::EngineProfile;
use crate::protocol::{Action, Context, Protocol, TimerId};
use crate::queue::EventQueue;
use crate::sink::{EngineEvent, EventSink, NullSink};
use std::time::Instant;

/// Counters over the messages exchanged in an execution.
///
/// `send_events` counts broadcast events (the unit of the paper's message
/// and bit complexity accounting — a node sends identical information to all
/// neighbours at a send event, its Section 6.2); `transmissions` counts
/// per-edge message copies; `deliveries` counts received messages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStats {
    /// Number of send events (one per `send`/`send_all` action).
    pub send_events: u64,
    /// Number of per-edge message transmissions.
    pub transmissions: u64,
    /// Number of delivered messages.
    pub deliveries: u64,
    /// Total number of dropped transmissions (always 0 under the paper's
    /// reliable-links model). Always equals
    /// `dropped_model + dropped_faults` — the per-cause counters partition
    /// the total, nothing is double-counted.
    pub dropped: u64,
    /// Transmissions dropped by the delay model itself (e.g. the `lossy`
    /// wrapper's i.i.d. loss).
    pub dropped_model: u64,
    /// Transmissions dropped by an injected fault (the chaos layer's drop,
    /// partition, and crash clauses).
    pub dropped_faults: u64,
    /// Fault-injected duplicate copies delivered in addition to their
    /// originals ([`Delivery::AfterEcho`]). Each duplicate also counts as
    /// one transmission and (eventually) one delivery.
    pub duplicated: u64,
    /// Send events per node.
    pub per_node_sends: Vec<u64>,
    /// Messages delivered to each node.
    pub per_node_deliveries: Vec<u64>,
    /// Transmissions dropped en route to each node (attributed to the
    /// intended receiver).
    pub per_node_dropped: Vec<u64>,
}

#[derive(Debug, Clone)]
pub(crate) enum EventKind<M> {
    /// Spontaneous initialization of a node.
    Wake { node: NodeId },
    /// Real-time message delivery.
    Deliver { src: NodeId, dst: NodeId, msg: M },
    /// A hardware-value item (timer or hw-targeted delivery) may be due.
    /// `(slot, gen)` addresses the item in the node's [`PendingSlab`]; a
    /// generation mismatch marks the entry stale in O(1).
    HwDue { node: NodeId, slot: u32, gen: u64 },
    /// Apply the next step of the node's pre-configured rate schedule.
    RateStep { node: NodeId, at: f64 },
}

impl<M> EventKind<M> {
    /// The node on which this event executes — the partition router's key.
    pub(crate) fn home(&self) -> NodeId {
        match self {
            EventKind::Wake { node }
            | EventKind::HwDue { node, .. }
            | EventKind::RateStep { node, .. } => *node,
            EventKind::Deliver { dst, .. } => *dst,
        }
    }
}

/// Hot per-node plane: what every dispatched event touches — the hardware
/// clock and the sink's multiplier-change detector — packed contiguously
/// so a wake reads one cache line of per-node engine state (plus the
/// node's entry in the protocol and pending planes).
#[derive(Debug, Clone)]
pub(crate) struct HotNode {
    pub(crate) hw: HardwareClock,
    /// The protocol's logical rate multiplier after its last handler ran
    /// (for change detection when a sink is installed).
    last_multiplier: f64,
}

/// Cold per-node plane: rate-schedule and arming-path state that typical
/// wakes never read, kept off the hot cache lines.
#[derive(Debug, Clone)]
struct ColdNode<M> {
    schedule: RateSchedule,
    /// Timer slot -> slab slot, for replacement semantics. Protocols use a
    /// handful of timer slots at most, so a linear scan beats hashing.
    timer_slots: Vec<(TimerId, u32)>,
    /// Hardware-targeted deliveries addressed to this node before it was
    /// initialized; activated at start time.
    prestart: Vec<PendingHw<M>>,
}

/// Struct-of-arrays node state: parallel planes indexed by node id. The
/// split keeps each plane's per-node entries adjacent, so an event that
/// reads node `v`'s clock, protocol, and pending slab touches three short
/// runs of contiguous memory instead of one sparse ~300-byte record.
#[derive(Debug, Clone)]
pub(crate) struct Nodes<P: Protocol> {
    pub(crate) hot: Vec<HotNode>,
    pub(crate) proto: Vec<P>,
    /// Pending hardware-value items per node (slab-backed,
    /// allocation-free in steady state).
    pub(crate) pending: Vec<PendingSlab<P::Msg>>,
    cold: Vec<ColdNode<P::Msg>>,
}

impl<P: Protocol> Nodes<P> {
    pub(crate) fn len(&self) -> usize {
        self.hot.len()
    }

    /// Swaps node `i`'s state across engines — the parallel driver's merge,
    /// which reabsorbs owned nodes from partition replicas plane by plane.
    pub(crate) fn swap_entry(&mut self, other: &mut Self, i: usize) {
        std::mem::swap(&mut self.hot[i], &mut other.hot[i]);
        std::mem::swap(&mut self.proto[i], &mut other.proto[i]);
        std::mem::swap(&mut self.pending[i], &mut other.pending[i]);
        std::mem::swap(&mut self.cold[i], &mut other.cold[i]);
    }
}

/// Per-node pending-slab slots pre-reserved at build time: `A^opt` keeps
/// 2–3 items concurrently pending (send timer, rate timer, the occasional
/// hardware-targeted delivery), so 4 covers the steady state without
/// mid-run slab growth even at n = 10⁶.
const PENDING_PREALLOC: usize = 4;

/// Pre-reserved timer-slot index entries per node (same sizing argument).
const TIMER_SLOT_PREALLOC: usize = 4;

/// Builder for [`Engine`].
///
/// # Example
///
/// See the crate-level example.
#[derive(Debug)]
pub struct EngineBuilder<P: Protocol, D: DelayModel, S: EventSink = NullSink> {
    graph: Graph,
    protocols: Option<Vec<P>>,
    delay: Option<D>,
    schedules: Option<Vec<RateSchedule>>,
    sink: S,
    profiling: bool,
}

impl<P: Protocol, D: DelayModel, S: EventSink> EngineBuilder<P, D, S> {
    /// Sets the per-node protocol instances (one per node, in id order).
    pub fn protocols(mut self, protocols: Vec<P>) -> Self {
        self.protocols = Some(protocols);
        self
    }

    /// Sets the delay model.
    pub fn delay_model(mut self, delay: D) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Sets per-node hardware-rate schedules (defaults to rate 1 everywhere).
    pub fn rate_schedules(mut self, schedules: Vec<RateSchedule>) -> Self {
        self.schedules = Some(schedules);
        self
    }

    /// Installs an [`EventSink`] that receives every engine transition (and
    /// per-event state snapshots if it asks for them). Defaults to
    /// [`NullSink`], which compiles to the uninstrumented engine.
    pub fn event_sink<S2: EventSink>(self, sink: S2) -> EngineBuilder<P, D, S2> {
        EngineBuilder {
            graph: self.graph,
            protocols: self.protocols,
            delay: self.delay,
            schedules: self.schedules,
            sink,
            profiling: self.profiling,
        }
    }

    /// Enables wall-clock phase profiling (see [`EngineProfile`]). Off by
    /// default; when off, the engine carries no timing overhead. Profiling
    /// never touches the event queue or the sink, so enabling it cannot
    /// change an execution.
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics if protocols or the delay model are missing, or if the
    /// protocol/schedule counts do not match the node count.
    pub fn build(self) -> Engine<P, D, S> {
        let n = self.graph.len();
        let protocols = self.protocols.expect("protocols not set");
        assert_eq!(protocols.len(), n, "need one protocol per node");
        let schedules = self
            .schedules
            .unwrap_or_else(|| vec![RateSchedule::default(); n]);
        assert_eq!(schedules.len(), n, "need one rate schedule per node");
        let delay = self.delay.expect("delay model not set");
        // Every plane (and each node's slab/timer index) is pre-reserved
        // here so a steady-state run never grows node storage mid-run —
        // `tests/zero_alloc.rs` pins this at both small and large n.
        let mut hot = Vec::with_capacity(n);
        let mut proto_plane = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        let mut cold = Vec::with_capacity(n);
        for (proto, schedule) in protocols.into_iter().zip(schedules) {
            hot.push(HotNode {
                hw: HardwareClock::new(),
                last_multiplier: proto.rate_multiplier(),
            });
            pending.push(PendingSlab::with_capacity(PENDING_PREALLOC));
            cold.push(ColdNode {
                schedule,
                timer_slots: Vec::with_capacity(TIMER_SLOT_PREALLOC),
                prestart: Vec::new(),
            });
            proto_plane.push(proto);
        }
        let nodes = Nodes {
            hot,
            proto: proto_plane,
            pending,
            cold,
        };
        // A strictly positive static delay floor turns on the queue's
        // calendar layer (`w`-wide buckets); otherwise the queue is the
        // plain 4-ary heap. Same pop order either way (see `queue.rs`).
        let floor = delay.min_delay();
        Engine {
            graph: self.graph,
            delay,
            now: 0.0,
            seq: 0,
            // Pre-sized so the heap reaches its steady-state high-water
            // mark without reallocating mid-run for typical workloads; it
            // grows (and is then reused) beyond that.
            queue: EventQueue::with_capacity_and_floor(4 * n + 16, floor),
            nodes,
            stats: MessageStats {
                per_node_sends: vec![0; n],
                per_node_deliveries: vec![0; n],
                per_node_dropped: vec![0; n],
                ..MessageStats::default()
            },
            sink: self.sink,
            clock_buf: Vec::with_capacity(n),
            action_buf: Vec::with_capacity(8),
            profile: self.profiling.then(Box::default),
            remote: None,
        }
    }
}

/// The deterministic discrete-event engine executing one [`Protocol`] per
/// node of a [`Graph`] under a [`DelayModel`] and per-node hardware-clock
/// rate schedules.
///
/// The engine *is* the paper's execution `E`: it fixes the hardware rates and
/// all message delays. It is `Clone`, so a driver can snapshot the world,
/// run ahead to inspect the future, rewind, and continue differently — the
/// *extended execution* pattern of the paper's lower-bound proofs.
///
/// The third type parameter is an [`EventSink`] receiving every transition;
/// it defaults to [`NullSink`] (no observation, no overhead). See the
/// [`sink`](crate::sink) module docs.
#[derive(Debug, Clone)]
pub struct Engine<P: Protocol, D: DelayModel, S: EventSink = NullSink> {
    pub(crate) graph: Graph,
    pub(crate) delay: D,
    pub(crate) now: f64,
    pub(crate) seq: u64,
    pub(crate) queue: EventQueue<EventKind<P::Msg>>,
    pub(crate) nodes: Nodes<P>,
    pub(crate) stats: MessageStats,
    pub(crate) sink: S,
    /// Scratch buffer for per-event logical-clock snapshots.
    pub(crate) clock_buf: Vec<f64>,
    /// Reusable action buffer lent to each protocol handler's [`Context`]
    /// and drained by `apply_actions` — no per-event `Vec` allocation.
    pub(crate) action_buf: Vec<Action<P::Msg>>,
    /// Phase timers, present only when profiling was requested (boxed to
    /// keep the common unprofiled engine small).
    pub(crate) profile: Option<Box<EngineProfile>>,
    /// Present only on a partition replica inside the parallel driver
    /// (`parallel.rs`): identifies the owned node set and collects
    /// cross-partition sends and pop records. `None` on every engine a user
    /// builds, costing the sequential hot path one predictable branch.
    pub(crate) remote: Option<Box<crate::parallel::RemoteCtx<P>>>,
}

impl<P: Protocol, D: DelayModel> Engine<P, D, NullSink> {
    /// Starts building an engine over `graph`.
    pub fn builder(graph: Graph) -> EngineBuilder<P, D, NullSink> {
        EngineBuilder {
            graph,
            protocols: None,
            delay: None,
            schedules: None,
            sink: NullSink,
            profiling: false,
        }
    }
}

impl<P: Protocol, D: DelayModel, S: EventSink> Engine<P, D, S> {
    /// The network graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Message counters so far.
    pub fn message_stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Immutable access to a node's protocol state.
    pub fn protocol(&self, v: NodeId) -> &P {
        &self.nodes.proto[v.index()]
    }

    /// Mutable access to the delay model (e.g. to reconfigure an adversary
    /// between phases).
    pub fn delay_model_mut(&mut self) -> &mut D {
        &mut self.delay
    }

    /// Immutable access to the installed event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the installed event sink (e.g. to snapshot metrics
    /// mid-execution).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the engine, returning the installed event sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The accumulated phase timers, when profiling is enabled.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_deref()
    }

    /// The hardware-clock reading `H_v(now)`.
    pub fn hardware_value(&self, v: NodeId) -> f64 {
        self.nodes.hot[v.index()].hw.value_at(self.now)
    }

    /// The current hardware rate of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not yet initialized.
    pub fn hardware_rate(&self, v: NodeId) -> f64 {
        self.nodes.hot[v.index()].hw.rate()
    }

    /// The logical-clock reading `L_v(now)`.
    pub fn logical_value(&self, v: NodeId) -> f64 {
        let hw = self.hardware_value(v);
        self.nodes.proto[v.index()].logical_value(hw)
    }

    /// All logical-clock readings, indexed by node.
    pub fn logical_values(&self) -> Vec<f64> {
        self.graph.nodes().map(|v| self.logical_value(v)).collect()
    }

    /// Whether node `v` has been initialized.
    pub fn is_started(&self, v: NodeId) -> bool {
        self.nodes.hot[v.index()].hw.is_started()
    }

    /// Schedules a spontaneous wake of `v` at time `t ≥ now`. Waking an
    /// already-initialized node is a no-op at processing time.
    ///
    /// # Panics
    ///
    /// Panics if `t < now`.
    pub fn wake(&mut self, v: NodeId, t: f64) {
        assert!(t >= self.now, "cannot wake in the past");
        self.push(t, EventKind::Wake { node: v });
    }

    /// Wakes every node at time `t` (the all-initialized-at-once setting of
    /// the paper's Section 7 lower bounds).
    pub fn wake_all_at(&mut self, t: f64) {
        for v in 0..self.nodes.len() {
            self.wake(NodeId(v), t);
        }
    }

    /// Overrides node `v`'s hardware rate from the current instant onward.
    ///
    /// Pre-configured schedule steps that lie in the future will still apply
    /// when their time comes. Pending hardware-value items are rescheduled.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not initialized or `rate <= 0`.
    pub fn set_hardware_rate(&mut self, v: NodeId, rate: f64) {
        let now = self.now;
        self.nodes.hot[v.index()].hw.set_rate(now, rate);
        if self.sink.enabled() {
            self.sink.record(&EngineEvent::RateStep {
                node: v,
                t: now,
                rate,
            });
        }
        self.reschedule_pending(v);
    }

    /// Time of the next queued event, if any.
    pub fn next_event_time(&self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Number of events currently queued (live and superseded entries).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Processes the single next event (regardless of horizon); returns its
    /// time, or `None` if the queue is empty.
    pub fn step(&mut self) -> Option<f64> {
        let (time, kind) = self.queue.pop()?;
        debug_assert!(time >= self.now - 1e-9, "event in the past");
        let started = self.profile.as_ref().map(|_| Instant::now());
        self.now = self.now.max(time);
        self.dispatch(kind);
        self.maybe_snapshot();
        if let (Some(profile), Some(started)) = (self.profile.as_deref_mut(), started) {
            profile.dispatch += started.elapsed();
            profile.events += 1;
        }
        Some(self.now)
    }

    /// Processes all events up to and including time `t`, then advances the
    /// clock to exactly `t`.
    pub fn run_until(&mut self, t: f64) {
        assert!(t >= self.now, "cannot run backwards");
        while let Some(next) = self.next_event_time() {
            if next > t {
                break;
            }
            self.step();
        }
        self.now = t;
        self.maybe_snapshot();
    }

    /// Like [`Engine::run_until`], invoking `observer` after every processed
    /// event (and once at the horizon). Used by the analysis layer to record
    /// exact skew extrema: logical clocks are piecewise linear between
    /// events, so per-event sampling captures every kink.
    ///
    /// New code should prefer installing an [`EventSink`] with
    /// [`EngineBuilder::event_sink`] — sinks see the same per-event cadence
    /// through [`EventSink::snapshot`] without borrowing the engine.
    pub fn run_until_observed(&mut self, t: f64, mut observer: impl FnMut(&Self)) {
        assert!(t >= self.now, "cannot run backwards");
        while let Some(next) = self.next_event_time() {
            if next > t {
                break;
            }
            self.step();
            observer(self);
        }
        self.now = t;
        self.maybe_snapshot();
        observer(self);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Reports the post-event state to the sink, if it wants state.
    pub(crate) fn maybe_snapshot(&mut self) {
        if !self.sink.wants_snapshots() {
            return;
        }
        let started = self.profile.as_ref().map(|_| Instant::now());
        let mut buf = std::mem::take(&mut self.clock_buf);
        buf.clear();
        let now = self.now;
        buf.extend(
            self.nodes
                .proto
                .iter()
                .zip(&self.nodes.hot)
                .map(|(p, h)| p.logical_value(h.hw.value_at(now))),
        );
        self.sink.snapshot(now, &buf, self.queue.len());
        self.clock_buf = buf;
        if let (Some(profile), Some(started)) = (self.profile.as_deref_mut(), started) {
            profile.snapshot += started.elapsed();
            profile.snapshots += 1;
        }
    }

    /// Emits a multiplier-change event if `v`'s protocol changed its
    /// logical rate multiplier while handling the last event.
    fn note_multiplier(&mut self, v: NodeId) {
        if !self.sink.enabled() {
            return;
        }
        let multiplier = self.nodes.proto[v.index()].rate_multiplier();
        if multiplier != self.nodes.hot[v.index()].last_multiplier {
            self.nodes.hot[v.index()].last_multiplier = multiplier;
            self.sink.record(&EngineEvent::MultiplierChange {
                node: v,
                t: self.now,
                multiplier,
            });
        }
    }

    fn push(&mut self, time: f64, kind: EventKind<P::Msg>) {
        assert!(time.is_finite(), "non-finite event time");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, kind);
    }

    pub(crate) fn dispatch(&mut self, kind: EventKind<P::Msg>) {
        match kind {
            EventKind::Wake { node } => self.handle_wake(node),
            EventKind::Deliver { src, dst, msg } => self.handle_deliver(src, dst, msg),
            EventKind::HwDue { node, slot, gen } => self.handle_hw_due(node, slot, gen),
            EventKind::RateStep { node, at } => self.handle_rate_step(node, at),
        }
    }

    fn handle_wake(&mut self, v: NodeId) {
        if self.nodes.hot[v.index()].hw.is_started() {
            return;
        }
        self.start_node(v);
        let hw = self.hardware_value(v);
        if self.sink.enabled() {
            self.sink.record(&EngineEvent::Wake {
                node: v,
                t: self.now,
                hw,
            });
        }
        let started = self.profile.as_ref().map(|_| Instant::now());
        let mut actions = std::mem::take(&mut self.action_buf);
        {
            let mut ctx = Context::new(v, hw, self.graph.neighbors(v), &mut actions);
            self.nodes.proto[v.index()].on_start(&mut ctx);
        }
        self.note_protocol(started);
        self.apply_actions(v, &mut actions);
        self.action_buf = actions;
        self.note_multiplier(v);
    }

    /// Credits time since `started` to the protocol phase (profiling only).
    fn note_protocol(&mut self, started: Option<Instant>) {
        if let (Some(profile), Some(started)) = (self.profile.as_deref_mut(), started) {
            profile.protocol += started.elapsed();
            profile.protocol_calls += 1;
        }
    }

    fn start_node(&mut self, v: NodeId) {
        let now = self.now;
        let i = v.index();
        let cold = &mut self.nodes.cold[i];
        let rate = cold.schedule.rate_at(now);
        let change = cold.schedule.next_change_after(now);
        let prestart = std::mem::take(&mut cold.prestart);
        self.nodes.hot[i].hw.start(now, rate);
        if let Some(change) = change {
            self.push(
                change,
                EventKind::RateStep {
                    node: v,
                    at: change,
                },
            );
        }
        for item in prestart {
            let target = item.target();
            let (slot, gen) = self.nodes.pending[i].insert(item);
            self.schedule_hw_due(v, slot, gen, target);
        }
    }

    fn handle_rate_step(&mut self, v: NodeId, at: f64) {
        let i = v.index();
        if !self.nodes.hot[i].hw.is_started() {
            return;
        }
        let rate = self.nodes.cold[i].schedule.rate_at(at);
        self.nodes.hot[i].hw.set_rate(self.now, rate);
        if self.sink.enabled() {
            self.sink.record(&EngineEvent::RateStep {
                node: v,
                t: self.now,
                rate,
            });
        }
        if let Some(change) = self.nodes.cold[i].schedule.next_change_after(at) {
            self.push(
                change,
                EventKind::RateStep {
                    node: v,
                    at: change,
                },
            );
        }
        self.reschedule_pending(v);
    }

    fn handle_deliver(&mut self, src: NodeId, dst: NodeId, msg: P::Msg) {
        self.stats.deliveries += 1;
        self.stats.per_node_deliveries[dst.index()] += 1;
        let fresh = !self.nodes.hot[dst.index()].hw.is_started();
        if fresh {
            self.start_node(dst);
        }
        let hw = self.hardware_value(dst);
        if self.sink.enabled() {
            if fresh {
                self.sink.record(&EngineEvent::Wake {
                    node: dst,
                    t: self.now,
                    hw,
                });
            }
            self.sink.record(&EngineEvent::Deliver {
                src,
                dst,
                t: self.now,
                dst_hw: hw,
            });
        }
        let started = self.profile.as_ref().map(|_| Instant::now());
        let mut actions = std::mem::take(&mut self.action_buf);
        {
            let mut ctx = Context::new(dst, hw, self.graph.neighbors(dst), &mut actions);
            let proto = &mut self.nodes.proto[dst.index()];
            if fresh {
                proto.on_start(&mut ctx);
            }
            proto.on_message(&mut ctx, src, msg);
        }
        self.note_protocol(started);
        self.apply_actions(dst, &mut actions);
        self.action_buf = actions;
        self.note_multiplier(dst);
    }

    fn handle_hw_due(&mut self, v: NodeId, slot: u32, gen: u64) {
        // Stale entries: the item may be gone (already fired / replaced —
        // detected O(1) by the generation mismatch), or not yet due (a rate
        // slowdown pushed it later; the re-stamped entry exists at the
        // correct later time, so this one is skipped on an arithmetic
        // check — no hash lookups either way).
        let i = v.index();
        let due = match self.nodes.pending[i].target_of(slot, gen) {
            None => {
                self.note_stale();
                return;
            }
            Some(target) => self.nodes.hot[i].hw.value_at(self.now) >= target - 1e-9,
        };
        if !due {
            self.note_stale();
            return;
        }
        let item = self.nodes.pending[i].take(slot);
        match item {
            PendingHw::Timer { timer, .. } => {
                let slots = &mut self.nodes.cold[i].timer_slots;
                if let Some(pos) = slots.iter().position(|&(t, _)| t == timer) {
                    slots.swap_remove(pos);
                }
                let hw = self.hardware_value(v);
                if self.sink.enabled() {
                    self.sink.record(&EngineEvent::TimerFire {
                        node: v,
                        timer,
                        t: self.now,
                        hw,
                    });
                }
                let started = self.profile.as_ref().map(|_| Instant::now());
                let mut actions = std::mem::take(&mut self.action_buf);
                {
                    let mut ctx = Context::new(v, hw, self.graph.neighbors(v), &mut actions);
                    self.nodes.proto[v.index()].on_timer(&mut ctx, timer);
                }
                self.note_protocol(started);
                self.apply_actions(v, &mut actions);
                self.action_buf = actions;
                self.note_multiplier(v);
            }
            PendingHw::Delivery { src, msg, .. } => {
                self.handle_deliver(src, v, msg);
            }
        }
    }

    /// Counts a stale queue entry (profiling only).
    fn note_stale(&mut self) {
        if let Some(profile) = self.profile.as_deref_mut() {
            profile.stale_events += 1;
        }
    }

    fn apply_actions(&mut self, v: NodeId, actions: &mut Vec<Action<P::Msg>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => {
                    assert!(
                        self.graph.neighbors(v).contains(&to),
                        "{v:?} tried to send to non-neighbour {to:?}"
                    );
                    self.stats.send_events += 1;
                    self.stats.per_node_sends[v.index()] += 1;
                    if self.sink.enabled() {
                        let hw = self.hardware_value(v);
                        self.sink.record(&EngineEvent::Send {
                            node: v,
                            t: self.now,
                            hw,
                        });
                    }
                    self.transmit(v, to, msg);
                }
                Action::SendAll { msg } => {
                    self.stats.send_events += 1;
                    self.stats.per_node_sends[v.index()] += 1;
                    if self.sink.enabled() {
                        let hw = self.hardware_value(v);
                        self.sink.record(&EngineEvent::Send {
                            node: v,
                            t: self.now,
                            hw,
                        });
                    }
                    // Broadcast by index: `transmit` borrows `self` mutably,
                    // so walk the adjacency slice positionally instead of
                    // cloning it.
                    let deg = self.graph.neighbors(v).len();
                    for i in 0..deg {
                        let dst = self.graph.neighbors(v)[i];
                        if i + 1 == deg {
                            // Last edge takes ownership — one fewer clone.
                            self.transmit(v, dst, msg);
                            break;
                        }
                        self.transmit(v, dst, msg.clone());
                    }
                }
                Action::SetTimer { timer, target_hw } => {
                    self.set_timer(v, timer, target_hw);
                }
                Action::CancelTimer { timer } => {
                    let i = v.index();
                    let slots = &mut self.nodes.cold[i].timer_slots;
                    if let Some(pos) = slots.iter().position(|&(t, _)| t == timer) {
                        let (_, slot) = slots.swap_remove(pos);
                        self.nodes.pending[i].take(slot);
                        if self.sink.enabled() {
                            self.sink.record(&EngineEvent::TimerCancel {
                                node: v,
                                timer,
                                t: self.now,
                            });
                        }
                    }
                }
            }
        }
    }

    fn transmit(&mut self, src: NodeId, dst: NodeId, msg: P::Msg) {
        self.stats.transmissions += 1;
        // On a partition replica, a send to a node owned elsewhere must not
        // enter the local queue (it lands in the outbox, finalized at the
        // window barrier) and must not read the receiver's clock replica
        // (the owner may have advanced it). `remote` is `None` on every
        // user-built engine, so this is one predictable branch.
        // `Some(d)` names the destination partition's outbox shard; the
        // owner lookup here is the only one a cross-partition send ever
        // does — the barrier routes whole shards.
        let remote_shard = match self.remote.as_deref() {
            Some(r) => {
                let d = r.owner[dst.index()];
                (d != r.part).then_some(d as usize)
            }
            None => None,
        };
        let remote_dst = remote_shard.is_some();
        // Hardware readings are resolved lazily inside `DelayCtx`: delay
        // models that never consult them cost zero clock evaluations here.
        let ctx = if remote_dst {
            DelayCtx::from_clocks_remote_dst(
                src,
                dst,
                self.now,
                &self.nodes.hot[src.index()].hw,
                &self.graph,
            )
        } else {
            DelayCtx::from_clocks(
                src,
                dst,
                self.now,
                &self.nodes.hot[src.index()].hw,
                &self.nodes.hot[dst.index()].hw,
                &self.graph,
            )
        };
        let delivery = if self.profile.is_some() {
            let started = Instant::now();
            let delivery = self.delay.delivery(&ctx);
            let profile = self.profile.as_deref_mut().expect("profiling is on");
            profile.delay += started.elapsed();
            profile.delay_calls += 1;
            delivery
        } else {
            self.delay.delivery(&ctx)
        };
        match delivery {
            Delivery::Drop(cause) => {
                self.stats.dropped += 1;
                match cause {
                    crate::delay::DropCause::Model => self.stats.dropped_model += 1,
                    crate::delay::DropCause::Fault => self.stats.dropped_faults += 1,
                }
                self.stats.per_node_dropped[dst.index()] += 1;
                if self.sink.enabled() {
                    self.sink.record(&EngineEvent::Drop {
                        src,
                        dst,
                        t: self.now,
                        cause,
                    });
                }
            }
            Delivery::AfterEcho { delay, echo } => {
                assert!(
                    delay.is_finite() && delay >= 0.0 && echo.is_finite() && echo >= delay,
                    "delay model produced invalid echo pair ({delay}, {echo})"
                );
                // The duplicate is its own per-edge copy: one extra
                // transmission, one `duplicated` tick, and its own Deliver
                // event down the normal queue path.
                self.stats.transmissions += 1;
                self.stats.duplicated += 1;
                for d in [delay, echo] {
                    if self.sink.enabled() {
                        self.sink.record(&EngineEvent::Transmit {
                            src,
                            dst,
                            t: self.now,
                            delay: Some(d),
                        });
                    }
                    let time = self.now + d;
                    if let Some(shard) = remote_shard {
                        assert!(time.is_finite(), "non-finite event time");
                        let seq = self.seq;
                        self.seq += 1;
                        let r = self.remote.as_deref_mut().expect("remote_dst implies Some");
                        r.outbox[shard].push(crate::parallel::Outgoing {
                            time,
                            seq,
                            src,
                            dst,
                            msg: msg.clone(),
                        });
                    } else {
                        self.push(
                            time,
                            EventKind::Deliver {
                                src,
                                dst,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
            }
            Delivery::After(d) => {
                assert!(
                    d.is_finite() && d >= 0.0,
                    "delay model produced invalid delay {d}"
                );
                if self.sink.enabled() {
                    self.sink.record(&EngineEvent::Transmit {
                        src,
                        dst,
                        t: self.now,
                        delay: Some(d),
                    });
                }
                let time = self.now + d;
                if let Some(shard) = remote_shard {
                    assert!(time.is_finite(), "non-finite event time");
                    let seq = self.seq;
                    self.seq += 1;
                    let r = self.remote.as_deref_mut().expect("remote_dst implies Some");
                    r.outbox[shard].push(crate::parallel::Outgoing {
                        time,
                        seq,
                        src,
                        dst,
                        msg,
                    });
                } else {
                    self.push(time, EventKind::Deliver { src, dst, msg });
                }
            }
            Delivery::AtReceiverHw(target) => {
                assert!(
                    !remote_dst,
                    "delay model returned AtReceiverHw for a cross-partition \
                     send; models that advertise a lookahead promise plain \
                     `After` delays only"
                );
                if self.sink.enabled() {
                    self.sink.record(&EngineEvent::Transmit {
                        src,
                        dst,
                        t: self.now,
                        delay: None,
                    });
                }
                let item = PendingHw::Delivery { src, msg, target };
                if self.nodes.hot[dst.index()].hw.is_started() {
                    let (slot, gen) = self.nodes.pending[dst.index()].insert(item);
                    self.schedule_hw_due(dst, slot, gen, target);
                } else {
                    // The receiver has no clock yet; activate at its start.
                    self.nodes.cold[dst.index()].prestart.push(item);
                }
            }
        }
    }

    fn set_timer(&mut self, v: NodeId, timer: TimerId, target: f64) {
        assert!(target.is_finite(), "non-finite timer target");
        // Replace any previous target in this slot.
        let i = v.index();
        let slots = &mut self.nodes.cold[i].timer_slots;
        if let Some(pos) = slots.iter().position(|&(t, _)| t == timer) {
            let (_, old) = slots.swap_remove(pos);
            self.nodes.pending[i].take(old);
        }
        let (slot, gen) = self.nodes.pending[i].insert(PendingHw::Timer { timer, target });
        self.nodes.cold[i].timer_slots.push((timer, slot));
        if self.sink.enabled() {
            self.sink.record(&EngineEvent::TimerSet {
                node: v,
                timer,
                target_hw: target,
                t: self.now,
            });
        }
        self.schedule_hw_due(v, slot, gen, target);
    }

    fn schedule_hw_due(&mut self, v: NodeId, slot: u32, gen: u64, target: f64) {
        let t = self.nodes.hot[v.index()]
            .hw
            .time_when(target)
            .expect("node is started")
            .max(self.now);
        self.push(t, EventKind::HwDue { node: v, slot, gen });
    }

    fn reschedule_pending(&mut self, v: NodeId) {
        // Walk live items in creation order — the same ascending-unique-id
        // order the engine historically got from collecting and sorting
        // `HashMap` keys, so the requeue order (and hence the tie-broken,
        // byte-identical event stream) is preserved without allocating.
        // Re-stamped entries keep their generation: the superseded entry is
        // recognised as stale by the arithmetic due-check on pop, exactly as
        // before.
        let mut cursor = self.nodes.pending[v.index()].first();
        while let Some(slot) = cursor {
            let (gen, target, next) = self.nodes.pending[v.index()].cursor(slot);
            self.schedule_hw_due(v, slot, gen, target);
            cursor = next;
        }
    }
}
