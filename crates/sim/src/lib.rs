//! Deterministic discrete-event simulator for clock-synchronization
//! algorithms under the model of Lenzen, Locher & Wattenhofer, *Tight Bounds
//! for Clock Synchronization* (PODC 2009 / J. ACM 2010).
//!
//! An *execution* in the paper's Section 3 is an assignment of (i) a
//! hardware-clock rate function `h_v(t) ∈ [1 − ε, 1 + ε]` to every node and
//! (ii) a delay in `[0, 𝒯]` to every message. This crate realizes exactly
//! that class of executions:
//!
//! * [`Engine`] — the event loop. Events are processed in deterministic
//!   `(time, sequence)` order; hardware clocks advance lazily between
//!   events, so the engine performs no per-tick work.
//! * [`Protocol`] — the node-algorithm interface. Protocols observe *only*
//!   what the model allows: their own hardware clock readings, the messages
//!   they receive, and per-neighbour ports. They act by sending messages and
//!   by arming **hardware-value timers** ("wake me when my hardware clock
//!   reads `x`"), the primitive needed by the paper's Algorithm 1 (send when
//!   `L_v^max` reaches a multiple of `H₀`) and Algorithm 4 (reset the rate
//!   multiplier when `H_v` reaches `H_v^R`).
//! * [`DelayModel`] — decides each message's delivery. Besides plain delays,
//!   a model may request delivery *when the receiver's hardware clock
//!   reaches a value* — the "shifting" rule with which the paper constructs
//!   indistinguishable executions (its Definition 7.1). The engine
//!   reschedules both timers and such deliveries whenever a hardware rate
//!   changes.
//! * The whole world is `Clone`, giving the snapshot/replay needed for the
//!   paper's *extended executions* (Definition 7.4): simulate `E`, inspect
//!   it, rewind, and run the modified `Ē`.
//!
//! # Example
//!
//! ```
//! use gcs_graph::topology;
//! use gcs_sim::{ConstantDelay, Context, Engine, Protocol, TimerId};
//!
//! /// A trivial protocol: on start, say hello to all neighbours.
//! #[derive(Clone, Debug)]
//! struct Hello {
//!     heard: usize,
//! }
//!
//! impl Protocol for Hello {
//!     type Msg = ();
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         ctx.send_all(());
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: gcs_graph::NodeId, _msg: ()) {
//!         self.heard += 1;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _timer: TimerId) {}
//!     fn logical_value(&self, hw: f64) -> f64 {
//!         hw
//!     }
//! }
//!
//! let graph = topology::path(3);
//! let mut engine = Engine::builder(graph)
//!     .protocols(vec![Hello { heard: 0 }; 3])
//!     .delay_model(ConstantDelay::new(0.1))
//!     .build();
//! engine.wake_all_at(0.0);
//! engine.run_until(1.0);
//! assert_eq!(engine.protocol(gcs_graph::NodeId(1)).heard, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod engine;
mod parallel;
mod pending;
pub mod profile;
mod protocol;
mod queue;
pub mod rates;
pub mod sink;
mod ticked;

pub use delay::{
    BimodalDelay, ConstantDelay, DelayCtx, DelayModel, Delivery, DirectionalDelay, DropCause,
    FnDelay, Lookahead, LossyDelay, UniformDelay,
};
pub use engine::{Engine, EngineBuilder, MessageStats};
pub use profile::EngineProfile;
pub use protocol::{Context, Protocol, TimerId};
pub use sink::{
    decode_frame, encode_frame, EngineEvent, EventSink, NullSink, RecorderSink, RingBufferSink,
    VecSink, DEFAULT_RECORDER_FRAMES, DEFAULT_RECORDER_PARTITIONS, FRAME_LEN, KIND_COUNT,
    KIND_LABELS, RECORDER_MAGIC,
};
pub use ticked::Ticked;
