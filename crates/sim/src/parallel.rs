//! The lookahead-windowed parallel driver: deterministic multi-core
//! execution of a single simulation.
//!
//! See `docs/PARALLEL.md` for the full protocol and determinism argument.
//! In brief:
//!
//! * The graph is split into `k` contiguous partitions
//!   ([`gcs_graph::partition::contiguous`]); each partition gets a full
//!   [`Engine`] replica owning its nodes' state, its share of the event
//!   queue, and a [`BufferSink`] capturing sink records.
//! * The delay model's [`lookahead`](crate::DelayModel::lookahead_at)
//!   `floor` bounds every delay from below, so **no message sent inside a
//!   time window of width `floor` can arrive within that window**. All
//!   partitions therefore process one window `[w, w + floor)` concurrently
//!   without violating causality; cross-partition sends divert into a
//!   per-partition outbox instead of any queue.
//! * At the window barrier, a serial replay pass merges the partitions' pop
//!   logs on `(time, seq)`, re-assigning the exact sequence numbers the
//!   sequential engine would have handed out and emitting buffered sink
//!   records in that order — making the observable event stream
//!   **byte-identical** to `run_until` at any thread count (pinned by
//!   `tests/parallel_parity.rs` against the golden fixture). Outbox
//!   messages then land in their destination partition's queue, and the
//!   next window begins.
//!
//! Within a window a partition stamps *provisional* sequence numbers
//! (`PROV_BASE + local id`). Provisional keys sort after every final key at
//! equal time and among themselves in push order — exactly the relative
//! order their final seqs will have — so each partition's pop order is
//! already correct before the replay pass renames the seqs (a strictly
//! monotone rewrite, so heap invariants survive in place).

use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use gcs_graph::{partition, NodeId};
use gcs_time::HardwareClock;

use crate::delay::DelayModel;
use crate::engine::{Engine, EventKind, MessageStats};
use crate::protocol::Protocol;
use crate::queue::EventQueue;
use crate::sink::{EngineEvent, EventSink};

/// Base of the provisional sequence range. A partition's `seq` counter is
/// reset to this at every window start, so `seq - PROV_BASE` is the
/// window-local push id. Real (final) seqs stay far below: they would need
/// 2⁶³ events to collide.
pub(crate) const PROV_BASE: u64 = 1 << 63;

/// A cross-partition message waiting in a partition's outbox for the next
/// window barrier.
#[derive(Debug, Clone)]
pub(crate) struct Outgoing<M> {
    /// Delivery time (`send time + delay`), always at or past the window
    /// end thanks to the lookahead floor.
    pub(crate) time: f64,
    /// Provisional seq stamped at send; finalized through the replay map
    /// before the message enters the destination queue.
    pub(crate) seq: u64,
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) msg: M,
}

/// One processed event in a partition's window log: enough to replay the
/// global order (`time`, raw `seq`) and its effects (how many seqs its
/// dispatch consumed, how many sink records it emitted). Pops that neither
/// pushed nor recorded anything (stale queue entries) are not logged — they
/// are invisible to both seq assignment and the event stream — *except* in
/// snapshot mode, where every pop is logged: the sequential engine snapshots
/// after every pop (stale ones included), so the barrier replay must too.
#[derive(Debug, Clone, Copy)]
struct PopRecord {
    time: f64,
    seq: u64,
    pushes: u32,
    events: u32,
}

/// The home node's post-dispatch state, logged once per pop in snapshot
/// mode. A dispatch mutates the logical-clock-relevant state (`proto`,
/// `hw`) of exactly one node — the event's home — so these entries are
/// sufficient to reconstruct every node's logical clock at every replayed
/// pop, with the *same bits* the sequential engine would have read.
#[derive(Debug, Clone)]
struct PopState<P: Protocol> {
    home: NodeId,
    hw: HardwareClock,
    proto: P,
}

/// Partition-replica context hung off [`Engine::remote`]; `None` on every
/// user-built engine.
#[derive(Debug, Clone)]
pub(crate) struct RemoteCtx<P: Protocol> {
    /// This replica's partition id.
    pub(crate) part: u32,
    /// Node → owning partition, shared by all replicas.
    pub(crate) owner: Arc<Vec<u32>>,
    /// Cross-partition sends of the current window, sharded by destination
    /// partition (`outbox[d]` holds sends to partition `d`; the own-partition
    /// shard stays empty). `transmit` already resolves the owner to decide a
    /// send is remote, so the shard append reuses that lookup, and the
    /// barrier routes whole shards without re-resolving per message.
    pub(crate) outbox: Vec<Vec<Outgoing<P::Msg>>>,
    /// Pop log of the current window.
    records: Vec<PopRecord>,
    /// Whether to log every pop with its [`PopState`] (snapshot mode).
    log_state: bool,
    /// Post-dispatch home-node states, parallel to `records` (snapshot
    /// mode only; empty otherwise).
    states: Vec<PopState<P>>,
    /// Total pops over all windows (profile accounting).
    pops: u64,
    /// Wall-time this partition spent executing the last window.
    run_dur: Duration,
}

/// Event-capturing sink for partition replicas. Mirrors the real sink's
/// `enabled()` so replicas record exactly the events the real sink would;
/// never asks for snapshots itself — when the *real* sink wants them, the
/// barrier replay reconstructs every per-event snapshot serially from the
/// partitions' [`PopState`] logs (see [`SnapReplay`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct BufferSink {
    events: Vec<EngineEvent>,
    on: bool,
}

impl EventSink for BufferSink {
    fn enabled(&self) -> bool {
        self.on
    }

    fn record(&mut self, event: &EngineEvent) {
        self.events.push(*event);
    }
}

/// The coordinator's window instruction, published under a mutex between
/// two barrier waits.
#[derive(Debug, Clone, Copy)]
struct Plan {
    /// Window end; admit events with `time < until` (or `<= until` when
    /// `inclusive` — the final window runs to the horizon inclusively, as
    /// `run_until` does).
    until: f64,
    inclusive: bool,
    /// Parallel phase is over; workers exit.
    stop: bool,
}

enum Decision {
    /// No events at or before the horizon remain anywhere.
    Done,
    /// The lookahead promise is gone (expired or zero): merge back and let
    /// the sequential loop finish.
    Fallback,
    Window {
        until: f64,
        inclusive: bool,
        last: bool,
    },
}

/// Serial-phase state owned by the coordinator: the global seq counter, the
/// per-partition push-id → final-seq maps, and reusable scratch buffers
/// (ping-ponged with partition buffers so steady-state windows allocate
/// nothing).
struct ReplayState<P: Protocol> {
    next_seq: u64,
    maps: Vec<Vec<u64>>,
    next_push: Vec<usize>,
    cursors: Vec<usize>,
    ev_cursors: Vec<usize>,
    st_cursors: Vec<usize>,
    records: Vec<Vec<PopRecord>>,
    events: Vec<Vec<EngineEvent>>,
    states: Vec<Vec<PopState<P>>>,
    /// Per-partition sharded outbox scratch, mirroring
    /// [`RemoteCtx::outbox`]: `outboxes[p][d]` holds partition `p`'s sends
    /// to partition `d`.
    outboxes: Vec<Vec<Vec<Outgoing<P::Msg>>>>,
}

/// Seq not yet assigned in a replay map.
const UNASSIGNED: u64 = u64::MAX;

impl<P: Protocol> ReplayState<P> {
    fn new(k: usize, next_seq: u64) -> Self {
        ReplayState {
            next_seq,
            maps: vec![Vec::new(); k],
            next_push: vec![0; k],
            cursors: vec![0; k],
            ev_cursors: vec![0; k],
            st_cursors: vec![0; k],
            records: vec![Vec::new(); k],
            events: vec![Vec::new(); k],
            states: (0..k).map(|_| Vec::new()).collect(),
            outboxes: (0..k)
                .map(|_| (0..k).map(|_| Vec::new()).collect())
                .collect(),
        }
    }
}

/// The serial snapshot reconstructor, used when the real sink wants
/// per-event snapshots. It shadows every node's snapshot-relevant state
/// (`hw`, `proto`) and the global queue depth, updating both from each
/// replayed pop, and feeds the sink the **exact** snapshot the sequential
/// engine would have produced after that pop: the clock buffer is computed
/// by the same `proto.logical_value(hw.value_at(now))` expression on
/// bit-identical state, and the queue depth follows from pop/push
/// arithmetic (each pop removes one entry; each seq increment — queue push
/// or outbox send, which is a queue push sequentially — adds one).
struct SnapReplay<P: Protocol> {
    hw: Vec<HardwareClock>,
    protos: Vec<P>,
    clock_buf: Vec<f64>,
    depth: usize,
    now: f64,
    snapshots: u64,
    dur: Duration,
}

impl<P: Protocol> SnapReplay<P> {
    /// One reconstructed snapshot: fold the pop's home-node state into the
    /// shadow, advance time and queue depth, and call the sink.
    fn replay_pop(&mut self, rec: &PopRecord, st: &PopState<P>, sink: &mut impl EventSink) {
        let started = Instant::now();
        let i = st.home.index();
        self.hw[i] = st.hw.clone();
        self.protos[i].clone_from(&st.proto);
        self.now = self.now.max(rec.time);
        self.depth = self.depth + rec.pushes as usize - 1;
        let now = self.now;
        self.clock_buf.clear();
        self.clock_buf.extend(
            self.protos
                .iter()
                .zip(&self.hw)
                .map(|(p, hw)| p.logical_value(hw.value_at(now))),
        );
        sink.snapshot(now, &self.clock_buf, self.depth);
        self.snapshots += 1;
        self.dur += started.elapsed();
    }
}

impl<P, D, S> Engine<P, D, S>
where
    P: Protocol + Send,
    P::Msg: Send,
    D: DelayModel + Clone + Send,
    S: EventSink,
{
    /// Like [`Engine::run_until`], but executes graph partitions on up to
    /// `threads` worker threads in synchronized lookahead windows.
    ///
    /// The observable execution — event stream, per-event snapshots,
    /// protocol states, message statistics, final clocks — is
    /// **byte-identical** to `run_until` at any thread count. Sinks that
    /// want per-event snapshots (metrics, watchdog, skew observer, clock
    /// traces) are served by the barrier replay, which reconstructs every
    /// snapshot serially in exact sequential order (see [`SnapReplay`]).
    /// Parallel execution engages only when it can be proven safe;
    /// otherwise this transparently runs the sequential loop:
    ///
    /// * `threads < 2`, or the graph is too small to split;
    /// * the delay model offers no strictly positive
    ///   [`lookahead`](crate::DelayModel::lookahead_at).
    ///
    /// A promise that expires mid-run (e.g. the wavefront adversary's flip)
    /// merges partitions back and finishes the remainder sequentially.
    pub fn run_until_threaded(&mut self, t: f64, threads: usize) {
        assert!(t >= self.now, "cannot run backwards");
        let k = threads.min(self.graph.len());
        let usable = k >= 2
            && self
                .delay
                .lookahead_at(self.now)
                .is_some_and(|la| la.floor > 0.0 && la.valid_until > self.now);
        if usable {
            let completed = self.parallel_phase(t, k);
            if completed >= t {
                self.now = t;
                self.maybe_snapshot();
                return;
            }
            // Lookahead expired mid-run; fall through with `now` at the last
            // completed barrier and finish sequentially.
        }
        self.run_until(t);
    }

    /// Runs windows until the horizon is reached or the lookahead expires.
    /// Returns the time up to which every event has been processed; `self`
    /// is left merged and consistent at that time.
    fn parallel_phase(&mut self, horizon: f64, k: usize) -> f64 {
        let phase_started = Instant::now();
        let parts_assignment = partition::contiguous(&self.graph, k);
        let k = parts_assignment.parts as usize;
        if k < 2 {
            return self.now;
        }
        let mut snap = self.sink.wants_snapshots().then(|| SnapReplay {
            hw: self.nodes.hot.iter().map(|n| n.hw.clone()).collect(),
            protos: self.nodes.proto.clone(),
            clock_buf: Vec::with_capacity(self.nodes.len()),
            depth: self.queue.len(),
            now: self.now,
            snapshots: 0,
            dur: Duration::ZERO,
        });
        let owner = Arc::new(parts_assignment.assignment);
        let parts: Vec<Mutex<Engine<P, D, BufferSink>>> =
            self.split(&owner, k).into_iter().map(Mutex::new).collect();
        let barrier = Barrier::new(k);
        let plan = Mutex::new(Plan {
            until: self.now,
            inclusive: false,
            stop: false,
        });

        let mut completed = self.now;
        let mut window_start = self.now;
        let mut windows: u64 = 0;
        let mut replay_dur = Duration::ZERO;
        let mut idle_dur = Duration::ZERO;
        let mut replay = ReplayState::<P>::new(k, self.seq);

        std::thread::scope(|scope| {
            for i in 1..k {
                let (barrier, plan, parts) = (&barrier, &plan, &parts);
                scope.spawn(move || loop {
                    barrier.wait(); // (1) plan published
                    let Plan {
                        until,
                        inclusive,
                        stop,
                    } = *plan.lock().expect("plan lock");
                    if stop {
                        break;
                    }
                    let started = Instant::now();
                    let mut eng = parts[i].lock().expect("partition lock");
                    eng.run_window(until, inclusive);
                    eng.remote_mut().run_dur = started.elapsed();
                    drop(eng);
                    barrier.wait(); // (2) window complete
                });
            }

            // Coordinator: plans windows, runs partition 0, and performs
            // all serial barrier work. Every exit path publishes `stop` and
            // releases barrier (1) exactly once, matching the workers.
            loop {
                let decision = {
                    // Partitions are paused here; locks are uncontended.
                    let guards: Vec<_> = parts
                        .iter()
                        .map(|m| m.lock().expect("partition lock"))
                        .collect();
                    self.plan_window(&guards, window_start, horizon)
                };
                let (until, inclusive, last) = match decision {
                    Decision::Done => {
                        completed = horizon;
                        plan.lock().expect("plan lock").stop = true;
                        barrier.wait();
                        break;
                    }
                    Decision::Fallback => {
                        plan.lock().expect("plan lock").stop = true;
                        barrier.wait();
                        break;
                    }
                    Decision::Window {
                        until,
                        inclusive,
                        last,
                    } => (until, inclusive, last),
                };
                *plan.lock().expect("plan lock") = Plan {
                    until,
                    inclusive,
                    stop: false,
                };
                barrier.wait(); // (1)
                let window_started = Instant::now();
                {
                    let mut eng = parts[0].lock().expect("partition lock");
                    eng.run_window(until, inclusive);
                    eng.remote_mut().run_dur = window_started.elapsed();
                }
                barrier.wait(); // (2)
                let window_wall = window_started.elapsed();

                let replay_started = Instant::now();
                {
                    let mut guards: Vec<_> = parts
                        .iter()
                        .map(|m| m.lock().expect("partition lock"))
                        .collect();
                    replay_window(&mut replay, &mut guards, &mut self.sink, snap.as_mut());
                    for g in &guards {
                        idle_dur += window_wall.saturating_sub(g.remote_ref().run_dur);
                    }
                }
                replay_dur += replay_started.elapsed();
                windows += 1;
                window_start = until;
                completed = if last { horizon } else { until };
                if last {
                    plan.lock().expect("plan lock").stop = true;
                    barrier.wait();
                    break;
                }
            }
        });

        let parts: Vec<Engine<P, D, BufferSink>> = parts
            .into_iter()
            .map(|m| m.into_inner().expect("no panics while locked"))
            .collect();
        self.merge(parts, &owner, completed, replay.next_seq);
        if let Some(snap) = &snap {
            debug_assert_eq!(
                snap.depth,
                self.queue.len(),
                "reconstructed queue depth diverged from the merged queue"
            );
        }
        if let Some(profile) = self.profile.as_deref_mut() {
            profile.par_workers = profile.par_workers.max(k as u64);
            profile.par_windows += windows;
            profile.par_replay += replay_dur;
            profile.par_idle += idle_dur;
            let wall = phase_started.elapsed();
            profile.par_wall += wall;
            // The phase's wall time stands in for the per-event dispatch
            // timing the sequential loop would have accumulated, so
            // `dispatch` stays the run's total event-processing time.
            profile.dispatch += wall;
            if let Some(snap) = &snap {
                profile.snapshot += snap.dur;
                profile.snapshots += snap.snapshots;
            }
        }
        completed
    }

    /// Chooses the next window (serial phase; all partitions paused).
    fn plan_window(
        &self,
        guards: &[MutexGuard<'_, Engine<P, D, BufferSink>>],
        window_start: f64,
        horizon: f64,
    ) -> Decision {
        let next = guards
            .iter()
            .filter_map(|g| g.queue.peek_time())
            .min_by(f64::total_cmp);
        let Some(next) = next else {
            return Decision::Done;
        };
        if next > horizon {
            return Decision::Done;
        }
        // Skip idle stretches: the window may start at the earliest pending
        // event rather than the previous window's end. This only moves
        // window boundaries, never the replayed order.
        let w = window_start.max(next);
        let Some(la) = self.delay.lookahead_at(w) else {
            return Decision::Fallback;
        };
        if la.floor <= 0.0 || la.valid_until <= w {
            return Decision::Fallback;
        }
        let cap = w + la.floor;
        if cap > horizon && la.valid_until > horizon {
            // Final window: run to the horizon inclusively, as `run_until`
            // does. Any send at `s ≤ horizon` arrives at `s + d ≥ w + floor
            // > horizon` (float addition is monotone), so nothing due by the
            // horizon can be missed.
            return Decision::Window {
                until: horizon,
                inclusive: true,
                last: true,
            };
        }
        let until = cap.min(la.valid_until);
        if until <= w {
            // Zero-width window (promise expires immediately, or `w` is so
            // large the floor vanishes in rounding): no parallel progress.
            return Decision::Fallback;
        }
        Decision::Window {
            until,
            inclusive: false,
            last: false,
        }
    }

    /// Builds the `k` partition replicas and distributes the event queue.
    fn split(&mut self, owner: &Arc<Vec<u32>>, k: usize) -> Vec<Engine<P, D, BufferSink>> {
        assert!(
            self.seq < PROV_BASE,
            "sequence counter overflowed into the provisional range"
        );
        let n = self.graph.len();
        let mut parts: Vec<Engine<P, D, BufferSink>> = (0..k)
            .map(|p| Engine {
                graph: self.graph.clone(),
                delay: self.delay.clone(),
                now: self.now,
                seq: PROV_BASE,
                queue: EventQueue::with_capacity_and_floor(4 * n / k + 16, self.delay.min_delay()),
                // Full-length replica: only owned entries are ever touched
                // (events route by owner), and `merge` swaps them back. This
                // wastes clone work on unowned entries but keeps every
                // global `NodeId` a direct index — no remapping anywhere.
                nodes: self.nodes.clone(),
                stats: MessageStats {
                    per_node_sends: vec![0; n],
                    per_node_deliveries: vec![0; n],
                    per_node_dropped: vec![0; n],
                    ..MessageStats::default()
                },
                sink: BufferSink {
                    events: Vec::new(),
                    on: self.sink.enabled(),
                },
                clock_buf: Vec::new(),
                action_buf: Vec::with_capacity(8),
                profile: None,
                remote: Some(Box::new(RemoteCtx {
                    part: p as u32,
                    owner: Arc::clone(owner),
                    outbox: vec![Vec::new(); k],
                    records: Vec::new(),
                    log_state: self.sink.wants_snapshots(),
                    states: Vec::new(),
                    pops: 0,
                    run_dur: Duration::ZERO,
                })),
            })
            .collect();
        while let Some((time, seq, kind)) = self.queue.pop_entry() {
            let home = owner[kind.home().index()] as usize;
            parts[home].queue.push(time, seq, kind);
        }
        parts
    }

    /// Reabsorbs the partitions: owned node states, finalized queues,
    /// summed message stats. Leaves `self` exactly as the sequential engine
    /// would stand at `completed`.
    fn merge(
        &mut self,
        parts: Vec<Engine<P, D, BufferSink>>,
        owner: &[u32],
        completed: f64,
        next_seq: u64,
    ) {
        self.now = completed;
        self.seq = next_seq;
        for (p, mut part) in parts.into_iter().enumerate() {
            let remote = part.remote.as_deref().expect("partition replica");
            debug_assert!(
                remote.outbox.iter().all(Vec::is_empty),
                "unrouted outbox at merge"
            );
            let pops = remote.pops;
            for (i, &o) in owner.iter().enumerate() {
                if o == p as u32 {
                    self.nodes.swap_entry(&mut part.nodes, i);
                }
            }
            while let Some((time, seq, kind)) = part.queue.pop_entry() {
                debug_assert!(seq < PROV_BASE, "provisional seq escaped the phase");
                self.queue.push(time, seq, kind);
            }
            let s = &part.stats;
            self.stats.send_events += s.send_events;
            self.stats.transmissions += s.transmissions;
            self.stats.deliveries += s.deliveries;
            self.stats.dropped += s.dropped;
            self.stats.dropped_model += s.dropped_model;
            self.stats.dropped_faults += s.dropped_faults;
            self.stats.duplicated += s.duplicated;
            for (acc, x) in self.stats.per_node_sends.iter_mut().zip(&s.per_node_sends) {
                *acc += x;
            }
            for (acc, x) in self
                .stats
                .per_node_deliveries
                .iter_mut()
                .zip(&s.per_node_deliveries)
            {
                *acc += x;
            }
            for (acc, x) in self
                .stats
                .per_node_dropped
                .iter_mut()
                .zip(&s.per_node_dropped)
            {
                *acc += x;
            }
            if let Some(profile) = self.profile.as_deref_mut() {
                profile.events += pops;
            }
        }
    }
}

impl<P: Protocol, D: DelayModel> Engine<P, D, BufferSink> {
    pub(crate) fn remote_mut(&mut self) -> &mut RemoteCtx<P> {
        self.remote.as_deref_mut().expect("partition replica")
    }

    fn remote_ref(&self) -> &RemoteCtx<P> {
        self.remote.as_deref().expect("partition replica")
    }

    /// Processes this partition's events inside one window, logging each
    /// effective pop for the barrier replay. In snapshot mode every pop is
    /// logged — stale ones included — together with the home node's
    /// post-dispatch state, because the sequential engine snapshots after
    /// every pop.
    fn run_window(&mut self, until: f64, inclusive: bool) {
        let log_state = self.remote_ref().log_state;
        while let Some(next) = self.queue.peek_time() {
            let admit = if inclusive {
                next <= until
            } else {
                next < until
            };
            if !admit {
                break;
            }
            let seq_before = self.seq;
            let ev_before = self.sink.events.len();
            let (time, key_seq, kind) = self.queue.pop_entry().expect("peeked above");
            let home = kind.home();
            self.now = self.now.max(time);
            self.dispatch(kind);
            let pushes = (self.seq - seq_before) as u32;
            let events = (self.sink.events.len() - ev_before) as u32;
            if log_state {
                let state = PopState {
                    home,
                    hw: self.nodes.hot[home.index()].hw.clone(),
                    proto: self.nodes.proto[home.index()].clone(),
                };
                let remote = self.remote_mut();
                remote.pops += 1;
                remote.records.push(PopRecord {
                    time,
                    seq: key_seq,
                    pushes,
                    events,
                });
                remote.states.push(state);
            } else {
                let remote = self.remote_mut();
                remote.pops += 1;
                if pushes > 0 || events > 0 {
                    remote.records.push(PopRecord {
                        time,
                        seq: key_seq,
                        pushes,
                        events,
                    });
                }
            }
        }
    }
}

/// The serial barrier pass: merges the window's per-partition pop logs into
/// the global `(time, seq)` order, assigns the exact sequence numbers the
/// sequential engine would have used, emits buffered sink records in that
/// order (and, in snapshot mode, the reconstructed per-pop snapshot),
/// rewrites still-queued provisional keys, and routes outboxes.
fn replay_window<P, D, S>(
    state: &mut ReplayState<P>,
    guards: &mut [MutexGuard<'_, Engine<P, D, BufferSink>>],
    sink: &mut S,
    mut snap: Option<&mut SnapReplay<P>>,
) where
    P: Protocol,
    D: DelayModel,
    S: EventSink,
{
    let k = guards.len();
    // Take the window's logs, leaving last window's (empty, capacity-bearing)
    // scratch in their place.
    for (p, guard) in guards.iter_mut().enumerate() {
        let eng = &mut **guard;
        state.records[p].clear();
        state.events[p].clear();
        state.states[p].clear();
        std::mem::swap(&mut state.records[p], &mut eng.remote_mut().records);
        let sink_events = &mut eng.sink.events;
        std::mem::swap(&mut state.events[p], sink_events);
        std::mem::swap(&mut state.states[p], &mut eng.remote_mut().states);
        let pushes = (eng.seq - PROV_BASE) as usize;
        state.maps[p].clear();
        state.maps[p].resize(pushes, UNASSIGNED);
        state.next_push[p] = 0;
        state.cursors[p] = 0;
        state.ev_cursors[p] = 0;
        state.st_cursors[p] = 0;
    }

    // K-way merge by (time, final seq). A provisional head's own push was
    // made by an earlier pop of the same partition (cross-partition pushes
    // only enter queues with final seqs at barriers), so it is always
    // resolvable by the time it reaches the head.
    loop {
        let mut best: Option<(f64, u64, usize)> = None;
        for p in 0..k {
            let Some(rec) = state.records[p].get(state.cursors[p]) else {
                continue;
            };
            let seq = if rec.seq >= PROV_BASE {
                let mapped = state.maps[p][(rec.seq - PROV_BASE) as usize];
                debug_assert_ne!(mapped, UNASSIGNED, "pop replayed before its push");
                mapped
            } else {
                rec.seq
            };
            let better = match best {
                None => true,
                Some((bt, bs, _)) => match rec.time.total_cmp(&bt) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => seq < bs,
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better {
                best = Some((rec.time, seq, p));
            }
        }
        let Some((_, _, p)) = best else {
            break;
        };
        let rec = state.records[p][state.cursors[p]];
        state.cursors[p] += 1;
        // This pop's pushes get the next consecutive global seqs — exactly
        // the sequential assignment, since sequential pops are serial and
        // this is the sequential pop order.
        for _ in 0..rec.pushes {
            state.maps[p][state.next_push[p]] = state.next_seq;
            state.next_push[p] += 1;
            state.next_seq += 1;
        }
        let evs = &state.events[p][state.ev_cursors[p]..state.ev_cursors[p] + rec.events as usize];
        for ev in evs {
            sink.record(ev);
        }
        state.ev_cursors[p] += rec.events as usize;
        if let Some(snap) = snap.as_deref_mut() {
            let st = &state.states[p][state.st_cursors[p]];
            state.st_cursors[p] += 1;
            snap.replay_pop(&rec, st, sink);
        }
    }

    for (p, guard) in guards.iter_mut().enumerate() {
        debug_assert_eq!(
            state.next_push[p],
            state.maps[p].len(),
            "every push belongs to a replayed pop"
        );
        debug_assert_eq!(state.ev_cursors[p], state.events[p].len());
        debug_assert!(
            snap.is_none() || state.st_cursors[p] == state.states[p].len(),
            "every logged pop state belongs to a replayed pop"
        );
        // Finalize still-queued provisional keys in place. The map is
        // strictly increasing in push id, and every new seq exceeds every
        // final seq already present, so the rewrite is order-preserving and
        // the heap invariant survives untouched.
        let map = &state.maps[p];
        guard.queue.remap_seqs(|s| {
            if s >= PROV_BASE {
                let mapped = map[(s - PROV_BASE) as usize];
                debug_assert_ne!(mapped, UNASSIGNED);
                mapped
            } else {
                s
            }
        });
        guard.seq = PROV_BASE;
    }

    // Route cross-partition messages: finalize their seqs through the
    // sender's map, then enqueue whole shards at their owners — the send
    // already resolved the destination partition, so routing never looks an
    // owner up again. Delivery times sit at or past the window end
    // (lookahead floor), so they never land in a partition's past. Shard
    // order differs from send order, but queue pushes commute: pop order is
    // the sorted key order, and the final seqs were fixed by the replay.
    for (p, guard) in guards.iter_mut().enumerate() {
        debug_assert!(state.outboxes[p].iter().all(Vec::is_empty));
        std::mem::swap(&mut state.outboxes[p], &mut guard.remote_mut().outbox);
    }
    for p in 0..k {
        let map = &state.maps[p];
        for (dest, shard) in state.outboxes[p].iter_mut().enumerate() {
            debug_assert!(dest != p || shard.is_empty(), "own-partition shard");
            // `drain` keeps the allocation; vecs ping-pong back next window.
            for out in shard.drain(..) {
                let seq = map[(out.seq - PROV_BASE) as usize];
                debug_assert_ne!(seq, UNASSIGNED);
                guards[dest].queue.push(
                    out.time,
                    seq,
                    EventKind::Deliver {
                        src: out.src,
                        dst: out.dst,
                        msg: out.msg,
                    },
                );
            }
        }
    }
}
