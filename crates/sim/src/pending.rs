//! Slab-backed storage for pending hardware-value items.
//!
//! Each node owns a [`PendingSlab`] holding its in-flight hardware-value
//! items — armed timers and receiver-hardware-targeted deliveries. The
//! engine's hot path hits this store on every timer fire, every
//! `AtReceiverHw` delivery, and every rate change, so the design goal is
//! **zero steady-state allocation and no hashing**:
//!
//! * items live in a slab (`Vec` of slots) with an intrusive free list —
//!   inserting reuses a freed slot, so capacity only grows to the
//!   high-water mark of concurrently pending items (2–3 for `A^opt`);
//! * each slot carries a **generation**, bumped on every insert. A queue
//!   entry referencing `(slot, gen)` is validated by one array index and
//!   one integer compare — fired or replaced items are skipped O(1), with
//!   no hash lookups;
//! * live slots are threaded on an intrusive doubly-linked list in
//!   **creation order**. Rescheduling after a rate change walks this list,
//!   which reproduces exactly the ascending-unique-id order the engine
//!   historically got from collecting and sorting `HashMap` keys — the
//!   tie-breaking order of requeued events, and hence the byte-identical
//!   event stream, is preserved without the per-rate-step allocate+sort.
//!
//! The `(slot, generation)` pair is a drop-in replacement for the old
//! engine-global unique pending id: a generation matches at most one item
//! ever stored in that slot, so staleness checks have the same semantics
//! as the old `HashMap::get(id)` miss.

use gcs_graph::NodeId;

use crate::protocol::TimerId;

/// A pending hardware-value item: fires when the owning node's hardware
/// clock reaches `target`.
#[derive(Debug, Clone)]
pub(crate) enum PendingHw<M> {
    /// An armed timer slot.
    Timer {
        /// The protocol-chosen timer slot.
        timer: TimerId,
        /// Hardware reading at which it fires.
        target: f64,
    },
    /// A delivery addressed to a receiver hardware reading.
    Delivery {
        /// Sending node.
        src: NodeId,
        /// The message.
        msg: M,
        /// Receiver hardware reading at which it is delivered.
        target: f64,
    },
}

impl<M> PendingHw<M> {
    /// The hardware reading at which this item fires.
    pub(crate) fn target(&self) -> f64 {
        match self {
            PendingHw::Timer { target, .. } => *target,
            PendingHw::Delivery { target, .. } => *target,
        }
    }
}

/// Sentinel for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<M> {
    /// Bumped on every insert into this slot; queue entries referencing an
    /// older generation are stale. `u64` so it never wraps in practice —
    /// a reused `u32` could ABA-match a very old stale queue entry.
    gen: u64,
    /// Previous live slot in creation order (`NIL` at the head).
    prev: u32,
    /// Next live slot in creation order when occupied; next free slot when
    /// on the free list.
    next: u32,
    /// The item, `None` while the slot is on the free list.
    item: Option<PendingHw<M>>,
}

/// The per-node pending-item store. See the module docs for the design.
#[derive(Debug, Clone)]
pub(crate) struct PendingSlab<M> {
    slots: Vec<Slot<M>>,
    /// Head of the free list (`NIL` when every slot is occupied).
    free_head: u32,
    /// Oldest live slot in creation order.
    head: u32,
    /// Newest live slot in creation order.
    tail: u32,
    len: usize,
}

impl<M> PendingSlab<M> {
    pub(crate) fn new() -> Self {
        PendingSlab {
            slots: Vec::new(),
            free_head: NIL,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// A slab with room for `cap` slots pre-reserved — the engine builder's
    /// pre-sizing so a large-n run reaches its pending high-water mark
    /// without mid-run growth. The slab still grows past `cap` if a node
    /// accumulates more concurrently pending items.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        PendingSlab {
            slots: Vec::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Number of live items.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Stores `item`, appending it to the creation-ordered live list.
    /// Returns the slot index and the slot's fresh generation.
    pub(crate) fn insert(&mut self, item: PendingHw<M>) -> (u32, u64) {
        let slot = if self.free_head != NIL {
            let s = self.free_head;
            self.free_head = self.slots[s as usize].next;
            s
        } else {
            // Index `NIL` would collide with the list sentinel and silently
            // corrupt the intrusive lists; this runs once per slab growth,
            // never on the steady-state path, so a hard assert is free.
            assert!(self.slots.len() < NIL as usize, "pending slab full");
            self.slots.push(Slot {
                gen: 0,
                prev: NIL,
                next: NIL,
                item: None,
            });
            (self.slots.len() - 1) as u32
        };
        let tail = self.tail;
        let s = &mut self.slots[slot as usize];
        s.gen += 1;
        s.item = Some(item);
        s.prev = tail;
        s.next = NIL;
        let gen = s.gen;
        if tail != NIL {
            self.slots[tail as usize].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.len += 1;
        (slot, gen)
    }

    /// O(1) staleness check for a queue entry: the target of the item at
    /// `slot`, or `None` if the entry is stale (the item fired or was
    /// replaced — the generation no longer matches).
    pub(crate) fn target_of(&self, slot: u32, gen: u64) -> Option<f64> {
        let s = self.slots.get(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        s.item.as_ref().map(PendingHw::target)
    }

    /// Removes and returns the live item at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free — callers must hold a validated slot
    /// (from [`PendingSlab::target_of`] or the timer index).
    pub(crate) fn take(&mut self, slot: u32) -> PendingHw<M> {
        let s = &mut self.slots[slot as usize];
        let item = s.item.take().expect("take on a free pending slot");
        let (prev, next) = (s.prev, s.next);
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot as usize].next = self.free_head;
        self.free_head = slot;
        self.len -= 1;
        item
    }

    /// Oldest live slot in creation order, if any.
    pub(crate) fn first(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// The creation-order successor of live slot `slot`, plus the slot's
    /// generation and target — the engine's rescheduling cursor.
    pub(crate) fn cursor(&self, slot: u32) -> (u64, f64, Option<u32>) {
        let s = &self.slots[slot as usize];
        let item = s.item.as_ref().expect("cursor on a free pending slot");
        let next = (s.next != NIL).then_some(s.next);
        (s.gen, item.target(), next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(id: u32, target: f64) -> PendingHw<()> {
        PendingHw::Timer {
            timer: TimerId(id),
            target,
        }
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut slab = PendingSlab::new();
        let (s0, g0) = slab.insert(timer(0, 1.0));
        let (s1, g1) = slab.insert(timer(1, 2.0));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.target_of(s0, g0), Some(1.0));
        assert_eq!(slab.target_of(s1, g1), Some(2.0));
        match slab.take(s0) {
            PendingHw::Timer { timer, target } => {
                assert_eq!(timer, TimerId(0));
                assert_eq!(target, 1.0);
            }
            _ => panic!("wrong item"),
        }
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.target_of(s0, g0), None, "fired item is stale");
    }

    #[test]
    fn reused_slot_invalidates_old_generation() {
        let mut slab = PendingSlab::new();
        let (s0, g0) = slab.insert(timer(0, 1.0));
        slab.take(s0);
        let (s0b, g0b) = slab.insert(timer(1, 3.0));
        assert_eq!(s0, s0b, "freed slot is reused");
        assert_ne!(g0, g0b, "reuse bumps the generation");
        assert_eq!(slab.target_of(s0, g0), None, "old entry is stale");
        assert_eq!(slab.target_of(s0b, g0b), Some(3.0));
    }

    #[test]
    fn iteration_is_in_creation_order_across_reuse() {
        let mut slab = PendingSlab::new();
        let (a, _) = slab.insert(timer(0, 1.0));
        let (_b, _) = slab.insert(timer(1, 2.0));
        let (_c, _) = slab.insert(timer(2, 3.0));
        slab.take(a); // frees the lowest slot index
        let (d, _) = slab.insert(timer(3, 4.0)); // reuses slot `a`...
        assert_eq!(d, a);
        // ...but creation order puts it last, not first.
        let mut order = Vec::new();
        let mut cursor = slab.first();
        while let Some(slot) = cursor {
            let (_, target, next) = slab.cursor(slot);
            order.push(target);
            cursor = next;
        }
        assert_eq!(order, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn capacity_tracks_high_water_mark_only() {
        let mut slab = PendingSlab::new();
        for round in 0..100 {
            let (s, g) = slab.insert(timer(0, round as f64));
            assert_eq!(slab.target_of(s, g), Some(round as f64));
            slab.take(s);
        }
        assert_eq!(slab.slots.len(), 1, "single-item churn needs one slot");
        assert_eq!(slab.len(), 0);
    }

    #[test]
    fn empty_slab_reports_all_entries_stale() {
        let slab: PendingSlab<()> = PendingSlab::new();
        assert_eq!(slab.first(), None);
        assert_eq!(slab.target_of(0, 1), None);
        assert_eq!(slab.len(), 0);
    }
}
