//! Engine self-profiling: where does simulation wall-time go?
//!
//! When enabled via [`EngineBuilder::profiling`](crate::EngineBuilder::profiling),
//! the engine accumulates wall-clock time per phase of its event loop:
//!
//! * **protocol** — time inside protocol handlers (`on_start`,
//!   `on_message`, `on_timer`);
//! * **delay** — time inside the delay model's `delivery` sampling;
//! * **snapshot** — time spent building per-event state snapshots for the
//!   installed event sink;
//! * everything else (queue operations, clock arithmetic, sink records)
//!   is the residual of the total dispatch time.
//!
//! Profiling reads [`std::time::Instant`] but never touches the event
//! queue, the clocks, or the sink, so it cannot perturb an execution:
//! event streams and results are byte-identical with profiling on or off
//! (property-tested in `tests/determinism.rs`).

use std::fmt;
use std::time::Duration;

/// Accumulated per-phase wall-time of an engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Events dispatched.
    pub events: u64,
    /// Total wall-time inside [`Engine::step`](crate::Engine::step).
    pub dispatch: Duration,
    /// Wall-time inside protocol handlers.
    pub protocol: Duration,
    /// Protocol handler invocations.
    pub protocol_calls: u64,
    /// Wall-time inside the delay model.
    pub delay: Duration,
    /// Delay-model samples taken.
    pub delay_calls: u64,
    /// Wall-time building sink snapshots.
    pub snapshot: Duration,
    /// Snapshots delivered to the sink.
    pub snapshots: u64,
    /// Stale `HwDue` queue entries skipped (superseded by a later insert or
    /// a rate-change re-stamp) — included in `events`.
    pub stale_events: u64,
    /// Worker threads used by the parallel driver (0 for a purely
    /// sequential run). The remaining fields are likewise filled only by
    /// `run_until_threaded`; see `docs/PARALLEL.md`.
    pub par_workers: u64,
    /// Synchronized time windows executed in parallel.
    pub par_windows: u64,
    /// Wall-time in the serial barrier phase (merge/replay of per-partition
    /// pop logs, seq finalization, mailbox routing) — the Amdahl fraction.
    pub par_replay: Duration,
    /// Summed wall-time partitions spent idle inside a window, waiting at
    /// the closing barrier for the slowest partition (load imbalance).
    pub par_idle: Duration,
    /// Wall-time of the whole parallel phase (windows + barriers), as seen
    /// by the coordinating thread.
    pub par_wall: Duration,
}

impl EngineProfile {
    /// Dispatch time not attributed to a named phase: queue operations,
    /// clock arithmetic, event-sink records.
    pub fn other(&self) -> Duration {
        self.dispatch
            .saturating_sub(self.protocol)
            .saturating_sub(self.delay)
            .saturating_sub(self.snapshot)
    }

    /// Mean time per dispatched event.
    pub fn per_event(&self) -> Duration {
        if self.events == 0 {
            Duration::ZERO
        } else {
            self.dispatch / self.events as u32
        }
    }

    /// Serializes the profile as a single `gcs-profile/v1` JSON object
    /// (one line, trailing newline).
    ///
    /// Units: every `*_seconds` field is wall-clock seconds as a decimal
    /// number; every other field is an exact integer count. The `par_*`
    /// fields are zero for purely sequential runs. `other_seconds` is the
    /// residual of [`EngineProfile::other`], so
    /// `protocol + delay + snapshot + other == dispatch` up to float
    /// rounding.
    pub fn to_json(&self) -> String {
        let s = |d: Duration| d.as_secs_f64();
        format!(
            concat!(
                "{{\"schema\":\"gcs-profile/v1\",",
                "\"events\":{},\"stale_events\":{},",
                "\"dispatch_seconds\":{},\"per_event_seconds\":{},",
                "\"protocol_seconds\":{},\"protocol_calls\":{},",
                "\"delay_seconds\":{},\"delay_calls\":{},",
                "\"snapshot_seconds\":{},\"snapshots\":{},",
                "\"other_seconds\":{},",
                "\"par_workers\":{},\"par_windows\":{},",
                "\"par_replay_seconds\":{},\"par_idle_seconds\":{},",
                "\"par_wall_seconds\":{}}}\n",
            ),
            self.events,
            self.stale_events,
            s(self.dispatch),
            s(self.per_event()),
            s(self.protocol),
            self.protocol_calls,
            s(self.delay),
            self.delay_calls,
            s(self.snapshot),
            self.snapshots,
            s(self.other()),
            self.par_workers,
            self.par_windows,
            s(self.par_replay),
            s(self.par_idle),
            s(self.par_wall),
        )
    }
}

impl fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.dispatch.as_secs_f64();
        writeln!(
            f,
            "engine profile: {} events in {:.3}s ({:.2}us/event)",
            self.events,
            total,
            self.per_event().as_secs_f64() * 1e6,
        )?;
        let share = |d: Duration| {
            if total > 0.0 {
                100.0 * d.as_secs_f64() / total
            } else {
                0.0
            }
        };
        writeln!(
            f,
            "  {:<10} {:>10} {:>7} {:>10}",
            "phase", "time", "share", "calls"
        )?;
        for (name, d, calls) in [
            ("protocol", self.protocol, self.protocol_calls),
            ("delay", self.delay, self.delay_calls),
            ("snapshot", self.snapshot, self.snapshots),
            ("other", self.other(), self.events),
        ] {
            writeln!(
                f,
                "  {:<10} {:>9.4}s {:>6.1}% {:>10}",
                name,
                d.as_secs_f64(),
                share(d),
                calls,
            )?;
        }
        if self.stale_events > 0 {
            writeln!(f, "  ({} stale queue entries skipped)", self.stale_events)?;
        }
        if self.par_workers > 0 {
            let wall = self.par_wall.as_secs_f64();
            let pct = |d: Duration| {
                if wall > 0.0 {
                    100.0 * d.as_secs_f64() / wall
                } else {
                    0.0
                }
            };
            writeln!(
                f,
                "  parallel: {} workers, {} windows in {:.3}s \
                 (replay {:.4}s = {:.1}%, idle {:.4}s = {:.1}% of {}x wall)",
                self.par_workers,
                self.par_windows,
                wall,
                self.par_replay.as_secs_f64(),
                pct(self.par_replay),
                self.par_idle.as_secs_f64(),
                pct(self.par_idle) / self.par_workers as f64,
                self.par_workers,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_and_rates() {
        let p = EngineProfile {
            events: 4,
            dispatch: Duration::from_millis(100),
            protocol: Duration::from_millis(40),
            protocol_calls: 3,
            delay: Duration::from_millis(10),
            delay_calls: 2,
            snapshot: Duration::from_millis(20),
            snapshots: 4,
            ..EngineProfile::default()
        };
        assert_eq!(p.other(), Duration::from_millis(30));
        assert_eq!(p.per_event(), Duration::from_millis(25));
        let text = p.to_string();
        assert!(text.contains("engine profile: 4 events"));
        assert!(text.contains("protocol"));
        assert!(text.contains("other"));
    }

    #[test]
    fn json_has_every_field_in_seconds() {
        let p = EngineProfile {
            events: 4,
            dispatch: Duration::from_millis(100),
            protocol: Duration::from_millis(40),
            protocol_calls: 3,
            delay: Duration::from_millis(10),
            delay_calls: 2,
            snapshot: Duration::from_millis(20),
            snapshots: 4,
            par_workers: 2,
            par_windows: 7,
            par_replay: Duration::from_millis(5),
            par_idle: Duration::from_millis(9),
            par_wall: Duration::from_millis(60),
            ..EngineProfile::default()
        };
        let json = p.to_json();
        assert!(json.starts_with("{\"schema\":\"gcs-profile/v1\","));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"events\":4"));
        assert!(json.contains("\"dispatch_seconds\":0.1"));
        assert!(json.contains("\"per_event_seconds\":0.025"));
        assert!(json.contains("\"other_seconds\":0.03"));
        assert!(json.contains("\"par_workers\":2"));
        assert!(json.contains("\"par_windows\":7"));
        assert!(json.contains("\"par_replay_seconds\":0.005"));
        assert!(json.contains("\"par_idle_seconds\":0.009"));
        assert!(json.contains("\"par_wall_seconds\":0.06"));
        // Empty profiles serialize without NaNs or infinities.
        let empty = EngineProfile::default().to_json();
        assert!(!empty.contains("NaN") && !empty.contains("inf"));
    }

    #[test]
    fn empty_profile_renders() {
        let p = EngineProfile::default();
        assert_eq!(p.per_event(), Duration::ZERO);
        assert_eq!(p.other(), Duration::ZERO);
        assert!(p.to_string().contains("0 events"));
    }
}
