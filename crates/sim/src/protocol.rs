//! The node-algorithm interface.

use gcs_graph::NodeId;

/// Identifier of a per-node timer slot.
///
/// Each `(node, TimerId)` pair holds at most one pending hardware-value
/// target; re-arming replaces the previous target. Protocols choose their own
/// slot numbering (e.g. `A^opt` uses slot 0 for its send trigger and slot 1
/// for the `H_v^R` multiplier reset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u32);

/// A clock-synchronization algorithm running at one node.
///
/// The trait deliberately exposes only information available in the paper's
/// model: a node sees its own hardware-clock readings (passed as `ctx.hw()`),
/// the identities of neighbours it can distinguish (port numbering), and the
/// messages it receives. It never sees real time or its own clock *rate*.
///
/// Implementations must be `Clone` so whole executions can be snapshotted
/// and replayed (the paper's extended executions, Definition 7.4).
pub trait Protocol: Clone {
    /// The message type this protocol exchanges.
    type Msg: Clone + std::fmt::Debug;

    /// Called once when the node is initialized — either a spontaneous wake
    /// or, per the paper's initialization scheme, the arrival of the first
    /// message (in which case [`Protocol::on_message`] is invoked
    /// immediately afterwards with that message).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a message from neighbour `from` is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when the hardware-value timer in slot `timer` fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: TimerId);

    /// The node's logical clock value when its hardware clock reads `hw`.
    ///
    /// Used by the engine and the analysis layer to observe `L_v(t)`; must
    /// be a pure function of protocol state and `hw` (with `hw` at or after
    /// the last event the protocol handled).
    fn logical_value(&self, hw: f64) -> f64;

    /// The current logical-rate multiplier relative to the hardware clock
    /// (`A^opt` runs in fast mode at `1 + μ`, normal mode at `1`).
    ///
    /// Observability hook: the engine compares this after every handler and
    /// reports changes to the installed [`EventSink`] as
    /// [`EngineEvent::MultiplierChange`]. Protocols without a rate-switching
    /// mechanism keep the default of `1.0`.
    ///
    /// [`EventSink`]: crate::EventSink
    /// [`EngineEvent::MultiplierChange`]: crate::EngineEvent::MultiplierChange
    fn rate_multiplier(&self) -> f64 {
        1.0
    }
}

/// The actions a protocol may take while handling an event.
#[derive(Debug, Clone)]
pub(crate) enum Action<M> {
    Send { to: NodeId, msg: M },
    SendAll { msg: M },
    SetTimer { timer: TimerId, target_hw: f64 },
    CancelTimer { timer: TimerId },
}

/// Handle through which a protocol observes its environment and acts.
///
/// Actions are buffered and applied by the engine after the handler
/// returns, in the order they were issued. The buffer is owned by the
/// engine and reused across events, so handlers allocate nothing in
/// steady state.
#[derive(Debug)]
pub struct Context<'a, M> {
    node: NodeId,
    hw: f64,
    neighbors: &'a [NodeId],
    pub(crate) actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        node: NodeId,
        hw: f64,
        neighbors: &'a [NodeId],
        actions: &'a mut Vec<Action<M>>,
    ) -> Self {
        Context {
            node,
            hw,
            neighbors,
            actions,
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// The current reading of this node's hardware clock, `H_v`.
    pub fn hw(&self) -> f64 {
        self.hw
    }

    /// The neighbours this node can address (port numbering).
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Sends `msg` to a single neighbour.
    ///
    /// # Panics
    ///
    /// The engine panics when applying the action if `to` is not a
    /// neighbour — the model only has links in `E`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends `msg` to every neighbour (one send event; the engine accounts
    /// it as a single broadcast of `deg(v)` transmissions, matching the
    /// paper's message-complexity accounting in its Section 6.1).
    pub fn send_all(&mut self, msg: M) {
        self.actions.push(Action::SendAll { msg });
    }

    /// Arms timer slot `timer` to fire when this node's hardware clock
    /// reaches `target_hw`, replacing any previous target in that slot. A
    /// target at or before the current reading fires immediately (at the
    /// current instant, after the running handler returns).
    pub fn set_timer(&mut self, timer: TimerId, target_hw: f64) {
        self.actions.push(Action::SetTimer { timer, target_hw });
    }

    /// Cancels the pending target in slot `timer`, if any.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.actions.push(Action::CancelTimer { timer });
    }
}
