//! The engine's event queue: a 4-ary min-heap over `(time, seq)` keys
//! with payloads parked in a free-list slab.
//!
//! `seq` is unique per engine, so the key is a *strict total order* and
//! the pop sequence is simply the sorted order of the keys — independent
//! of the heap's internal shape. Swapping `std::collections::BinaryHeap`
//! for this layout therefore cannot change an event stream
//! (`tests/golden_event_stream.rs` pins that byte-for-byte). What does
//! change is the constant factor:
//!
//! * **Keys sift, payloads stay put.** A heap entry is a 24-byte
//!   [`Key`]; the event payload (which carries the message) is written
//!   once into a slab slot and moved only when popped. Sift operations
//!   touch a quarter of the memory they would with inline payloads.
//! * **4-ary layout.** Halves the tree depth versus a binary heap, and
//!   the four sibling keys span at most two cache lines, so the extra
//!   sibling comparisons are nearly free while the chain of dependent
//!   cache misses shrinks.
//!
//! Both the heap vector and the slab reuse their storage, so a queue
//! whose population oscillates around a steady size performs no heap
//! allocation (asserted process-wide by `tests/zero_alloc.rs`).

/// Heap arity. Four keys per node: shallow tree, sibling keys adjacent.
const ARITY: usize = 4;

/// A sift-able heap entry: the event's ordering key plus the slab slot
/// holding its payload.
#[derive(Debug, Clone, Copy)]
struct Key {
    time: f64,
    seq: u64,
    slot: u32,
}

impl Key {
    /// Strict `<` in the queue's total order (earlier time, then lower
    /// sequence number; times compare via `total_cmp`, matching the
    /// ordering the engine has always used).
    fn before(&self, other: &Key) -> bool {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
            .is_lt()
    }
}

/// Min-ordered event queue; `T` is the event payload.
#[derive(Debug, Clone)]
pub(crate) struct EventQueue<T> {
    heap: Vec<Key>,
    /// Slab of payloads addressed by `Key::slot`; `None` marks a free slot.
    payload: Vec<Option<T>>,
    /// Free slots available for reuse.
    free: Vec<u32>,
}

impl<T> EventQueue<T> {
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: Vec::with_capacity(cap),
            payload: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Time of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.first().map(|k| k.time)
    }

    /// Enqueues `item` at `(time, seq)`. `seq` must be unique (the engine
    /// stamps a monotone counter) — ties in `time` break by `seq`.
    pub fn push(&mut self, time: f64, seq: u64, item: T) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.payload[slot as usize] = Some(item);
                slot
            }
            None => {
                let slot = u32::try_from(self.payload.len()).expect("queue slots fit in u32");
                self.payload.push(Some(item));
                slot
            }
        };
        self.heap.push(Key { time, seq, slot });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.pop_entry().map(|(time, _, item)| (time, item))
    }

    /// Removes and returns the earliest event as `(time, seq, payload)` —
    /// the full ordering key, needed by the parallel engine's barrier
    /// replay to merge per-partition pop logs into the global order.
    pub fn pop_entry(&mut self) -> Option<(f64, u64, T)> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let key = self.heap.pop().expect("len checked above");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let item = self.payload[key.slot as usize]
            .take()
            .expect("heap keys always address a live slot");
        self.free.push(key.slot);
        Some((key.time, key.seq, item))
    }

    /// Rewrites every queued key's `seq` through `f` in place, without
    /// re-heapifying.
    ///
    /// The caller must guarantee `f` is strictly monotone on the seqs
    /// present (it preserves every pairwise `<`), so the heap invariant is
    /// untouched. The parallel engine uses this at window barriers to
    /// replace provisional partition-local seqs with their final global
    /// values — a mapping that is monotone by construction (see
    /// `parallel.rs`).
    pub fn remap_seqs(&mut self, mut f: impl FnMut(u64) -> u64) {
        for key in &mut self.heap {
            key.seq = f(key.seq);
        }
        #[cfg(debug_assertions)]
        for i in 1..self.heap.len() {
            let parent = (i - 1) / ARITY;
            debug_assert!(
                !self.heap[i].before(&self.heap[parent]),
                "remap_seqs closure was not order-preserving"
            );
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if !self.heap[i].before(&self.heap[parent]) {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            for c in first + 1..(first + ARITY).min(len) {
                if self.heap[c].before(&self.heap[min]) {
                    min = c;
                }
            }
            if !self.heap[min].before(&self.heap[i]) {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push(2.0, 0, "a");
        q.push(1.0, 1, "b");
        q.push(1.0, 2, "c");
        q.push(0.5, 3, "d");
        assert_eq!(q.peek_time(), Some(0.5));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(0.5, "d"), (1.0, "b"), (1.0, "c"), (2.0, "a")]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_reuses_slots() {
        let mut q = EventQueue::with_capacity(2);
        for round in 0..100u64 {
            q.push(round as f64, 2 * round, round);
            q.push(round as f64 + 0.5, 2 * round + 1, round + 1000);
            // Pops drain the merged stream in global sorted order, so the
            // r-th pop returns time r/2: an on-the-round entry when r is
            // even, the +0.5 entry of round r/2 when r is odd.
            let (t, v) = q.pop().unwrap();
            if round % 2 == 0 {
                assert_eq!(t, (round / 2) as f64);
                assert_eq!(v, round / 2);
            } else {
                assert_eq!(t, (round / 2) as f64 + 0.5);
                assert_eq!(v, round / 2 + 1000);
            }
        }
        assert_eq!(q.len(), 100);
        // Slab never grew past the high-water mark of live entries.
        assert!(q.payload.len() <= 101);
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn pop_entry_reports_the_seq() {
        let mut q = EventQueue::with_capacity(2);
        q.push(1.0, 7, "x");
        q.push(1.0, 3, "y");
        assert_eq!(q.pop_entry(), Some((1.0, 3, "y")));
        assert_eq!(q.pop_entry(), Some((1.0, 7, "x")));
        assert_eq!(q.pop_entry(), None);
    }

    #[test]
    fn remap_seqs_preserves_pop_order_under_monotone_maps() {
        let mut q = EventQueue::with_capacity(8);
        // Provisional seqs in the high half, finals in the low half, ties in
        // time everywhere — the exact shape the parallel engine produces.
        const P: u64 = 1 << 63;
        q.push(2.0, P + 1, "p1");
        q.push(1.0, 5, "f5");
        q.push(1.0, P, "p0");
        q.push(1.0, 2, "f2");
        // Monotone map: finals fixed, provisionals land above them.
        q.remap_seqs(|s| if s >= P { s - P + 100 } else { s });
        let order: Vec<_> = std::iter::from_fn(|| q.pop_entry()).collect();
        assert_eq!(
            order,
            vec![
                (1.0, 2, "f2"),
                (1.0, 5, "f5"),
                (1.0, 100, "p0"),
                (2.0, 101, "p1"),
            ]
        );
    }

    #[test]
    fn matches_a_sorted_reference_on_mixed_times() {
        let mut q = EventQueue::with_capacity(0);
        // Deterministic pseudo-random times with duplicates.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut expect = Vec::new();
        for seq in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let time = (x >> 40) as f64 / 256.0; // coarse grid -> many ties
            q.push(time, seq, seq);
            expect.push((time, seq));
        }
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (time, seq) in expect {
            assert_eq!(q.pop(), Some((time, seq)));
        }
        assert_eq!(q.pop(), None);
    }
}
